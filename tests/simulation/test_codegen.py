"""Tests for the per-circuit C codegen backend and its shared-object cache.

Covers the contract :mod:`repro.simulation.codegen` makes with the engines:
generated kernels are bit-identical to the numpy sweeps, degrade cleanly
when disabled (``REPRO_NATIVE=0``) or when no compiler is available, and the
on-disk object cache hits/misses/recompiles exactly as documented (including
the generic-kernel disk memo that keeps shard workers from re-invoking gcc).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.circuits.program import CircuitProgram
from repro.simulation import _native, codegen
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.vectorized import VectorizedZeroDelaySimulator
from repro.simulation.zero_delay import ZeroDelaySimulator

needs_compiler = pytest.mark.skipif(
    not _native.native_enabled() or _native.find_compiler() is None,
    reason="native kernels disabled or no C compiler available",
)


@pytest.fixture(scope="module")
def program(s298_circuit) -> CircuitProgram:
    return CircuitProgram.of(s298_circuit)


@pytest.fixture
def fresh_kernels():
    """Reset the in-process kernel memos around a test that perturbs them."""
    codegen.clear_codegen_memo()
    _native.clear_kernel_memo()
    yield
    codegen.clear_codegen_memo()
    _native.clear_kernel_memo()


# ----------------------------------------------------------- source generation
def test_generated_source_shape(program):
    source = codegen.generate_source(program)
    # the three entry points the engines bind
    assert "void cg_zd_sweep(" in source
    assert "void cg_ed_eval(" in source
    assert "void cg_ed_eval_cols(" in source
    # gates appear as literal expressions over row slots, not table lookups
    assert "*NW+w]" in source
    # one chunk function per level at minimum
    assert source.count("static void cg_zd_l") >= len(program.levels_all)
    # every non-const gate owns a word function in the dispatch table
    assert source.count("static uint64_t cg_w") >= int(program.non_const.sum())


def test_generated_source_is_deterministic(program):
    assert codegen.generate_source(program) == codegen.generate_source(program)


# ------------------------------------------------------------- bit-identity
@needs_compiler
@pytest.mark.parametrize("width", (1, 64, 130))
def test_codegen_sweep_words_match_numpy(program, width, fresh_kernels):
    rng_seed = 42 + width
    sims = {}
    for sweep in ("groups", "codegen"):
        sim = VectorizedZeroDelaySimulator(program, width=width, sweep=sweep)
        assert sim.sweep == sweep
        sim.randomize_state(np.random.default_rng(rng_seed))
        rng = np.random.default_rng(7)
        for _ in range(4):
            pattern = [int(v) for v in rng.integers(0, 2, size=sim.circuit.num_inputs)]
            sim.step(pattern)
        sims[sweep] = sim
    assert np.array_equal(sims["codegen"].words, sims["groups"].words)


@needs_compiler
def test_compiled_facade_matches_numpy_and_bigint(program, fresh_kernels):
    width = 70
    rng = np.random.default_rng(3)
    patterns = [
        [int(v) for v in rng.integers(0, 1 << 60, size=program.circuit.num_inputs)]
        for _ in range(4)
    ]
    results = {}
    for backend in ("bigint", "numpy", "compiled"):
        sim = ZeroDelaySimulator(program, width=width, backend=backend)
        sim.randomize_state(np.random.default_rng(11))
        energies = [sim.step_and_measure(p) for p in patterns]
        results[backend] = (energies, sim.latch_state())
    assert results["compiled"][0] == results["numpy"][0]
    assert results["compiled"][1] == results["numpy"][1]
    assert results["compiled"][1] == results["bigint"][1]
    np.testing.assert_allclose(results["compiled"][0], results["bigint"][0], rtol=1e-12)


@needs_compiler
@pytest.mark.parametrize("wavefront", (False, True))
def test_event_driven_compiled_matches_numpy(program, wavefront, fresh_kernels):
    width = 130
    lanes = {}
    for backend in ("numpy", "compiled"):
        sim = EventDrivenSimulator(
            program,
            width=width,
            backend=backend,
            delay_model=None,
            wavefront_compaction=wavefront,
        )
        if backend == "compiled":
            assert sim._vec.eval_mode == "codegen"
        sim.reset()
        rng = np.random.default_rng(5)
        total = np.zeros(width)
        for _ in range(4):
            pattern = [int(v) for v in rng.integers(0, 2, size=sim.circuit.num_inputs)]
            total += sim.cycle_lanes(pattern)
        lanes[backend] = (total, sim.values)
    assert np.array_equal(lanes["compiled"][0], lanes["numpy"][0])
    assert lanes["compiled"][1] == lanes["numpy"][1]


# --------------------------------------------------------------- fallbacks
def test_repro_native_zero_disables_codegen(program, fresh_kernels, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert codegen.load_program_kernel(program) is None
    sim = VectorizedZeroDelaySimulator(program, width=64, sweep="codegen")
    assert sim.sweep == "groups"
    # the facade accepts backend="compiled" and silently runs the numpy path
    facade = ZeroDelaySimulator(program, width=64, backend="compiled")
    assert facade.backend == "compiled"
    assert facade._vec.sweep == "groups"


@needs_compiler
def test_fallback_is_bit_identical(program, fresh_kernels, monkeypatch):
    """REPRO_NATIVE=0 changes only the sweep strategy, never the results."""
    width = 66
    rng = np.random.default_rng(9)
    patterns = [
        [int(v) for v in rng.integers(0, 2, size=program.circuit.num_inputs)]
        for _ in range(4)
    ]

    def run() -> tuple:
        sim = ZeroDelaySimulator(program, width=width, backend="compiled")
        sim.randomize_state(np.random.default_rng(21))
        energies = [sim.step_and_measure(p) for p in patterns]
        return energies, sim.latch_state(), sim._vec.sweep

    fast = run()
    monkeypatch.setenv("REPRO_NATIVE", "0")
    codegen.clear_codegen_memo()
    _native.clear_kernel_memo()
    slow = run()
    assert fast[2] == "codegen" and slow[2] == "groups"
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]


def test_codegen_failure_is_memoized(program, fresh_kernels, monkeypatch):
    """A failed build is remembered: one probe, not one per engine."""
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    calls = []

    def failing(source, tag, optimize="-O2"):
        calls.append(tag)
        return None

    monkeypatch.setattr(_native, "compile_and_load", failing)
    assert codegen.load_program_kernel(program) is None
    assert codegen.load_program_kernel(program) is None
    assert len(calls) == 1


# ------------------------------------------------------------- disk cache
@needs_compiler
def test_disk_cache_hit_miss_and_corrupt(program, fresh_kernels, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
    before = _native.compiler_invocations()
    assert codegen.load_program_kernel(program) is not None
    assert _native.compiler_invocations() == before + 1
    path = codegen.program_kernel_path(program)
    assert path is not None and os.path.exists(path)

    # fresh memo + existing object: pure disk hit, no compiler
    codegen.clear_codegen_memo()
    assert codegen.load_program_kernel(program) is not None
    assert _native.compiler_invocations() == before + 1

    # corrupt object (e.g. a write truncated by a crash): a fresh process —
    # dlopen caches by pathname, so only a process that never loaded the
    # object exercises this path, which is also the real-world scenario —
    # silently unlinks and recompiles it.
    os.unlink(path)
    with open(path, "wb") as handle:
        handle.write(b"not a shared object")
    script = (
        "from repro.circuits.iscas89 import build_circuit\n"
        "from repro.circuits.program import CircuitProgram\n"
        "from repro.simulation import _native, codegen\n"
        "program = CircuitProgram.of(build_circuit('s298'))\n"
        "assert codegen.load_program_kernel(program) is not None\n"
        "print(_native.compiler_invocations())\n"
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    env.pop("REPRO_NATIVE", None)
    result = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "1"  # exactly the one recompile
    assert os.path.getsize(path) > len(b"not a shared object")


@needs_compiler
def test_stale_objects_are_cleaned(program, fresh_kernels, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
    stale = tmp_path / f"{program.key}.cg{codegen.CODEGEN_VERSION}.k0.0123456789abcdef.so"
    stale.write_bytes(b"old")
    assert codegen.load_program_kernel(program) is not None
    assert not stale.exists()
    assert os.path.exists(codegen.program_kernel_path(program))


@needs_compiler
def test_ensure_program_kernel_reports(program, fresh_kernels, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
    report = codegen.ensure_program_kernel(program)
    assert report["enabled"] is True
    assert report["cache_hit"] is False
    assert report["path"] == codegen.program_kernel_path(program)
    assert report["size_bytes"] and report["size_bytes"] > 0
    assert report["source_digest"] == _native.source_digest(codegen.generate_source(program))

    codegen.clear_codegen_memo()
    again = codegen.ensure_program_kernel(program)
    assert again["cache_hit"] is True


@needs_compiler
def test_generic_kernel_disk_memo_spares_gcc(tmp_path):
    """A second process finds the generic kernel on disk: zero invocations."""
    script = (
        "from repro.simulation import _native\n"
        "kernel = _native.load_kernel()\n"
        "assert kernel is not None\n"
        "print(_native.compiler_invocations())\n"
    )
    env = {
        **os.environ,
        "REPRO_PROGRAM_CACHE": str(tmp_path),
        "PYTHONPATH": os.pathsep.join(sys.path),
    }
    env.pop("REPRO_NATIVE", None)
    cold = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=300
    )
    assert cold.returncode == 0, cold.stderr
    assert cold.stdout.strip() == "1"
    warm = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True, timeout=300
    )
    assert warm.returncode == 0, warm.stderr
    assert warm.stdout.strip() == "0"
