"""Unit tests for the gate delay models."""

import pytest

from repro.netlist.cell_library import GateType
from repro.simulation.delay_models import FanoutDelay, TypeTableDelay, UnitDelay, ZeroDelay


class TestZeroDelay:
    def test_all_delays_zero(self, s27_circuit):
        assert ZeroDelay().delays(s27_circuit) == [0.0] * s27_circuit.num_gates


class TestUnitDelay:
    def test_default_is_one(self, s27_circuit):
        assert UnitDelay().delays(s27_circuit) == [1.0] * s27_circuit.num_gates

    def test_custom_value(self, s27_circuit):
        assert set(UnitDelay(2.5).delays(s27_circuit)) == {2.5}

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            UnitDelay(-1.0)


class TestFanoutDelay:
    def test_higher_fanout_means_longer_delay(self, s27_circuit):
        model = FanoutDelay(intrinsic=1.0, load_factor=0.5)
        delays = {gate.output: model.gate_delay(s27_circuit, gate) for gate in s27_circuit.gates}
        g11 = s27_circuit.net_id("G11")  # fanout 3
        g17 = s27_circuit.net_id("G17")  # fanout 1 (primary output)
        assert delays[g11] > delays[g17]

    def test_formula(self, s27_circuit):
        model = FanoutDelay(intrinsic=2.0, load_factor=0.25)
        gate = s27_circuit.gates[0]
        fanout = s27_circuit.fanout_counts[gate.output]
        assert model.gate_delay(s27_circuit, gate) == pytest.approx(2.0 + 0.25 * fanout)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            FanoutDelay(intrinsic=-0.1)
        with pytest.raises(ValueError):
            FanoutDelay(load_factor=-0.1)


class TestTypeTableDelay:
    def test_inverter_faster_than_xor(self, s27_circuit):
        model = TypeTableDelay()
        not_gate = next(g for g in s27_circuit.gates if g.gate_type is GateType.NOT)
        assert model.gate_delay(s27_circuit, not_gate) < model.DEFAULT_TABLE[GateType.XOR]

    def test_table_override(self, s27_circuit):
        model = TypeTableDelay({GateType.NOT: 5.0})
        not_gate = next(g for g in s27_circuit.gates if g.gate_type is GateType.NOT)
        assert model.gate_delay(s27_circuit, not_gate) == pytest.approx(5.0)

    def test_fanin_penalty(self, s27_circuit):
        model = TypeTableDelay(fanin_factor=1.0)
        nor2 = next(
            g for g in s27_circuit.gates if g.gate_type is GateType.NOR and len(g.inputs) == 2
        )
        base = model.table[GateType.NOR]
        assert model.gate_delay(s27_circuit, nor2) == pytest.approx(base)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            TypeTableDelay({GateType.AND: -1.0})


class TestDelayModelSelection:
    """String-keyed delay-model selection through the registry and config."""

    def test_make_delay_model(self):
        from repro.simulation.delay_models import (
            FanoutDelay,
            UnitDelay,
            make_delay_model,
        )

        assert isinstance(make_delay_model("fanout"), FanoutDelay)
        unit = make_delay_model("unit", delay=2.5)
        assert isinstance(unit, UnitDelay)
        assert unit.delay == pytest.approx(2.5)
        with pytest.raises(KeyError):
            make_delay_model("no-such-model")

    def test_config_validates_delay_model(self):
        from repro.core.config import EstimationConfig

        assert EstimationConfig(delay_model="unit").delay_model == "unit"
        with pytest.raises(ValueError, match="delay_model"):
            EstimationConfig(delay_model="no-such-model")

    def test_config_key_reaches_the_event_engine(self, s27_circuit):
        from repro.core.config import EstimationConfig
        from repro.core.sampler import PowerSampler
        from repro.simulation.delay_models import UnitDelay, ZeroDelay
        from repro.stimulus.random_inputs import BernoulliStimulus

        def sampler_for(key):
            config = EstimationConfig(
                warmup_cycles=4, power_simulator="event-driven", delay_model=key
            )
            return PowerSampler(
                s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=1
            )

        assert isinstance(sampler_for("unit")._event_engine.delay_model, UnitDelay)
        assert isinstance(sampler_for("zero")._event_engine.delay_model, ZeroDelay)

    def test_jobspec_selects_delay_model_by_key(self):
        from repro.api.jobs import JobSpec
        from repro.core.config import EstimationConfig

        spec = JobSpec(
            circuit="s27",
            seed=5,
            config=EstimationConfig(
                randomness_sequence_length=64,
                min_samples=64,
                check_interval=32,
                max_samples=500,
                warmup_cycles=8,
                max_independence_interval=4,
                power_simulator="event-driven",
                delay_model="unit",
            ),
        )
        rebuilt = JobSpec.from_dict(spec.to_dict())
        assert rebuilt.config.delay_model == "unit"
        result = rebuilt.run()
        assert result.ok
        assert result.estimate.average_power_w > 0
