"""Unit tests for switching-activity collection."""

import pytest

from repro.simulation.activity import collect_activity
from repro.stimulus.random_inputs import BernoulliStimulus


class TestCollectActivity:
    def test_probabilities_within_bounds(self, s27_circuit):
        record = collect_activity(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=400, rng=1
        )
        assert record.cycles == 400
        assert all(0.0 <= p <= 1.0 for p in record.signal_probability)
        assert all(d >= 0.0 for d in record.transition_density)

    def test_transition_density_at_most_one_for_zero_delay(self, s27_circuit):
        record = collect_activity(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=300, rng=2
        )
        assert all(d <= 1.0 + 1e-12 for d in record.transition_density)

    def test_primary_input_probability_close_to_stimulus(self, s27_circuit):
        record = collect_activity(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=3000, rng=3
        )
        stats = record.by_name()
        for pi in ("G0", "G1", "G2", "G3"):
            probability, density = stats[pi]
            assert probability == pytest.approx(0.5, abs=0.05)
            assert density == pytest.approx(0.5, abs=0.05)

    def test_biased_inputs_reflected(self, s27_circuit):
        record = collect_activity(
            s27_circuit, BernoulliStimulus(4, 0.9), cycles=3000, rng=4
        )
        probability, density = record.by_name()["G0"]
        assert probability == pytest.approx(0.9, abs=0.05)
        # Transition density of an i.i.d. 0.9 stream is 2 * 0.9 * 0.1 = 0.18.
        assert density == pytest.approx(0.18, abs=0.05)

    def test_busiest_nets_sorted(self, s27_circuit):
        record = collect_activity(s27_circuit, BernoulliStimulus(4, 0.5), cycles=200, rng=5)
        busiest = record.busiest_nets(5)
        densities = [density for _name, density in busiest]
        assert densities == sorted(densities, reverse=True)

    def test_invalid_cycle_count_rejected(self, s27_circuit):
        with pytest.raises(ValueError):
            collect_activity(s27_circuit, BernoulliStimulus(4, 0.5), cycles=0)
