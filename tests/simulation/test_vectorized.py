"""Unit tests for the word-sliced numpy simulator backend."""

import numpy as np
import pytest

from repro.simulation import _native
from repro.simulation.vectorized import (
    VectorizedZeroDelaySimulator,
    bits_to_words,
    lane_mask_words,
    pack_int_to_words,
    unpack_words_to_int,
    words_per_width,
)
from repro.simulation.zero_delay import ZeroDelaySimulator, resolve_backend


class TestWordHelpers:
    def test_words_per_width(self):
        assert words_per_width(1) == 1
        assert words_per_width(64) == 1
        assert words_per_width(65) == 2
        assert words_per_width(256) == 4

    def test_lane_mask_partial_word(self):
        mask = lane_mask_words(70)
        assert mask.shape == (2,)
        assert int(mask[0]) == (1 << 64) - 1
        assert int(mask[1]) == (1 << 6) - 1

    def test_int_round_trip(self):
        value = (1 << 130) | (1 << 64) | 0b1011
        words = pack_int_to_words(value, 3)
        assert unpack_words_to_int(words) == value

    def test_bits_to_words_matches_manual_packing(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=100, dtype=np.uint8)
        expected = sum(int(bit) << lane for lane, bit in enumerate(bits))
        assert unpack_words_to_int(bits_to_words(bits, 2)) == expected


class TestFunctionalBehaviour:
    def test_counter_counts_up(self, counter_circuit):
        simulator = VectorizedZeroDelaySimulator(counter_circuit, width=4)
        simulator.reset(latch_state=0)
        simulator.settle([simulator.mask])
        values = []
        for _ in range(6):
            simulator.step([simulator.mask])
            values.append(simulator.latch_state_scalar(lane=3))
        assert values == [1, 2, 3, 4, 5, 6]

    def test_toggle_cell_measures_zero_when_idle(self, toggle_circuit):
        simulator = VectorizedZeroDelaySimulator(toggle_circuit, width=8)
        simulator.reset(latch_state=0)
        simulator.settle([0])
        assert simulator.step_and_measure([0]) == 0.0
        assert np.all(simulator.step_and_measure_lanes([0]) == 0.0)

    def test_lanes_match_independent_scalar_runs(self, s27_circuit):
        width = 8
        rng = np.random.default_rng(7)
        cycles = 30
        patterns = rng.integers(0, 2, size=(cycles, s27_circuit.num_inputs, width))
        initial = rng.integers(0, 2, size=(s27_circuit.num_latches, width))

        packed = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        packed.reset(
            latch_state=[
                sum(int(initial[i, lane]) << lane for lane in range(width))
                for i in range(s27_circuit.num_latches)
            ]
        )
        packed.settle(
            [
                sum(int(patterns[0, i, lane]) << lane for lane in range(width))
                for i in range(s27_circuit.num_inputs)
            ]
        )

        scalars = []
        for lane in range(width):
            scalar = ZeroDelaySimulator(s27_circuit, width=1, backend="bigint")
            scalar.reset(
                latch_state=[int(initial[i, lane]) for i in range(s27_circuit.num_latches)]
            )
            scalar.settle([int(patterns[0, i, lane]) for i in range(s27_circuit.num_inputs)])
            scalars.append(scalar)

        for cycle in range(1, cycles):
            packed.step(
                [
                    sum(int(patterns[cycle, i, lane]) << lane for lane in range(width))
                    for i in range(s27_circuit.num_inputs)
                ]
            )
            packed_values = packed.values
            for lane, scalar in enumerate(scalars):
                scalar.step([int(patterns[cycle, i, lane]) for i in range(s27_circuit.num_inputs)])
                for net_id in range(s27_circuit.num_nets):
                    assert (packed_values[net_id] >> lane) & 1 == scalar.values[net_id]

    def test_unused_lanes_stay_zero_with_partial_word(self, s27_circuit):
        """Inverting gates must not leak ones into the unused lanes of the last word."""
        width = 70
        simulator = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        rng = np.random.default_rng(3)
        simulator.randomize_state(rng)
        for _ in range(5):
            pattern = [int(rng.integers(0, 1 << 63)) for _ in range(s27_circuit.num_inputs)]
            simulator.step(pattern)
            for value in simulator.values:
                assert value <= simulator.mask

    def test_word_array_patterns_equal_packed_int_patterns(self, s27_circuit):
        width = 96
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, size=(20, s27_circuit.num_inputs, width), dtype=np.uint8)
        via_ints = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        via_words = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        via_ints.reset(latch_state=0)
        via_words.reset(latch_state=0)
        num_words = words_per_width(width)
        for cycle in range(20):
            ints = [
                sum(int(bit) << lane for lane, bit in enumerate(bits[cycle, i]))
                for i in range(s27_circuit.num_inputs)
            ]
            words = bits_to_words(bits[cycle], num_words)
            assert via_ints.step_and_count(ints) == via_words.step_and_count(words)
            assert via_ints.values == via_words.values


class TestSweepStrategies:
    def test_grouped_numpy_matches_native(self, s27_circuit, monkeypatch):
        """The portable grouped-numpy sweep and the compiled kernel agree bit-for-bit."""
        width = 130
        reference = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        monkeypatch.setattr(_native, "native_enabled", lambda: False)
        portable = VectorizedZeroDelaySimulator(s27_circuit, width=width)
        assert portable._native_call is None

        rng = np.random.default_rng(5)
        reference.randomize_state(rng=1)
        portable.randomize_state(rng=1)
        for _ in range(15):
            pattern = [int(rng.integers(0, 1 << 62)) for _ in range(s27_circuit.num_inputs)]
            assert reference.step_and_count(pattern) == portable.step_and_count(pattern)
            assert reference.values == portable.values


class TestBackendFacade:
    def test_resolve_backend_explicit(self):
        assert resolve_backend("bigint", 4096) == "bigint"
        assert resolve_backend("numpy", 1) == "numpy"
        with pytest.raises(ValueError):
            resolve_backend("cuda", 64)

    def test_auto_is_bigint_for_single_lane(self, s27_circuit):
        assert ZeroDelaySimulator(s27_circuit, width=1).backend == "bigint"
        assert ZeroDelaySimulator(s27_circuit, width=1024).backend == "numpy"

    def test_numpy_backend_rejects_values_assignment(self, s27_circuit):
        simulator = ZeroDelaySimulator(s27_circuit, width=8, backend="numpy")
        with pytest.raises(AttributeError):
            simulator.values = [0] * s27_circuit.num_nets

    def test_facade_validates_arguments_for_both_backends(self, s27_circuit):
        for backend in ("bigint", "numpy"):
            with pytest.raises(ValueError):
                ZeroDelaySimulator(s27_circuit, width=0, backend=backend)
            with pytest.raises(ValueError):
                ZeroDelaySimulator(s27_circuit, node_capacitance=[1.0], backend=backend)

    def test_lane_measurement_agrees_across_backends(self, s27_circuit):
        width = 40
        rng = np.random.default_rng(13)
        bigint = ZeroDelaySimulator(s27_circuit, width=width, backend="bigint")
        vector = ZeroDelaySimulator(s27_circuit, width=width, backend="numpy")
        bigint.randomize_state(rng=2)
        vector.randomize_state(rng=2)
        for _ in range(10):
            pattern = [int(rng.integers(0, 1 << 40)) for _ in range(s27_circuit.num_inputs)]
            lanes_a = bigint.step_and_measure_lanes(pattern)
            lanes_b = vector.step_and_measure_lanes(pattern)
            assert lanes_a.shape == (width,)
            assert lanes_b == pytest.approx(lanes_a)

    def test_cycle_accounting_delegates(self, s27_circuit):
        simulator = ZeroDelaySimulator(s27_circuit, width=8, backend="numpy")
        simulator.settle([0] * s27_circuit.num_inputs)
        simulator.run([[1, 0, 1, 0]] * 5, measure=False)
        assert simulator.cycles_simulated == 5
        simulator.reset()
        assert simulator.cycles_simulated == 0
