"""Cross-engine equivalence suite over the simulator registry.

Every power engine registered with
:data:`~repro.api.registry.SIMULATOR_REGISTRY` must satisfy the chain-
independence contract the samplers are built on: the per-lane energies of a
width-*W* ensemble equal, lane for lane, the energies of *W* independent
width-1 runs driven by the same per-lane stimulus, for any width — and the
state engine's settled latch state must agree exactly.  The suite is
parameterized over the registry, so a future registered backend is pinned
automatically the moment it registers, with no new test code.

Widths span the interesting regimes: 1 (scalar/big-int engines), a
non-aligned narrow ensemble, one full 64-lane word, and multi-word widths
with and without a partial last word (1–192, as the PR 1/PR 3 equivalence
suites established for the individual engines).
"""

import numpy as np
import pytest

from repro.api.registry import get_simulator, simulator_names
from repro.circuits.iscas89 import build_circuit
from repro.circuits.program import CircuitProgram
from repro.power.capacitance import CapacitanceModel
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.base import pack_bit_matrix

WIDTHS = (1, 3, 64, 130, 192)
CYCLES = 5


@pytest.fixture(scope="module")
def program() -> CircuitProgram:
    return CircuitProgram.of(build_circuit("s298"))


@pytest.fixture(scope="module")
def caps(program):
    return program.capacitances(CapacitanceModel())


def test_builtin_engines_are_registered():
    names = simulator_names()
    assert "zero-delay" in names
    assert "event-driven" in names
    assert "compiled" in names
    assert "event-driven-compiled" in names
    # alias resolves to the same class as the canonical name
    assert get_simulator("zero-delay-compiled") is get_simulator("compiled")


def _state_backend(name) -> str:
    """The state-engine backend a sampler would pair with simulator *name*.

    Mirrors the samplers' resolution: a registered simulator may pin the
    state backend (the compiled engines route the shared sweeps through the
    codegen kernel); otherwise the width-based auto pick applies.
    """
    return getattr(get_simulator(name), "state_backend", None) or "auto"


def _run_ensemble(name, program, caps, width, latch_bits, input_bits):
    """Drive one ensemble of *width* lanes; return (energies, latch states)."""
    state = ZeroDelaySimulator(
        program, width=width, node_capacitance=caps, backend=_state_backend(name)
    )
    power = get_simulator(name)(
        program,
        width=width,
        node_capacitance=caps,
        delay_model="type-table",
        backend="auto",
    )
    state.reset(latch_state=pack_bit_matrix(latch_bits[:, :width]))
    state.settle(pack_bit_matrix(input_bits[0][:, :width]))
    energies = np.empty((CYCLES - 1, width), dtype=np.float64)
    for step in range(1, CYCLES):
        energies[step - 1] = power.measure_lanes(
            state, pack_bit_matrix(input_bits[step][:, :width])
        )
    states = [state.latch_state_scalar(lane) for lane in range(width)]
    return energies, states


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("name", simulator_names())
def test_per_lane_results_match_width_one_runs(name, program, caps, width):
    """Lane *k* of a width-W ensemble == an independent width-1 run of lane *k*."""
    circuit = program.circuit
    rng = np.random.default_rng(1234 + width)
    latch_bits = rng.integers(0, 2, size=(circuit.num_latches, width), dtype=np.uint8)
    input_bits = rng.integers(
        0, 2, size=(CYCLES, circuit.num_inputs, width), dtype=np.uint8
    )

    energies, states = _run_ensemble(name, program, caps, width, latch_bits, input_bits)

    lanes = range(width) if width <= 4 else sorted({0, width // 2, width - 1})
    for lane in lanes:
        ref_energy, ref_state = _run_ensemble(
            name,
            program,
            caps,
            1,
            latch_bits[:, lane : lane + 1],
            input_bits[:, :, lane : lane + 1],
        )
        # Energies are capacitance-weighted transition counts; the engines
        # guarantee identical *counts* but may legally reduce the weighted
        # sum in different orders, hence approx at float64 resolution.
        np.testing.assert_allclose(energies[:, lane], ref_energy[:, 0], rtol=1e-12)
        assert states[lane] == ref_state[0], f"latch state diverged in lane {lane}"


@pytest.mark.parametrize("name", simulator_names())
def test_measure_total_equals_lane_sum(name, program, caps):
    """measure_total is the lane-summed counterpart of measure_lanes."""
    circuit = program.circuit
    width = 96
    rng = np.random.default_rng(77)
    latch_bits = rng.integers(0, 2, size=(circuit.num_latches, width), dtype=np.uint8)
    input_bits = rng.integers(
        0, 2, size=(CYCLES, circuit.num_inputs, width), dtype=np.uint8
    )
    energies, _ = _run_ensemble(name, program, caps, width, latch_bits, input_bits)

    state = ZeroDelaySimulator(
        program, width=width, node_capacitance=caps, backend=_state_backend(name)
    )
    power = get_simulator(name)(
        program, width=width, node_capacitance=caps, delay_model="type-table"
    )
    state.reset(latch_state=pack_bit_matrix(latch_bits))
    state.settle(pack_bit_matrix(input_bits[0]))
    for step in range(1, CYCLES):
        total = power.measure_total(state, pack_bit_matrix(input_bits[step]))
        assert total == pytest.approx(energies[step - 1].sum(), rel=1e-12)
