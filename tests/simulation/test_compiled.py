"""Unit tests for netlist compilation."""

import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.simulation.compiled import CompiledCircuit


class TestCompile:
    def test_counts_match_netlist(self, s27_netlist, s27_circuit):
        assert s27_circuit.num_gates == s27_netlist.num_gates
        assert s27_circuit.num_latches == s27_netlist.num_latches
        assert s27_circuit.num_inputs == s27_netlist.num_inputs
        assert s27_circuit.num_nets == len(s27_netlist.all_nets())

    def test_gates_in_topological_order(self, s27_circuit):
        produced = set(s27_circuit.primary_inputs) | set(s27_circuit.latch_q)
        for gate in s27_circuit.gates:
            for src in gate.inputs:
                assert src in produced, "gate evaluated before its fan-in"
            produced.add(gate.output)

    def test_net_id_round_trip(self, s27_circuit):
        for name in ("G0", "G17", "G11"):
            assert s27_circuit.net_names[s27_circuit.net_id(name)] == name

    def test_unknown_net_raises_key_error(self, s27_circuit):
        with pytest.raises(KeyError):
            s27_circuit.net_id("does-not-exist")

    def test_latch_pairs_resolved(self, s27_netlist, s27_circuit):
        for latch, q_id, d_id in zip(
            s27_netlist.latches, s27_circuit.latch_q, s27_circuit.latch_d
        ):
            assert s27_circuit.net_names[q_id] == latch.output
            assert s27_circuit.net_names[d_id] == latch.data

    def test_fanout_counts(self, s27_circuit):
        # G11 drives gates G17 and G10 plus the latch G6 -> fanout 3.
        assert s27_circuit.fanout_counts[s27_circuit.net_id("G11")] == 3
        # Primary output contributes one sink.
        assert s27_circuit.fanout_counts[s27_circuit.net_id("G17")] == 1

    def test_fanout_gates_table(self, s27_circuit):
        g11 = s27_circuit.net_id("G11")
        reader_outputs = {
            s27_circuit.net_names[s27_circuit.gates[i].output]
            for i in s27_circuit.fanout_gates[g11]
        }
        assert reader_outputs == {"G17", "G10"}

    def test_validation_failure_propagates(self):
        netlist = Netlist(name="bad")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.AND, ["a", "ghost"])
        with pytest.raises(NetlistError):
            CompiledCircuit.from_netlist(netlist)

    def test_validation_can_be_skipped(self):
        netlist = Netlist(name="warn-only")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.NOT, ["a"])
        circuit = CompiledCircuit.from_netlist(netlist, validate=False)
        assert circuit.num_gates == 1

    def test_state_space_size(self, s27_circuit):
        assert s27_circuit.state_space_size() == 8
