"""Unit tests for the vectorized (time-wheel) event-driven simulator."""

import numpy as np
import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import UnitDelay, ZeroDelay, quantize_delays
from repro.simulation.event_driven import EventDrivenSimulator, resolve_event_backend
from repro.simulation.vectorized_timing import VectorizedEventDrivenSimulator


def _glitch_circuit() -> CompiledCircuit:
    """y = AND(a, NOT(a)) — a classic static-hazard structure."""
    netlist = Netlist(name="hazard")
    netlist.add_input("a")
    netlist.add_input("dummy")
    netlist.add_output("y")
    netlist.add_latch("q", "y")
    netlist.add_gate("na", GateType.NOT, ["a"])
    netlist.add_gate("slow", GateType.BUFF, ["na"])
    netlist.add_gate("y", GateType.AND, ["a", "slow"])
    return CompiledCircuit.from_netlist(netlist)


class TestQuantizeDelays:
    def test_exact_ticks_for_decimal_delays(self):
        ticks, tick = quantize_delays([0.6, 1.1, 0.0, 1.3])
        assert tick == pytest.approx(0.1)
        assert ticks == [6, 11, 0, 13]

    def test_binary_fraction_delays(self):
        ticks, tick = quantize_delays([1.0, 1.25, 2.5])
        assert [count * tick for count in ticks] == pytest.approx([1.0, 1.25, 2.5])

    def test_empty_and_negative(self):
        assert quantize_delays([]) == ([], 1.0)
        with pytest.raises(ValueError):
            quantize_delays([-1.0])

    def test_coprime_denominators_stay_bounded(self):
        """Arbitrary measured floats must not explode the joint tick base."""
        import math

        delays = [1 / math.pi, math.sqrt(2) / 2, math.log(2), math.e / 7,
                  math.sqrt(3) / 3, 1 / math.sqrt(5), math.pi / 9, 0.123456]
        ticks, tick = quantize_delays(delays)
        assert all(0 <= count <= 2**31 for count in ticks)
        assert [count * tick for count in ticks] == pytest.approx(delays, abs=2e-4)
        # Equal delays still share a tick count under the fallback rounding.
        same, _ = quantize_delays([1 / math.pi, 1 / math.pi, 0.5])
        assert same[0] == same[1]

    def test_numpy_backend_accepts_arbitrary_float_delays(self, s27_circuit):
        """The int64 tick tables must build for irrational delay sets."""
        import math

        class MeasuredDelay(UnitDelay):
            def gate_delay(self, circuit, gate):
                return (gate.output % 7 + 1) / math.pi

        simulator = EventDrivenSimulator(
            s27_circuit, delay_model=MeasuredDelay(), width=4, backend="numpy"
        )
        simulator.reset(latch_state=0)
        simulator.settle([0, 0, 0, 0])
        assert simulator.cycle_lanes([0xF, 0x3, 0x0, 0x1]).shape == (4,)


class TestBackendResolution:
    def test_auto_picks_scalar_then_numpy(self):
        assert resolve_event_backend("auto", 1) == "scalar"
        assert resolve_event_backend("auto", 2) == "numpy"
        assert resolve_event_backend("numpy", 1) == "numpy"

    def test_scalar_rejects_width(self):
        with pytest.raises(ValueError, match="single-chain"):
            resolve_event_backend("scalar", 8)
        with pytest.raises(ValueError, match="backend"):
            resolve_event_backend("bigint", 1)

    def test_facade_reports_backend(self, s27_circuit):
        assert EventDrivenSimulator(s27_circuit).backend == "scalar"
        assert EventDrivenSimulator(s27_circuit, width=16).backend == "numpy"


class TestGlitchesVectorized:
    def test_hazard_glitches_counted_per_lane(self):
        """Lanes where ``a`` rises see the 0->1->0 pulse on y; others see nothing."""
        circuit = _glitch_circuit()
        simulator = VectorizedEventDrivenSimulator(circuit, delay_model=UnitDelay(), width=4)
        simulator.reset()
        # Lanes 0/2 hold a=0, lanes 1/3 hold a=1 in the settled network.
        simulator.settle([0b1010, 0b0000])
        energies = simulator.cycle_lanes([0b0101, 0b0000])  # a flips in every lane
        y_id = circuit.net_id("y")
        # Rising lanes (0 and 2) glitch twice on y; falling lanes cannot.
        assert simulator.transition_counts[y_id] == 4
        assert energies[0] > energies[1]
        assert energies[2] > energies[3]
        # The settled value of y is still the functional 0 in every lane.
        assert simulator.values[y_id] == 0

    def test_zero_delay_model_sees_no_hazard(self):
        circuit = _glitch_circuit()
        simulator = VectorizedEventDrivenSimulator(circuit, delay_model=ZeroDelay(), width=4)
        simulator.reset()
        simulator.settle([0b0000, 0b0000])
        simulator.cycle_lanes([0b1111, 0b0000])
        assert simulator.transition_counts[circuit.net_id("y")] == 0


class TestVectorizedInterface:
    def test_grouped_numpy_matches_native_kernel(self, s27_circuit):
        """The ufunc fallback and the compiled frontier kernel agree bit for bit."""
        rng = np.random.default_rng(3)
        width = 70
        bits = rng.integers(0, 2, size=(8, s27_circuit.num_inputs, width), dtype=np.uint8)
        from repro.stimulus.base import pack_bit_matrix

        native = VectorizedEventDrivenSimulator(s27_circuit, width=width)
        fallback = VectorizedEventDrivenSimulator(s27_circuit, width=width)
        fallback._native_eval = None  # force the grouped-ufunc sweep
        for simulator in (native, fallback):
            simulator.reset(latch_state=3)
            simulator.settle(pack_bit_matrix(bits[0]))
        for step in range(1, 8):
            pattern = pack_bit_matrix(bits[step])
            assert native.cycle_lanes(pattern) == pytest.approx(fallback.cycle_lanes(pattern))
        assert np.array_equal(native.transition_counts, fallback.transition_counts)

    def test_load_settled_state_accepts_words_and_ints(self, s27_circuit):
        from repro.simulation.zero_delay import ZeroDelaySimulator

        width = 8
        source = ZeroDelaySimulator(s27_circuit, width=width, backend="numpy")
        source.reset(latch_state=0b110)
        source.settle([0xFF, 0x0F, 0xAA, 0x33])
        by_words = VectorizedEventDrivenSimulator(s27_circuit, width=width)
        by_words.load_settled_state(source.words_view())
        by_ints = VectorizedEventDrivenSimulator(s27_circuit, width=width)
        by_ints.load_settled_state(source.values)
        assert by_words.values == by_ints.values == source.values
        with pytest.raises(ValueError):
            by_words.load_settled_state([0, 1])

    def test_pattern_validation(self, s27_circuit):
        simulator = VectorizedEventDrivenSimulator(s27_circuit, width=4)
        with pytest.raises(ValueError):
            simulator.cycle_lanes([0, 1])
        with pytest.raises(ValueError):
            simulator.cycle_lanes(np.zeros((2, 1), dtype=np.uint64))

    def test_transition_density_is_per_lane_per_cycle(self, s27_circuit):
        rng = np.random.default_rng(5)
        width = 16
        simulator = VectorizedEventDrivenSimulator(s27_circuit, width=width)
        simulator.reset(latch_state=0)
        from repro.stimulus.base import pack_bit_matrix

        bits = rng.integers(0, 2, size=(11, s27_circuit.num_inputs, width), dtype=np.uint8)
        simulator.settle(pack_bit_matrix(bits[0]))
        for step in range(1, 11):
            simulator.cycle_lanes(pack_bit_matrix(bits[step]))
        density = simulator.transition_density()
        assert density.dtype == np.float64
        assert simulator.total_transitions() == pytest.approx(density.sum() * 10 * width)

    def test_state_snapshot_owns_storage(self, s27_circuit):
        simulator = VectorizedEventDrivenSimulator(s27_circuit, width=8)
        simulator.reset(latch_state=1)
        simulator.settle([0, 0, 0, 0])
        snapshot = simulator.get_state()
        simulator.cycle_lanes([0xFF, 0xFF, 0x00, 0x00])
        assert not np.array_equal(snapshot["words"], simulator.words) or (
            snapshot["cycles"] != simulator.cycles_simulated
        )
        with pytest.raises(ValueError):
            simulator.set_state({"backend": "scalar"})

    def test_facade_randomize_state_reproducible_across_backends(self, s27_circuit):
        scalar = EventDrivenSimulator(s27_circuit, backend="scalar")
        vector = EventDrivenSimulator(s27_circuit, width=1, backend="numpy")
        scalar.randomize_state(rng=9)
        vector.randomize_state(rng=9)
        assert scalar.latch_state_scalar() == vector.latch_state_scalar()


class TestWavefrontCompaction:
    """Column-compacted instants count exactly the uncompacted transitions."""

    def _twins(self, circuit, width, caps=None):
        on = VectorizedEventDrivenSimulator(
            circuit, node_capacitance=caps, width=width, wavefront_compaction=True
        )
        off = VectorizedEventDrivenSimulator(
            circuit, node_capacitance=caps, width=width, wavefront_compaction=False
        )
        return on, off

    @pytest.mark.parametrize("width", [512, 520])
    def test_bit_identical_lanes_wide(self, s27_circuit, width):
        from repro.stimulus.random_inputs import BernoulliStimulus

        # Sparse activity drives whole 64-lane words quiescent so the
        # compacted path actually engages at these widths (>= 8 words).
        stimulus = BernoulliStimulus(s27_circuit.num_inputs, 0.05)
        on, off = self._twins(s27_circuit, width)
        rng_on, rng_off = np.random.default_rng(9), np.random.default_rng(9)
        on.randomize_state(rng_on)
        off.randomize_state(rng_off)
        first = stimulus.next_pattern_words(np.random.default_rng(1), width=width)
        on.settle(first)
        off.settle(first)
        rng = np.random.default_rng(2)
        for _ in range(10):
            pattern = stimulus.next_pattern_words(rng, width=width)
            lanes_on = on.cycle_lanes(pattern.copy())
            lanes_off = off.cycle_lanes(pattern)
            assert np.array_equal(lanes_on, lanes_off)
        assert np.array_equal(on.transition_counts, off.transition_counts)
        assert np.array_equal(on.words, off.words)

    def test_bit_identical_with_zero_delay_cascade(self, s27_circuit):
        """Mixed zero/positive delays exercise the compacted level-worklist path."""
        from repro.netlist.cell_library import GateType
        from repro.simulation.delay_models import TypeTableDelay
        from repro.stimulus.random_inputs import BernoulliStimulus

        width = 512
        # NOT/BUFF cells switch instantly: the instant's frontier cascades
        # through the level worklist instead of the single-batch fast path,
        # with eval_cols restricted once whole words go quiescent.
        model = TypeTableDelay({GateType.NOT: 0.0, GateType.BUFF: 0.0}, fanin_factor=0.0)
        on = VectorizedEventDrivenSimulator(
            s27_circuit, delay_model=model, width=width, wavefront_compaction=True
        )
        off = VectorizedEventDrivenSimulator(
            s27_circuit, delay_model=model, width=width, wavefront_compaction=False
        )
        assert on._any_zero_ticks  # the cascade branch is actually in play
        stimulus = BernoulliStimulus(s27_circuit.num_inputs, 0.05)
        on.randomize_state(np.random.default_rng(9))
        off.randomize_state(np.random.default_rng(9))
        rng = np.random.default_rng(2)
        first = stimulus.next_pattern_words(rng, width=width)
        on.settle(first)
        off.settle(first)
        for _ in range(10):
            pattern = stimulus.next_pattern_words(rng, width=width)
            assert np.array_equal(on.cycle_lanes(pattern.copy()), off.cycle_lanes(pattern))
        assert np.array_equal(on.transition_counts, off.transition_counts)
        assert np.array_equal(on.words, off.words)

    def test_compaction_engages_on_sparse_tails(self, s27_circuit):
        """At least one instant must actually evaluate a column subset."""
        width = 512
        on, _ = self._twins(s27_circuit, width)
        subset_calls = []
        original = on._evaluate_gates

        def spy(gates, cols=None):
            if cols is not None:
                subset_calls.append(cols.size)
            return original(gates, cols)

        on._evaluate_gates = spy
        bits = np.zeros((s27_circuit.num_inputs, width), dtype=np.uint8)
        on.reset(latch_state=0)
        from repro.stimulus.base import pack_bit_matrix_words

        on.settle(pack_bit_matrix_words(bits))
        # Toggle one input in a single lane: the whole cascade lives in one
        # 64-lane word, so every other word is quiescent from the seed on.
        bits[0, 3] = 1
        on.cycle_lanes(pack_bit_matrix_words(bits))
        assert subset_calls
        assert max(subset_calls) < on.num_words
