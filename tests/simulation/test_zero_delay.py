"""Unit tests for the bit-parallel zero-delay simulator."""

import numpy as np
import pytest

from repro.simulation.zero_delay import ZeroDelaySimulator


class TestToggleCell:
    def test_toggles_only_when_enabled(self, toggle_circuit):
        simulator = ZeroDelaySimulator(toggle_circuit)
        simulator.reset(latch_state=0)
        simulator.settle([0])

        simulator.step([1])  # EN=1: next state becomes 1 at the following clock
        assert simulator.net_value("Q") == 0  # Q updates at the *next* clock edge
        simulator.step([0])
        assert simulator.net_value("Q") == 1  # captured the toggle
        simulator.step([0])
        assert simulator.net_value("Q") == 1  # EN=0 holds the state

    def test_energy_zero_when_nothing_changes(self, toggle_circuit):
        simulator = ZeroDelaySimulator(toggle_circuit)
        simulator.reset(latch_state=0)
        simulator.settle([0])
        first = simulator.step_and_measure([0])
        second = simulator.step_and_measure([0])
        assert first == 0.0
        assert second == 0.0


class TestCounter:
    def test_counts_up_when_enabled(self, counter_circuit):
        simulator = ZeroDelaySimulator(counter_circuit)
        simulator.reset(latch_state=0)
        simulator.settle([1])
        values = []
        for _ in range(6):
            simulator.step([1])
            state = simulator.latch_state_scalar()
            values.append(state)
        assert values == [1, 2, 3, 4, 5, 6]

    def test_holds_when_disabled(self, counter_circuit):
        simulator = ZeroDelaySimulator(counter_circuit)
        simulator.reset(latch_state=5)
        simulator.settle([0])
        for _ in range(4):
            simulator.step([0])
        assert simulator.latch_state_scalar() == 5

    def test_wraps_around(self, counter_circuit):
        simulator = ZeroDelaySimulator(counter_circuit)
        simulator.reset(latch_state=15)
        simulator.settle([1])
        simulator.step([1])
        assert simulator.latch_state_scalar() == 0


class TestBitParallelConsistency:
    def test_lanes_match_independent_scalar_runs(self, s27_circuit):
        """Every lane of a multi-lane run must equal the corresponding scalar run."""
        width = 8
        rng = np.random.default_rng(7)
        cycles = 40
        patterns = rng.integers(0, 2, size=(cycles, s27_circuit.num_inputs, width))
        initial_states = rng.integers(0, 2, size=(s27_circuit.num_latches, width))

        packed_sim = ZeroDelaySimulator(s27_circuit, width=width)
        packed_initial = [
            int(sum(int(initial_states[i, lane]) << lane for lane in range(width)))
            for i in range(s27_circuit.num_latches)
        ]
        packed_sim.reset(latch_state=packed_initial)
        packed_pattern0 = [
            int(sum(int(patterns[0, i, lane]) << lane for lane in range(width)))
            for i in range(s27_circuit.num_inputs)
        ]
        packed_sim.settle(packed_pattern0)

        scalar_sims = []
        for lane in range(width):
            scalar = ZeroDelaySimulator(s27_circuit, width=1)
            scalar.reset(
                latch_state=[int(initial_states[i, lane]) for i in range(s27_circuit.num_latches)]
            )
            scalar.settle([int(patterns[0, i, lane]) for i in range(s27_circuit.num_inputs)])
            scalar_sims.append(scalar)

        for cycle in range(1, cycles):
            packed_pattern = [
                int(sum(int(patterns[cycle, i, lane]) << lane for lane in range(width)))
                for i in range(s27_circuit.num_inputs)
            ]
            packed_sim.step(packed_pattern)
            for lane, scalar in enumerate(scalar_sims):
                scalar.step([int(patterns[cycle, i, lane]) for i in range(s27_circuit.num_inputs)])
                for net_id in range(s27_circuit.num_nets):
                    assert (packed_sim.values[net_id] >> lane) & 1 == scalar.values[net_id]

    def test_aggregate_energy_equals_sum_of_lane_energies(self, s27_circuit):
        width = 4
        rng = np.random.default_rng(11)
        cycles = 25
        patterns = rng.integers(0, 2, size=(cycles, s27_circuit.num_inputs, width))

        packed = ZeroDelaySimulator(s27_circuit, width=width)
        packed.reset(latch_state=0)
        packed.settle([0] * s27_circuit.num_inputs)
        scalars = []
        for lane in range(width):
            scalar = ZeroDelaySimulator(s27_circuit, width=1)
            scalar.reset(latch_state=0)
            scalar.settle([0] * s27_circuit.num_inputs)
            scalars.append(scalar)

        total_packed = 0.0
        total_scalar = 0.0
        for cycle in range(cycles):
            packed_pattern = [
                int(sum(int(patterns[cycle, i, lane]) << lane for lane in range(width)))
                for i in range(s27_circuit.num_inputs)
            ]
            total_packed += packed.step_and_measure(packed_pattern)
            for lane, scalar in enumerate(scalars):
                total_scalar += scalar.step_and_measure(
                    [int(patterns[cycle, i, lane]) for i in range(s27_circuit.num_inputs)]
                )
        assert total_packed == pytest.approx(total_scalar)


class TestInterface:
    def test_invalid_width_rejected(self, s27_circuit):
        with pytest.raises(ValueError):
            ZeroDelaySimulator(s27_circuit, width=0)

    def test_capacitance_length_checked(self, s27_circuit):
        with pytest.raises(ValueError):
            ZeroDelaySimulator(s27_circuit, node_capacitance=[1.0, 2.0])

    def test_pattern_length_checked(self, s27_circuit):
        simulator = ZeroDelaySimulator(s27_circuit)
        with pytest.raises(ValueError):
            simulator.apply_inputs([1])

    def test_randomize_state_is_reproducible(self, s27_circuit):
        first = ZeroDelaySimulator(s27_circuit, width=16)
        second = ZeroDelaySimulator(s27_circuit, width=16)
        first.randomize_state(rng=3)
        second.randomize_state(rng=3)
        assert first.latch_state() == second.latch_state()

    def test_reset_with_integer_state(self, s27_circuit):
        simulator = ZeroDelaySimulator(s27_circuit)
        simulator.reset(latch_state=0b101)
        assert simulator.latch_state_scalar() == 0b101

    def test_run_without_measurement_returns_empty(self, s27_circuit):
        simulator = ZeroDelaySimulator(s27_circuit)
        simulator.settle([0, 0, 0, 0])
        energies = simulator.run([[1, 0, 1, 0]] * 5, measure=False)
        assert energies == []
        assert simulator.cycles_simulated == 5

    def test_step_and_count_per_net(self, counter_circuit):
        simulator = ZeroDelaySimulator(counter_circuit)
        simulator.reset(latch_state=0)
        simulator.settle([1])
        counts = simulator.step_and_count([1])
        assert len(counts) == counter_circuit.num_nets
        assert sum(counts) > 0
        assert all(count in (0, 1) for count in counts)


class TestLoadLatchLanes:
    """Externally drawn latch bits must behave exactly like randomize_state."""

    @pytest.mark.parametrize("backend", ["bigint", "numpy"])
    def test_load_matches_randomize(self, s27_circuit, backend):
        import numpy as np

        from repro.utils.bitpack import bits_to_words, words_per_width

        width = 70
        randomized = ZeroDelaySimulator(s27_circuit, width=width, backend=backend)
        loaded = ZeroDelaySimulator(s27_circuit, width=width, backend=backend)
        rng = np.random.default_rng(5)
        randomized.randomize_state(rng)

        replay = np.random.default_rng(5)
        bits = np.stack(
            [
                replay.integers(0, 2, size=width, dtype="uint8")
                for _ in range(s27_circuit.num_latches)
            ]
        )
        loaded.load_latch_lanes(bits_to_words(bits, words_per_width(width)))
        assert loaded.latch_state() == randomized.latch_state()

        pattern = [0] * s27_circuit.num_inputs
        randomized.settle(pattern)
        loaded.settle(pattern)
        assert loaded.values == randomized.values

    def test_shape_validation(self, s27_circuit):
        import numpy as np

        simulator = ZeroDelaySimulator(s27_circuit, width=8, backend="numpy")
        with pytest.raises(ValueError):
            simulator.load_latch_lanes(np.zeros((1, 1), dtype=np.uint64))
