"""Unit tests for the event-driven general-delay simulator."""

import numpy as np
import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import UnitDelay, ZeroDelay
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator


def _glitch_circuit() -> CompiledCircuit:
    """y = AND(a, NOT(a)) — a classic static-hazard structure.

    Functionally y is always 0, so the zero-delay simulator never sees it
    switch; with unequal path delays the event-driven simulator observes a
    glitch pulse on y whenever ``a`` rises.
    """
    netlist = Netlist(name="hazard")
    netlist.add_input("a")
    netlist.add_input("dummy")
    netlist.add_output("y")
    netlist.add_latch("q", "y")
    netlist.add_gate("na", GateType.NOT, ["a"])
    netlist.add_gate("slow", GateType.BUFF, ["na"])
    netlist.add_gate("y", GateType.AND, ["a", "slow"])
    return CompiledCircuit.from_netlist(netlist)


class TestFunctionalEquivalence:
    def test_matches_zero_delay_simulator_state_trajectory(self, s27_circuit):
        """With any delay model the *settled* values must match zero-delay simulation."""
        rng = np.random.default_rng(3)
        patterns = rng.integers(0, 2, size=(30, s27_circuit.num_inputs)).tolist()

        event = EventDrivenSimulator(s27_circuit, delay_model=UnitDelay())
        reference = ZeroDelaySimulator(s27_circuit)
        event.reset(latch_state=0)
        reference.reset(latch_state=0)
        event.settle(patterns[0])
        reference.settle(patterns[0])

        for pattern in patterns[1:]:
            event.cycle(pattern)
            reference.step(pattern)
            assert event.values == reference.values

    def test_zero_delay_model_counts_match_zero_delay_simulator(self, s27_circuit):
        rng = np.random.default_rng(5)
        patterns = rng.integers(0, 2, size=(25, s27_circuit.num_inputs)).tolist()

        event = EventDrivenSimulator(s27_circuit, delay_model=ZeroDelay())
        reference = ZeroDelaySimulator(s27_circuit)
        event.reset(latch_state=0)
        reference.reset(latch_state=0)
        event.settle(patterns[0])
        reference.settle(patterns[0])

        for pattern in patterns[1:]:
            switched_event = event.cycle(pattern)
            switched_reference = reference.step_and_measure(pattern)
            assert switched_event == pytest.approx(switched_reference)


class TestGlitches:
    def test_hazard_produces_glitch_transitions(self):
        circuit = _glitch_circuit()
        simulator = EventDrivenSimulator(circuit, delay_model=UnitDelay())
        simulator.reset()
        simulator.settle([0, 0])
        switched = simulator.cycle([1, 0])  # a rises: y pulses 0 -> 1 -> 0
        y_id = circuit.net_id("y")
        assert simulator.transition_counts[y_id] == 2
        assert switched > 0
        # The settled value is still the functional value 0.
        assert simulator.values[y_id] == 0

    def test_no_glitch_with_zero_delays(self):
        circuit = _glitch_circuit()
        simulator = EventDrivenSimulator(circuit, delay_model=ZeroDelay())
        simulator.reset()
        simulator.settle([0, 0])
        simulator.cycle([1, 0])
        assert simulator.transition_counts[circuit.net_id("y")] == 0

    def test_glitch_power_at_least_functional_power(self, s27_circuit):
        """General-delay switched capacitance can only add to the functional one."""
        rng = np.random.default_rng(17)
        patterns = rng.integers(0, 2, size=(60, s27_circuit.num_inputs)).tolist()

        event = EventDrivenSimulator(s27_circuit, delay_model=UnitDelay())
        reference = ZeroDelaySimulator(s27_circuit)
        for simulator in (event, reference):
            simulator.reset(latch_state=0)
            simulator.settle(patterns[0])

        for pattern in patterns[1:]:
            glitchy = event.cycle(pattern)
            functional = reference.step_and_measure(pattern)
            assert glitchy >= functional - 1e-12


class TestInterface:
    def test_capacitance_length_checked(self, s27_circuit):
        with pytest.raises(ValueError):
            EventDrivenSimulator(s27_circuit, node_capacitance=[1.0])

    def test_pattern_length_checked(self, s27_circuit):
        simulator = EventDrivenSimulator(s27_circuit)
        simulator.settle([0, 0, 0, 0])
        with pytest.raises(ValueError):
            simulator.cycle([0, 1])

    def test_load_settled_state(self, s27_circuit):
        source = ZeroDelaySimulator(s27_circuit)
        source.reset(latch_state=0b110)
        source.settle([1, 0, 1, 0])
        simulator = EventDrivenSimulator(s27_circuit)
        simulator.load_settled_state(source.values)
        assert simulator.values == source.values
        with pytest.raises(ValueError):
            simulator.load_settled_state([0, 1])

    def test_transition_density_zero_before_simulation(self, s27_circuit):
        for backend in ("scalar", "numpy"):
            simulator = EventDrivenSimulator(s27_circuit, backend=backend)
            density = simulator.transition_density()
            assert isinstance(density, np.ndarray)
            assert density.dtype == np.float64
            assert np.array_equal(density, np.zeros(s27_circuit.num_nets))

    def test_transition_density_after_run(self, s27_circuit):
        rng = np.random.default_rng(2)
        simulator = EventDrivenSimulator(s27_circuit)
        simulator.settle([0, 0, 0, 0])
        simulator.run(rng.integers(0, 2, size=(20, 4)).tolist())
        density = simulator.transition_density()
        assert density.dtype == np.float64
        assert simulator.cycles_simulated == 20
        assert simulator.total_transitions() == pytest.approx(density.sum() * 20)

    def test_node_capacitance_accepts_numpy_array_without_copy(self, s27_circuit):
        caps = np.full(s27_circuit.num_nets, 2.5e-14)
        simulator = EventDrivenSimulator(s27_circuit, node_capacitance=caps)
        assert isinstance(simulator.node_capacitance, np.ndarray)
        assert simulator.node_capacitance is caps  # float64 input is adopted as-is
        from_list = EventDrivenSimulator(
            s27_circuit, node_capacitance=caps.tolist()
        ).node_capacitance
        assert np.array_equal(from_list, caps)

    def test_randomize_state_reproducible(self, s27_circuit):
        first = EventDrivenSimulator(s27_circuit)
        second = EventDrivenSimulator(s27_circuit)
        first.randomize_state(rng=9)
        second.randomize_state(rng=9)
        assert first.latch_state_scalar() == second.latch_state_scalar()
