"""Unit tests for the synthetic circuit generator."""

import pytest

from repro.circuits.generators import (
    SyntheticCircuitSpec,
    generate_sequential_circuit,
    seed_from_name,
)
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.validate import validate_netlist
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.rng import spawn_rng


SPEC = SyntheticCircuitSpec(
    name="synthetic-test", num_inputs=6, num_outputs=4, num_latches=8, num_gates=90
)


class TestSpecValidation:
    def test_valid_spec_accepted(self):
        assert SPEC.num_gates == 90

    def test_requires_inputs_and_outputs(self):
        with pytest.raises(ValueError):
            SyntheticCircuitSpec("x", 0, 1, 2, 50)
        with pytest.raises(ValueError):
            SyntheticCircuitSpec("x", 1, 0, 2, 50)

    def test_gate_budget_must_cover_next_state_logic(self):
        with pytest.raises(ValueError):
            SyntheticCircuitSpec("x", 2, 2, 10, 15)


class TestGeneratedCircuits:
    def test_structurally_valid(self):
        netlist = generate_sequential_circuit(SPEC, seed=1)
        errors = [i for i in validate_netlist(netlist) if i.severity == "error"]
        assert errors == []

    def test_matches_requested_shape(self):
        netlist = generate_sequential_circuit(SPEC, seed=1)
        assert netlist.num_inputs == SPEC.num_inputs
        assert netlist.num_outputs == SPEC.num_outputs
        assert netlist.num_latches == SPEC.num_latches
        # Gate count matches the budget to within the rounding of the
        # construction (next-state helpers + output buffers are included).
        assert abs(netlist.num_gates - SPEC.num_gates) <= SPEC.num_outputs

    def test_deterministic_for_same_seed(self):
        first = generate_sequential_circuit(SPEC, seed=7)
        second = generate_sequential_circuit(SPEC, seed=7)
        assert write_bench(first) == write_bench(second)

    def test_different_seeds_differ(self):
        first = generate_sequential_circuit(SPEC, seed=1)
        second = generate_sequential_circuit(SPEC, seed=2)
        assert write_bench(first) != write_bench(second)

    def test_round_trips_through_bench_format(self):
        netlist = generate_sequential_circuit(SPEC, seed=3)
        reparsed = parse_bench(write_bench(netlist), name=netlist.name)
        assert reparsed.num_gates == netlist.num_gates
        assert reparsed.num_latches == netlist.num_latches

    def test_circuit_is_alive(self):
        """The generated FSM must actually switch under random stimulus."""
        netlist = generate_sequential_circuit(SPEC, seed=4)
        circuit = CompiledCircuit.from_netlist(netlist)
        simulator = ZeroDelaySimulator(circuit)
        stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
        rng = spawn_rng(11)
        simulator.randomize_state(rng)
        simulator.settle(stimulus.next_pattern(rng))
        total = sum(simulator.step_and_measure(stimulus.next_pattern(rng)) for _ in range(200))
        assert total > 0

    def test_state_depends_on_inputs(self):
        """Different input streams must drive the state to different trajectories."""
        netlist = generate_sequential_circuit(SPEC, seed=5)
        circuit = CompiledCircuit.from_netlist(netlist)
        first = ZeroDelaySimulator(circuit)
        second = ZeroDelaySimulator(circuit)
        for simulator in (first, second):
            simulator.reset(latch_state=0)
            simulator.settle([0] * circuit.num_inputs)
        for _ in range(20):
            first.step([1] * circuit.num_inputs)
            second.step([0] * circuit.num_inputs)
        assert first.latch_state_scalar() != second.latch_state_scalar()


class TestSeedFromName:
    def test_stable_across_calls(self):
        assert seed_from_name("s298") == seed_from_name("s298")

    def test_different_names_differ(self):
        assert seed_from_name("s298") != seed_from_name("s400")
