"""Unit tests for the canonical small circuits."""

import pytest

from repro.circuits.library import (
    binary_counter,
    johnson_counter,
    lfsr,
    parity_tracker,
    s27,
    shift_register,
    toggle_cell,
)
from repro.netlist.validate import validate_netlist
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator


def _errors(netlist):
    return [issue for issue in validate_netlist(netlist) if issue.severity == "error"]


class TestStructure:
    @pytest.mark.parametrize(
        "factory",
        [s27, toggle_cell, lambda: binary_counter(4),
         lambda: binary_counter(3, with_enable=False),
         lambda: shift_register(5), lambda: lfsr(5), lambda: johnson_counter(4),
         lambda: parity_tracker(3)],
        ids=["s27", "toggle", "counter4", "counter3-free", "shift5", "lfsr5",
             "johnson4", "parity3"],
    )
    def test_all_library_circuits_are_valid(self, factory):
        netlist = factory()
        assert _errors(netlist) == []
        CompiledCircuit.from_netlist(netlist)

    def test_s27_published_size(self):
        netlist = s27()
        assert (netlist.num_inputs, netlist.num_outputs) == (4, 1)
        assert (netlist.num_latches, netlist.num_gates) == (3, 10)

    def test_counter_size_scales_with_bits(self):
        assert binary_counter(8).num_latches == 8
        assert shift_register(6).num_latches == 6

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            binary_counter(0)
        with pytest.raises(ValueError):
            shift_register(0)
        with pytest.raises(ValueError):
            lfsr(1)
        with pytest.raises(ValueError):
            johnson_counter(1)
        with pytest.raises(ValueError):
            parity_tracker(0)

    def test_lfsr_tap_bounds_checked(self):
        with pytest.raises(ValueError):
            lfsr(4, taps=(5,))


class TestBehaviour:
    def test_shift_register_delays_input(self):
        circuit = CompiledCircuit.from_netlist(shift_register(3))
        simulator = ZeroDelaySimulator(circuit)
        simulator.reset(latch_state=0)
        simulator.settle([1])
        inputs = [1, 0, 1, 1, 0, 0, 1]
        outputs = []
        for bit in [1] + inputs:
            simulator.step([bit])
            outputs.append(simulator.net_value("SO"))
        # SO reproduces the serial input stream delayed by the register length.
        assert outputs[4:] == [1, 0, 1, 1]

    def test_johnson_counter_holds_when_requested(self):
        circuit = CompiledCircuit.from_netlist(johnson_counter(4))
        simulator = ZeroDelaySimulator(circuit)
        simulator.reset(latch_state=0b0011)
        simulator.settle([1])
        for _ in range(5):
            simulator.step([1])
        assert simulator.latch_state_scalar() == 0b0011

    def test_johnson_counter_rotates_when_enabled(self):
        circuit = CompiledCircuit.from_netlist(johnson_counter(3))
        simulator = ZeroDelaySimulator(circuit)
        simulator.reset(latch_state=0b000)
        simulator.settle([0])
        states = []
        for _ in range(6):
            simulator.step([0])
            states.append(simulator.latch_state_scalar())
        # The twisted ring walks through the Johnson sequence of period 2*bits.
        assert states == [0b001, 0b011, 0b111, 0b110, 0b100, 0b000]

    def test_parity_tracker_accumulates_parity(self):
        circuit = CompiledCircuit.from_netlist(parity_tracker(2))
        simulator = ZeroDelaySimulator(circuit)
        simulator.reset(latch_state=0)
        simulator.settle([0, 0])
        cumulative = 0
        for pattern in ([1, 0], [1, 1], [0, 1], [1, 1]):
            simulator.step(pattern)
            # state at this point reflects inputs up to the *previous* cycle
        # Feed one more neutral cycle so the last pattern is absorbed.
        simulator.step([0, 0])
        for pattern in ([1, 0], [1, 1], [0, 1], [1, 1]):
            cumulative ^= pattern[0] ^ pattern[1]
        assert simulator.net_value("STATE") == cumulative
