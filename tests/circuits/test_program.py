"""Unit tests for the unified circuit lowering (:mod:`repro.circuits.program`)."""

import pickle

import numpy as np
import pytest

from repro.circuits.iscas89 import build_netlist
from repro.circuits.library import s27
from repro.circuits.program import (
    CircuitProgram,
    circuit_content_key,
    clear_program_memo,
    compile_count,
    program_cache_dir,
)
from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist
from repro.power.capacitance import CapacitanceModel
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import FanoutDelay, quantize_delays


@pytest.fixture()
def s27_circuit() -> CompiledCircuit:
    return CompiledCircuit.from_netlist(s27())


@pytest.fixture(autouse=True)
def _no_disk_cache(monkeypatch):
    """Unit tests run with the disk cache disabled unless they enable it."""
    monkeypatch.delenv("REPRO_PROGRAM_CACHE", raising=False)


class TestContentKey:
    def test_identical_structure_same_key(self):
        a = CompiledCircuit.from_netlist(s27())
        b = CompiledCircuit.from_netlist(s27())
        assert a is not b
        assert circuit_content_key(a) == circuit_content_key(b)

    def test_different_structure_different_key(self, s27_circuit):
        other = CompiledCircuit.from_netlist(build_netlist("s298"))
        assert circuit_content_key(s27_circuit) != circuit_content_key(other)

    def test_key_is_stable_across_processes(self, s27_circuit):
        # No Python hash() involved: the key must be a fixed string for a
        # fixed circuit, or the disk cache would never hit across runs.
        assert circuit_content_key(s27_circuit) == circuit_content_key(s27_circuit)
        assert len(circuit_content_key(s27_circuit)) == 24


class TestMemoization:
    def test_of_returns_same_program_for_same_circuit(self, s27_circuit):
        first = CircuitProgram.of(s27_circuit)
        second = CircuitProgram.of(s27_circuit)
        assert first is second

    def test_of_accepts_a_program(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        assert CircuitProgram.of(program) is program

    def test_of_rejects_other_types(self):
        with pytest.raises(TypeError):
            CircuitProgram.of(s27())

    def test_equal_circuits_share_one_program(self):
        clear_program_memo()
        a = CompiledCircuit.from_netlist(s27())
        b = CompiledCircuit.from_netlist(s27())
        assert CircuitProgram.of(a) is CircuitProgram.of(b)

    def test_compile_count_rises_once_per_structure(self):
        clear_program_memo()
        circuit = CompiledCircuit.from_netlist(s27())
        before = compile_count()
        CircuitProgram.of(circuit)
        after_first = compile_count()
        CircuitProgram.of(CompiledCircuit.from_netlist(s27()))
        assert after_first >= before  # fresh lowering only if memo was cold
        assert compile_count() == after_first  # second circuit: memo hit


class TestLoweredTables:
    def test_every_non_const_gate_in_exactly_one_group(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        outs = np.concatenate([plan.outs for plan in program.level_groups])
        expected = sorted(
            gate.output
            for gate in s27_circuit.gates
            if gate.gate_type not in (GateType.CONST0, GateType.CONST1)
        )
        assert sorted(outs.tolist()) == expected

    def test_fanin_csr_matches_circuit(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        for index, gate in enumerate(s27_circuit.gates):
            start, stop = program.in_ptr[index], program.in_ptr[index + 1]
            assert tuple(program.in_rows[start:stop].tolist()) == gate.inputs

    def test_fanout_csr_matches_circuit(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        for net, gate_ids in enumerate(s27_circuit.fanout_gates):
            start, stop = program.fanout_ptr[net], program.fanout_ptr[net + 1]
            assert tuple(program.fanout_idx[start:stop].tolist()) == gate_ids

    def test_levels_cover_all_non_const_gates(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        assert sum(program.gates_per_level()) == s27_circuit.num_gates
        assert program.stats()["levels"] == len(program.levels_all)

    def test_delay_schedule_matches_quantize_delays(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        model = FanoutDelay()
        schedule = program.delay_schedule(model)
        expected_ticks, expected_tick = quantize_delays(model.delays(s27_circuit))
        assert schedule.ticks.tolist() == expected_ticks
        assert schedule.tick == expected_tick
        assert schedule.delays == tuple(model.delays(s27_circuit))

    def test_delay_schedule_memoized_by_name_and_instance(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        assert program.delay_schedule("fanout") is program.delay_schedule("fanout")
        # Two FanoutDelay() instances with equal parameters produce equal
        # delay vectors and therefore share one schedule.
        assert program.delay_schedule(FanoutDelay()) is program.delay_schedule(FanoutDelay())
        assert program.delay_schedule("zero").any_zero_ticks is True
        assert program.delay_schedule("unit").any_zero_ticks is False

    def test_capacitances_memoized_and_read_only(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        model = CapacitanceModel()
        caps = program.capacitances(model)
        assert caps is program.capacitances(model)
        assert caps.tolist() == model.node_capacitances(s27_circuit)
        with pytest.raises(ValueError):
            caps[0] = 1.0


class TestDiskCache:
    def test_round_trip_through_the_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
        assert program_cache_dir() == tmp_path
        clear_program_memo()
        circuit = CompiledCircuit.from_netlist(build_netlist("s298"))
        original = CircuitProgram.of(circuit)
        cached_files = list(tmp_path.glob("*.program"))
        assert len(cached_files) == 1
        assert original.key in cached_files[0].name

        clear_program_memo()
        before = compile_count()
        reloaded = CircuitProgram.of(CompiledCircuit.from_netlist(build_netlist("s298")))
        assert compile_count() == before  # deserialized, not recompiled
        assert reloaded.key == original.key
        np.testing.assert_array_equal(reloaded.padded_rows, original.padded_rows)
        np.testing.assert_array_equal(reloaded.fanout_idx, original.fanout_idx)
        np.testing.assert_array_equal(reloaded.sweep_ops, original.sweep_ops)

    def test_corrupted_cache_file_recompiles(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
        clear_program_memo()
        circuit = CompiledCircuit.from_netlist(s27())
        program = CircuitProgram.of(circuit)
        path = CircuitProgram._cache_path(program.key)
        path.write_bytes(b"not a pickle")
        clear_program_memo()
        rebuilt = CircuitProgram.of(CompiledCircuit.from_netlist(s27()))
        assert rebuilt.key == program.key

    def test_no_cache_env_disables_disk_cache(self):
        assert program_cache_dir() is None
        assert CircuitProgram._cache_path("deadbeef") is None


class TestPickle:
    def test_program_pickles_with_tables_and_memos(self, s27_circuit):
        program = CircuitProgram.of(s27_circuit)
        program.delay_schedule("fanout")
        clone = pickle.loads(pickle.dumps(program))
        assert clone.key == program.key
        assert clone.circuit.net_names == program.circuit.net_names
        np.testing.assert_array_equal(clone.in_rows, program.in_rows)
        # The unpickled circuit re-attaches its program, so engine
        # construction in a worker process is a lookup, not a compile.
        assert CircuitProgram.of(clone.circuit) is clone


def _input_names(circuit):
    return [circuit.net_names[i] for i in circuit.primary_inputs]


class TestOptimize:
    def _build_bufferful_netlist(self) -> Netlist:
        netlist = Netlist(name="buffered")
        netlist.add_input("A")
        netlist.add_input("B")
        netlist.add_output("OUT")
        netlist.add_gate("N1", GateType.AND, ["A", "B"])
        netlist.add_gate("B1", GateType.BUFF, ["N1"])
        netlist.add_gate("B2", GateType.BUFF, ["B1"])
        netlist.add_gate("INV1", GateType.NOT, ["B2"])
        netlist.add_gate("INV2", GateType.NOT, ["INV1"])
        netlist.add_gate("DEAD", GateType.OR, ["A", "B"])  # drives nothing
        netlist.add_gate("OUT", GateType.XOR, ["INV2", "Q"])
        netlist.add_latch("Q", "INV2", 0)
        return netlist

    def test_collapses_buffers_inverter_pairs_and_dead_gates(self):
        program = CircuitProgram.from_netlist(self._build_bufferful_netlist())
        optimized = program.optimize()
        kept_types = [gate.gate_type for gate in optimized.circuit.gates]
        assert GateType.BUFF not in kept_types
        # INV1/INV2 collapse to the original signal; DEAD is swept.
        assert kept_types.count(GateType.NOT) == 0
        assert GateType.OR not in kept_types
        assert optimized.circuit.num_gates == 2  # AND + XOR
        assert optimized is not program
        assert optimized.key != program.key

    def test_optimize_preserves_po_and_latch_behavior(self):
        rng = np.random.default_rng(7)
        netlist = self._build_bufferful_netlist()
        original = CompiledCircuit.from_netlist(netlist)
        optimized = CircuitProgram.of(original).optimize().circuit

        from repro.simulation.zero_delay import ZeroDelaySimulator

        sim_a = ZeroDelaySimulator(original, width=1, backend="bigint")
        sim_b = ZeroDelaySimulator(optimized, width=1, backend="bigint")
        for sim in (sim_a, sim_b):
            sim.reset()
        for _ in range(64):
            pattern = {"A": int(rng.integers(0, 2)), "B": int(rng.integers(0, 2))}
            for sim, circuit in ((sim_a, original), (sim_b, optimized)):
                sim.step([pattern[name] for name in _input_names(circuit)])
            assert sim_a.net_value("OUT") == sim_b.net_value("OUT")
            assert sim_a.latch_state_scalar() == sim_b.latch_state_scalar()

    def test_po_driving_buffer_is_kept(self):
        netlist = Netlist(name="po-buffer")
        netlist.add_input("A")
        netlist.add_output("OUT")
        netlist.add_gate("OUT", GateType.BUFF, ["A"])
        optimized = CircuitProgram.from_netlist(netlist).optimize()
        assert optimized.circuit.num_gates == 1

    def test_optimize_is_opt_in(self, s27_circuit):
        # Building a program never optimizes implicitly.
        program = CircuitProgram.of(s27_circuit)
        assert program.circuit.num_gates == s27_circuit.num_gates
