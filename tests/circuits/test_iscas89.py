"""Unit tests for the ISCAS89-like benchmark registry."""

import pytest

from repro.circuits.iscas89 import (
    CIRCUIT_SPECS,
    SMALL_CIRCUIT_NAMES,
    TABLE_CIRCUIT_NAMES,
    build_circuit,
    build_netlist,
    circuit_summary,
    list_circuits,
)
from repro.netlist.validate import validate_netlist


class TestRegistry:
    def test_all_24_table_circuits_registered(self):
        assert len(TABLE_CIRCUIT_NAMES) == 24
        for name in TABLE_CIRCUIT_NAMES:
            assert name in CIRCUIT_SPECS

    def test_list_circuits_includes_s27(self):
        assert "s27" in list_circuits()

    def test_small_subset_is_nonempty_and_small(self):
        assert SMALL_CIRCUIT_NAMES
        for name in SMALL_CIRCUIT_NAMES:
            assert CIRCUIT_SPECS[name][3] <= 700

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_netlist("s99999")


class TestBuiltCircuits:
    @pytest.mark.parametrize("name", ["s27", "s208", "s298", "s386", "s832", "s1494"])
    def test_shape_matches_registry(self, name):
        num_inputs, num_outputs, num_latches, _num_gates = CIRCUIT_SPECS[name]
        circuit = build_circuit(name)
        assert circuit.num_inputs == num_inputs
        assert len(circuit.primary_outputs) == num_outputs
        assert circuit.num_latches == num_latches

    @pytest.mark.parametrize("name", ["s298", "s344", "s420", "s1238"])
    def test_structurally_valid(self, name):
        errors = [i for i in validate_netlist(build_netlist(name)) if i.severity == "error"]
        assert errors == []

    def test_s27_is_the_real_netlist(self):
        circuit = build_circuit("s27")
        assert circuit.num_gates == 10
        assert "G17" in circuit.net_names

    def test_deterministic_construction(self):
        first = build_netlist("s298")
        second = build_netlist("s298")
        assert [g.output for g in first.gates] == [g.output for g in second.gates]

    def test_build_circuit_is_cached(self):
        assert build_circuit("s344") is build_circuit("s344")

    def test_summary_contents(self):
        summary = circuit_summary("s298")
        assert summary["inputs"] == 3
        assert summary["latches"] == 14
        assert summary["gates"] > 0
        assert summary["nets"] >= summary["gates"]
