"""Shared fixtures for the test suite.

The fixtures favour *quick* configurations (short sequences, modest sample
caps) so the whole suite runs in well under a minute; the full paper-scale
settings are exercised by the benchmark harness instead.
"""

from __future__ import annotations

import pytest

from repro.circuits.library import binary_counter, parity_tracker, s27, toggle_cell
from repro.core.config import EstimationConfig
from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.simulation.compiled import CompiledCircuit


@pytest.fixture(scope="session")
def s27_netlist():
    """The real ISCAS89 s27 netlist."""
    return s27()


@pytest.fixture(scope="session")
def s27_circuit(s27_netlist):
    """Compiled s27."""
    return CompiledCircuit.from_netlist(s27_netlist)


@pytest.fixture(scope="session")
def s298_circuit():
    """Compiled ISCAS89 s298 (large enough for multi-word shard partitions)."""
    from repro.circuits.iscas89 import build_circuit

    return build_circuit("s298")


@pytest.fixture(scope="session")
def toggle_circuit():
    """Compiled single T flip-flop circuit."""
    return CompiledCircuit.from_netlist(toggle_cell())


@pytest.fixture(scope="session")
def counter_circuit():
    """Compiled 4-bit enabled counter."""
    return CompiledCircuit.from_netlist(binary_counter(4))


@pytest.fixture(scope="session")
def parity_circuit():
    """Compiled 3-input parity tracker."""
    return CompiledCircuit.from_netlist(parity_tracker(3))


@pytest.fixture(scope="session")
def power_model():
    """The paper's electrical operating point (5 V, 20 MHz)."""
    return PowerModel(vdd=5.0, clock_frequency_hz=20e6)


@pytest.fixture(scope="session")
def capacitance_model():
    """Default standard-cell capacitance model."""
    return CapacitanceModel()


@pytest.fixture()
def quick_config():
    """A DIPE configuration small enough for unit tests."""
    return EstimationConfig(
        randomness_sequence_length=64,
        min_samples=64,
        check_interval=16,
        max_samples=4000,
        warmup_cycles=16,
        max_independence_interval=16,
    )
