"""Streaming-protocol tests: event invariants, early abort, checkpoint/resume."""

import json

import pytest

from repro.api.events import (
    EstimateCompleted,
    IntervalSelected,
    ProgressEvent,
    RunStarted,
    SampleProgress,
    event_from_dict,
    event_kinds,
)
from repro.core.baselines import ConsecutiveCycleEstimator
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator


def _without_elapsed(estimate):
    data = estimate.to_dict()
    data.pop("elapsed_seconds")
    return data


class TestStreamInvariants:
    def test_stream_shape(self, s27_circuit, quick_config):
        events = list(DipeEstimator(s27_circuit, config=quick_config, rng=1).run())
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[1], IntervalSelected)
        assert isinstance(events[-1], EstimateCompleted)
        assert any(isinstance(event, SampleProgress) for event in events)

    def test_samples_drawn_monotonic(self, s27_circuit, quick_config):
        events = list(DipeEstimator(s27_circuit, config=quick_config, rng=2).run())
        counts = [event.samples_drawn for event in events]
        assert counts == sorted(counts)

    def test_final_event_equals_estimate(self, s27_circuit, quick_config):
        estimator = DipeEstimator(s27_circuit, config=quick_config, rng=3)
        events = list(estimator.run())
        direct = DipeEstimator(s27_circuit, config=quick_config, rng=3).estimate()
        assert _without_elapsed(events[-1].estimate) == _without_elapsed(direct)
        assert events[-1].samples_drawn == direct.sample_size

    def test_interval_selected_carries_diagnostics(self, s27_circuit, quick_config):
        events = list(DipeEstimator(s27_circuit, config=quick_config, rng=4).run())
        selected = next(event for event in events if isinstance(event, IntervalSelected))
        assert selected.selection is not None
        assert selected.num_trials == selected.selection.num_trials
        assert selected.interval == selected.selection.interval

    def test_sample_progress_tracks_criterion(self, s27_circuit, quick_config):
        events = list(DipeEstimator(s27_circuit, config=quick_config, rng=5).run())
        progress = [event for event in events if isinstance(event, SampleProgress)]
        assert progress[-1].accuracy_met or progress[-1].samples_drawn >= quick_config.max_samples
        for event in progress:
            assert event.lower_bound_w <= event.running_mean_w <= event.upper_bound_w

    def test_events_serialize_to_json(self, s27_circuit, quick_config):
        for event in DipeEstimator(s27_circuit, config=quick_config, rng=6).run():
            payload = json.loads(json.dumps(event.to_dict()))
            assert payload["kind"] == event.kind
            assert payload["samples_drawn"] == event.samples_drawn

    def test_estimate_forwards_progress(self, s27_circuit, quick_config):
        kinds = []
        DipeEstimator(s27_circuit, config=quick_config, rng=7).estimate(
            progress=lambda event: kinds.append(event.kind)
        )
        assert kinds[0] == "run-started" and kinds[-1] == "estimate-completed"

    def test_early_abort_via_close(self, s27_circuit, quick_config):
        estimator = DipeEstimator(s27_circuit, config=quick_config, rng=8)
        stream = estimator.run()
        next(stream)  # run-started
        stream.close()  # must not raise; no estimate is produced


class TestWireFormat:
    """to_dict / event_from_dict round-tripping (the service SSE protocol)."""

    def test_roundtrip_preserves_type_and_fields(self, s27_circuit, quick_config):
        for event in DipeEstimator(s27_circuit, config=quick_config, rng=12).run():
            wire = json.loads(json.dumps(event.to_dict()))
            parsed = event_from_dict(wire)
            assert type(parsed) is type(event)
            assert parsed.kind == event.kind
            assert parsed.samples_drawn == event.samples_drawn
            assert parsed.cycles_simulated == event.cycles_simulated

    def test_roundtrip_drops_rich_payloads_only(self, s27_circuit, quick_config):
        events = list(DipeEstimator(s27_circuit, config=quick_config, rng=13).run())
        selected = next(e for e in events if isinstance(e, IntervalSelected))
        parsed = event_from_dict(selected.to_dict())
        assert parsed.interval == selected.interval
        assert parsed.selection is None  # repr=False diagnostics stay local
        final = event_from_dict(events[-1].to_dict())
        assert isinstance(final, EstimateCompleted)
        assert isinstance(final.estimate, dict)  # wire form, not the dataclass

    def test_service_lifecycle_events_share_the_format(self):
        from repro.service.events import JobCompleted, JobQueued

        queued = JobQueued(circuit="s27", method="dipe", samples_drawn=0,
                           cycles_simulated=0, job_id="j1", queue_position=3)
        parsed = event_from_dict(json.loads(json.dumps(queued.to_dict())))
        assert isinstance(parsed, JobQueued)
        assert parsed.queue_position == 3
        done = JobCompleted(circuit="s27", method="dipe", samples_drawn=8,
                            cycles_simulated=64, job_id="j1",
                            result={"type": "power-estimate", "data": {}})
        parsed = event_from_dict(done.to_dict())
        assert parsed.result["type"] == "power-estimate"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "martian-event"})
        with pytest.raises(ValueError, match="must be a dict"):
            event_from_dict("not a dict")

    def test_every_estimator_kind_registered(self):
        kinds = event_kinds()
        for expected in ("progress", "run-started", "interval-trial",
                         "interval-selected", "sample-progress", "chains-resized",
                         "estimate-completed"):
            assert expected in kinds

    def test_duplicate_kind_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            class Impostor(ProgressEvent):
                kind = "run-started"

    def test_subclass_without_kind_inherits_parent_parser(self):
        class Specialized(RunStarted):  # no new kind: parent stays the parser
            pass

        parsed = event_from_dict(
            {"kind": "run-started", "circuit": "c", "method": "dipe",
             "samples_drawn": 0, "cycles_simulated": 0}
        )
        assert type(parsed) is RunStarted


class TestCheckpointResume:
    def _checkpoint_after(self, estimator, num_progress_events):
        stream = estimator.run()
        seen = 0
        for event in stream:
            if isinstance(event, SampleProgress):
                seen += 1
                if seen == num_progress_events:
                    checkpoint = estimator.make_checkpoint()
                    stream.close()
                    return checkpoint
        raise AssertionError("stream finished before the requested checkpoint")

    def test_resumed_run_identical(self, s27_circuit, quick_config):
        full = DipeEstimator(s27_circuit, config=quick_config, rng=42).estimate()
        checkpoint = self._checkpoint_after(
            DipeEstimator(s27_circuit, config=quick_config, rng=42), 1
        )
        assert checkpoint.samples_drawn < full.sample_size
        resumed = DipeEstimator(s27_circuit, config=quick_config, rng=0).estimate_from(checkpoint)
        assert _without_elapsed(resumed) == _without_elapsed(full)

    def test_resume_with_multichain_numpy_backend(self, quick_config):
        from repro.circuits.iscas89 import build_circuit

        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=16,
            max_samples=4000,
            warmup_cycles=16,
            max_independence_interval=16,
            num_chains=8,
            simulation_backend="numpy",
        )
        circuit = build_circuit("s298")
        full = DipeEstimator(circuit, config=config, rng=5).estimate()
        checkpoint = self._checkpoint_after(DipeEstimator(circuit, config=config, rng=5), 1)
        resumed = DipeEstimator(circuit, config=config, rng=1).estimate_from(checkpoint)
        assert _without_elapsed(resumed) == _without_elapsed(full)

    def test_baseline_checkpoint_resume(self, s27_circuit, quick_config):
        full = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=11).estimate()
        estimator = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=11)
        checkpoint = self._checkpoint_after(estimator, 1)
        resumed = ConsecutiveCycleEstimator(
            s27_circuit, config=quick_config, rng=2
        ).estimate_from(checkpoint)
        assert _without_elapsed(resumed) == _without_elapsed(full)

    def test_checkpoint_outside_run_rejected(self, s27_circuit, quick_config):
        with pytest.raises(RuntimeError, match="no run in progress"):
            DipeEstimator(s27_circuit, config=quick_config, rng=1).make_checkpoint()

    def test_mismatched_circuit_rejected(self, s27_circuit, quick_config):
        from repro.circuits.iscas89 import build_circuit

        checkpoint = self._checkpoint_after(
            DipeEstimator(s27_circuit, config=quick_config, rng=3), 1
        )
        other = DipeEstimator(build_circuit("s298"), config=quick_config, rng=3)
        with pytest.raises(ValueError, match="circuit"):
            list(other.run(resume_from=checkpoint))

    def test_mismatched_method_rejected(self, s27_circuit, quick_config):
        checkpoint = self._checkpoint_after(
            DipeEstimator(s27_circuit, config=quick_config, rng=3), 1
        )
        baseline = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=3)
        with pytest.raises(ValueError, match="checkpoint"):
            list(baseline.run(resume_from=checkpoint))


class TestFigure3Stream:
    def test_one_trial_event_per_interval(self, quick_config):
        from repro.api.events import IntervalTrialEvent
        from repro.experiments.figure3 import Figure3Estimator

        from repro.circuits.iscas89 import build_circuit

        estimator = Figure3Estimator(
            build_circuit("s298"),
            config=quick_config,
            rng=9,
            max_interval=3,
            sequence_length=120,
        )
        events = list(estimator.run())
        trials = [event for event in events if isinstance(event, IntervalTrialEvent)]
        assert [event.interval for event in trials] == [0, 1, 2, 3]
        assert isinstance(events[-1], EstimateCompleted)
        assert events[-1].estimate.points[0].interval == 0
        counts = [event.samples_drawn for event in events]
        assert counts == sorted(counts)


class TestMembershipEvents:
    """Worker-joined / worker-left events share the wire format and defaults."""

    def test_roundtrip(self):
        from repro.api.events import WorkerJoined, WorkerLeft, event_from_dict

        common = dict(circuit="s298", method="dipe", samples_drawn=3, cycles_simulated=96)
        joined = WorkerJoined(**common, worker="vm-17", pid=17, epoch=4, host="10.0.0.2")
        assert event_from_dict(joined.to_dict()) == joined
        assert joined.to_dict()["kind"] == "worker-joined"
        left = WorkerLeft(**common, worker="seat-1", epoch=2, reason="exhausted-restarts")
        assert event_from_dict(left.to_dict()) == left
        assert left.to_dict()["kind"] == "worker-left"
        assert left.pid is None  # default survives the wire

    def test_kinds_registered(self):
        from repro.api.events import event_kinds

        assert "worker-joined" in event_kinds()
        assert "worker-left" in event_kinds()
