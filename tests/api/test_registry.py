"""Unit tests for the plugin registries."""

import pytest

from repro.api.registry import (
    ESTIMATOR_REGISTRY,
    Registry,
    delay_model_names,
    estimator_names,
    get_delay_model,
    get_estimator,
    get_stimulus,
    get_stopping_criterion,
    stimulus_names,
    stopping_criterion_names,
)
from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.dipe import DipeEstimator
from repro.stats.stopping import (
    CltStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
    OrderStatisticStoppingCriterion,
)
from repro.stimulus.random_inputs import BernoulliStimulus


class TestBuiltinRegistrations:
    def test_builtin_estimators_registered(self):
        assert get_estimator("dipe") is DipeEstimator
        assert get_estimator("consecutive-mc") is ConsecutiveCycleEstimator
        assert get_estimator("fixed-warmup") is FixedWarmupEstimator

    def test_figure3_estimator_registered(self):
        from repro.experiments.figure3 import Figure3Estimator

        assert get_estimator("figure3-profile") is Figure3Estimator

    def test_builtin_stimuli_registered(self):
        assert get_stimulus("bernoulli") is BernoulliStimulus
        for name in ("lag-one-markov", "spatially-correlated", "sequence"):
            assert name in stimulus_names()

    def test_builtin_stopping_criteria_registered(self):
        assert get_stopping_criterion("order-statistic") is OrderStatisticStoppingCriterion
        assert get_stopping_criterion("clt") is CltStoppingCriterion
        assert get_stopping_criterion("ks") is KolmogorovSmirnovStoppingCriterion

    def test_builtin_delay_models_registered(self):
        from repro.simulation.delay_models import (
            FanoutDelay,
            TypeTableDelay,
            UnitDelay,
            ZeroDelay,
        )

        assert get_delay_model("fanout") is FanoutDelay
        assert get_delay_model("unit") is UnitDelay
        assert get_delay_model("zero") is ZeroDelay
        assert get_delay_model("zero-delay") is ZeroDelay
        assert get_delay_model("type-table") is TypeTableDelay
        assert set(delay_model_names()) >= {"fanout", "unit", "zero", "type-table"}

    def test_aliases_resolve(self):
        assert get_stopping_criterion("order_stat") is OrderStatisticStoppingCriterion
        assert get_stopping_criterion("kolmogorov-smirnov") is KolmogorovSmirnovStoppingCriterion

    def test_lookup_is_case_insensitive(self):
        assert get_estimator("DIPE") is DipeEstimator

    def test_names_listing(self):
        for name in ("dipe", "consecutive-mc", "fixed-warmup"):
            assert name in estimator_names()
        assert "order-statistic" in stopping_criterion_names()


class TestRegistryBehaviour:
    def test_unknown_name_raises_keyerror_with_candidates(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            get_estimator("not-a-thing")

    def test_reregistering_same_factory_is_idempotent(self):
        ESTIMATOR_REGISTRY.register("dipe", DipeEstimator)
        assert get_estimator("dipe") is DipeEstimator

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            ESTIMATOR_REGISTRY.register("dipe", ConsecutiveCycleEstimator)

    def test_custom_registration_via_decorator(self):
        registry = Registry("widget")

        @registry.register("fancy", aliases=("shiny",))
        def make_widget():
            return "widget"

        assert registry.get("fancy") is make_widget
        assert registry.get("shiny") is make_widget
        assert "fancy" in registry
        assert "nope" not in registry

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.register("  ", lambda: None)

    def test_contains_tolerates_non_string(self):
        assert 42 not in ESTIMATOR_REGISTRY


class TestConfigUsesRegistry:
    def test_config_accepts_registered_aliases(self):
        from repro.core.config import EstimationConfig

        config = EstimationConfig(stopping_criterion="kolmogorov-smirnov")
        assert config.stopping_criterion == "kolmogorov-smirnov"

    def test_config_rejects_unregistered_names(self):
        from repro.core.config import EstimationConfig

        with pytest.raises(ValueError, match="stopping_criterion"):
            EstimationConfig(stopping_criterion="magic")
