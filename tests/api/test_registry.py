"""Unit tests for the plugin registries."""

import pytest

from repro.api.registry import (
    ESTIMATOR_REGISTRY,
    Registry,
    delay_model_names,
    estimator_names,
    get_delay_model,
    get_estimator,
    get_stimulus,
    get_stopping_criterion,
    stimulus_names,
    stopping_criterion_names,
)
from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.dipe import DipeEstimator
from repro.stats.stopping import (
    CltStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
    OrderStatisticStoppingCriterion,
)
from repro.stimulus.random_inputs import BernoulliStimulus


class TestBuiltinRegistrations:
    def test_builtin_estimators_registered(self):
        assert get_estimator("dipe") is DipeEstimator
        assert get_estimator("consecutive-mc") is ConsecutiveCycleEstimator
        assert get_estimator("fixed-warmup") is FixedWarmupEstimator

    def test_figure3_estimator_registered(self):
        from repro.experiments.figure3 import Figure3Estimator

        assert get_estimator("figure3-profile") is Figure3Estimator

    def test_builtin_stimuli_registered(self):
        assert get_stimulus("bernoulli") is BernoulliStimulus
        for name in ("lag-one-markov", "spatially-correlated", "sequence"):
            assert name in stimulus_names()

    def test_builtin_stopping_criteria_registered(self):
        assert get_stopping_criterion("order-statistic") is OrderStatisticStoppingCriterion
        assert get_stopping_criterion("clt") is CltStoppingCriterion
        assert get_stopping_criterion("ks") is KolmogorovSmirnovStoppingCriterion

    def test_builtin_delay_models_registered(self):
        from repro.simulation.delay_models import (
            FanoutDelay,
            TypeTableDelay,
            UnitDelay,
            ZeroDelay,
        )

        assert get_delay_model("fanout") is FanoutDelay
        assert get_delay_model("unit") is UnitDelay
        assert get_delay_model("zero") is ZeroDelay
        assert get_delay_model("zero-delay") is ZeroDelay
        assert get_delay_model("type-table") is TypeTableDelay
        assert set(delay_model_names()) >= {"fanout", "unit", "zero", "type-table"}

    def test_aliases_resolve(self):
        assert get_stopping_criterion("order_stat") is OrderStatisticStoppingCriterion
        assert get_stopping_criterion("kolmogorov-smirnov") is KolmogorovSmirnovStoppingCriterion

    def test_lookup_is_case_insensitive(self):
        assert get_estimator("DIPE") is DipeEstimator

    def test_names_listing(self):
        for name in ("dipe", "consecutive-mc", "fixed-warmup"):
            assert name in estimator_names()
        assert "order-statistic" in stopping_criterion_names()


class TestRegistryBehaviour:
    def test_unknown_name_raises_keyerror_with_candidates(self):
        with pytest.raises(KeyError, match="unknown estimator"):
            get_estimator("not-a-thing")

    def test_reregistering_same_factory_is_idempotent(self):
        ESTIMATOR_REGISTRY.register("dipe", DipeEstimator)
        assert get_estimator("dipe") is DipeEstimator

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            ESTIMATOR_REGISTRY.register("dipe", ConsecutiveCycleEstimator)

    def test_custom_registration_via_decorator(self):
        registry = Registry("widget")

        @registry.register("fancy", aliases=("shiny",))
        def make_widget():
            return "widget"

        assert registry.get("fancy") is make_widget
        assert registry.get("shiny") is make_widget
        assert "fancy" in registry
        assert "nope" not in registry

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.register("  ", lambda: None)

    def test_contains_tolerates_non_string(self):
        assert 42 not in ESTIMATOR_REGISTRY


class TestConfigUsesRegistry:
    def test_config_accepts_registered_aliases(self):
        from repro.core.config import EstimationConfig

        config = EstimationConfig(stopping_criterion="kolmogorov-smirnov")
        assert config.stopping_criterion == "kolmogorov-smirnov"

    def test_config_rejects_unregistered_names(self):
        from repro.core.config import EstimationConfig

        with pytest.raises(ValueError, match="stopping_criterion"):
            EstimationConfig(stopping_criterion="magic")


class TestSimulatorRegistry:
    def test_builtin_simulators_registered(self):
        from repro.api.registry import simulator_names

        names = simulator_names()
        assert "zero-delay" in names
        assert "event-driven" in names

    def test_config_validates_power_simulator_through_registry(self):
        from repro.core.config import EstimationConfig

        with pytest.raises(ValueError, match="power_simulator"):
            EstimationConfig(power_simulator="spice")

    def test_custom_simulator_selectable_by_config_and_sampler(self):
        from repro.api.registry import SIMULATOR_REGISTRY, register_simulator
        from repro.circuits.library import s27
        from repro.core.batch_sampler import BatchPowerSampler
        from repro.core.config import EstimationConfig
        from repro.simulation.compiled import CompiledCircuit
        from repro.stimulus.random_inputs import BernoulliStimulus

        class ConstantPower:
            """Trivial plugin engine: advances the state engine, reports 1.0/lane."""

            engine = None

            def __init__(self, program, width=1, node_capacitance=None,
                         delay_model=None, backend="auto"):
                self.width = width

            def measure_lanes(self, state_engine, pattern):
                import numpy as np

                state_engine.step(pattern)
                return np.ones(self.width, dtype=np.float64)

            def measure_total(self, state_engine, pattern):
                return float(self.measure_lanes(state_engine, pattern).sum())

        register_simulator("constant-test", ConstantPower)
        try:
            config = EstimationConfig(power_simulator="constant-test", num_chains=4)
            circuit = CompiledCircuit.from_netlist(s27())
            sampler = BatchPowerSampler(
                circuit, BernoulliStimulus(circuit.num_inputs, 0.5), config, rng=5
            )
            samples = sampler.next_samples(interval=1)
            assert samples.tolist() == [1.0, 1.0, 1.0, 1.0]
        finally:
            # Plain deletion: monkeypatch would restore the entry at teardown
            # and leak the test engine into the session-wide registry.
            SIMULATOR_REGISTRY._entries.pop("constant-test", None)
