"""Serialization and execution tests for JobSpec / JobResult / run_job."""

import json

import pytest

from repro.api.jobs import JobResult, JobSpec, StimulusSpec, resolve_circuit, run_job
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.results import PowerEstimate
from repro.power.power_model import PowerModel
from repro.stimulus.correlated_inputs import LagOneMarkovStimulus


@pytest.fixture()
def quick_spec(quick_config):
    return JobSpec(circuit="s27", config=quick_config, seed=7, label="unit:s27")


class TestStimulusSpec:
    def test_bernoulli_helper(self):
        spec = StimulusSpec.bernoulli(0.25)
        stimulus = spec.build(4)
        assert stimulus.num_inputs == 4
        assert float(stimulus.probabilities[0]) == pytest.approx(0.25)

    def test_build_lag_one_markov(self):
        spec = StimulusSpec(kind="lag-one-markov", params={"probability": 0.4, "correlation": 0.3})
        stimulus = spec.build(3)
        assert isinstance(stimulus, LagOneMarkovStimulus)

    def test_round_trip(self):
        spec = StimulusSpec(kind="lag-one-markov", params={"probability": 0.4})
        assert StimulusSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_unknown_kind_fails_at_build(self):
        with pytest.raises(KeyError, match="unknown stimulus"):
            StimulusSpec(kind="white-noise").build(2)


class TestJobSpecSerialization:
    def test_round_trip_bit_exact(self, quick_spec):
        restored = JobSpec.from_dict(json.loads(json.dumps(quick_spec.to_dict())))
        assert restored == quick_spec

    def test_round_trip_with_custom_models_and_params(self):
        config = EstimationConfig(
            max_relative_error=0.03,
            confidence=0.95,
            num_chains=4,
            power_model=PowerModel(vdd=3.3, clock_frequency_hz=50e6),
        )
        spec = JobSpec(
            circuit="s298",
            estimator="fixed-warmup",
            stimulus=StimulusSpec(kind="lag-one-markov", params={"correlation": 0.7}),
            config=config,
            seed=99,
            params={"warmup_period": 12},
        )
        restored = JobSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.config.power_model.vdd == pytest.approx(3.3)
        assert restored.params == {"warmup_period": 12}

    def test_partial_dict_uses_defaults(self):
        spec = JobSpec.from_dict({"circuit": "s27"})
        assert spec.estimator == "dipe"
        assert spec.seed == 2025
        assert spec.config == EstimationConfig()
        assert spec.stimulus == StimulusSpec()

    def test_partial_config_dict(self):
        spec = JobSpec.from_dict({"circuit": "s27", "config": {"min_samples": 32}})
        assert spec.config.min_samples == 32
        assert spec.config.confidence == pytest.approx(0.99)

    def test_name_defaults_to_deterministic_tag(self):
        assert JobSpec(circuit="s27", seed=3).name == "dipe:s27@3"
        assert JobSpec(circuit="s27", label="mine").name == "mine"

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            JobSpec(circuit="s27", seed="abc")

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError, match="circuit"):
            JobSpec(circuit="")


class TestPowerEstimateSerialization:
    def test_round_trip_bit_exact(self, s27_circuit, quick_config):
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=5).estimate()
        payload = json.loads(json.dumps(estimate.to_dict()))
        assert PowerEstimate.from_dict(payload) == estimate

    def test_interval_selection_survives(self, s27_circuit, quick_config):
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=6).estimate()
        restored = PowerEstimate.from_dict(estimate.to_dict())
        assert restored.interval_selection == estimate.interval_selection
        assert restored.samples_switched_capacitance_f == estimate.samples_switched_capacitance_f


class TestRunJob:
    def test_matches_direct_estimator(self, s27_circuit, quick_config):
        direct = DipeEstimator(s27_circuit, config=quick_config, rng=7).estimate()
        result = run_job(JobSpec(circuit="s27", config=quick_config, seed=7))
        assert result.ok
        assert result.estimate.average_power_w == direct.average_power_w
        assert result.estimate.sample_size == direct.sample_size
        assert result.estimate.independence_interval == direct.independence_interval

    def test_baseline_estimator_kind(self, quick_config):
        result = run_job(
            JobSpec(
                circuit="s27",
                estimator="fixed-warmup",
                config=quick_config,
                seed=8,
                params={"warmup_period": 5},
            )
        )
        assert result.estimate.method == "fixed-warmup"
        assert result.estimate.independence_interval == 5

    def test_progress_callback_receives_events(self, quick_config):
        kinds = []
        run_job(
            JobSpec(circuit="s27", config=quick_config, seed=9),
            progress=lambda event: kinds.append(event.kind),
        )
        assert kinds[0] == "run-started"
        assert kinds[-1] == "estimate-completed"
        assert "interval-selected" in kinds

    def test_unknown_circuit_raises(self, quick_config):
        with pytest.raises(ValueError, match="unknown circuit"):
            run_job(JobSpec(circuit="never-heard-of-it", config=quick_config))

    def test_result_round_trip(self, quick_config):
        result = run_job(JobSpec(circuit="s27", config=quick_config, seed=10))
        restored = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.spec == result.spec
        assert restored.result == result.result
        assert restored.ok

    def test_figure3_job_round_trip(self, quick_config):
        from repro.experiments.figure3 import Figure3Result, figure3_job

        spec = figure3_job(
            circuit_name="s298", max_interval=2, sequence_length=120, config=quick_config, seed=4
        )
        result = run_job(spec)
        assert isinstance(result.result, Figure3Result)
        restored = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.result == result.result
        with pytest.raises(TypeError):
            result.estimate  # noqa: B018 — figure3 payload is not a PowerEstimate


class TestResolveCircuit:
    def test_registered_name(self):
        assert resolve_circuit("s27").name == "s27"

    def test_bench_file(self, tmp_path):
        from repro.circuits.library import S27_BENCH

        path = tmp_path / "mini.bench"
        path.write_text(S27_BENCH)
        assert resolve_circuit(str(path)).num_latches == 3

    def test_unknown_reference(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            resolve_circuit("bogus")
