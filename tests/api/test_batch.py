"""BatchRunner tests: parallel == serial, manifests, error capture."""

import json

import pytest

from repro.api.batch import BatchResult, BatchRunner, load_jobs, run_batch
from repro.api.jobs import JobSpec
from repro.core.config import EstimationConfig


@pytest.fixture(scope="module")
def batch_config():
    return EstimationConfig(
        randomness_sequence_length=64,
        min_samples=64,
        check_interval=32,
        max_samples=2000,
        warmup_cycles=16,
        max_independence_interval=16,
    )


@pytest.fixture(scope="module")
def batch_specs(batch_config):
    return [
        JobSpec(circuit="s27", config=batch_config, seed=101, label="b:s27a"),
        JobSpec(circuit="s27", config=batch_config, seed=102, label="b:s27b"),
        JobSpec(circuit="s298", config=batch_config, seed=103, label="b:s298"),
        JobSpec(
            circuit="s27",
            estimator="consecutive-mc",
            config=batch_config,
            seed=104,
            label="b:mc",
        ),
    ]


def _comparable(batch: BatchResult) -> list[dict]:
    rows = []
    for job in batch.results:
        data = job.to_dict()
        if data["result"] is not None:
            data["result"]["data"].pop("elapsed_seconds")
        rows.append(data)
    return rows


class TestBatchRunner:
    def test_serial_results_in_submission_order(self, batch_specs):
        result = BatchRunner(workers=1).run(batch_specs)
        assert [job.spec.label for job in result.results] == [s.label for s in batch_specs]
        assert result.all_ok

    def test_parallel_matches_serial_job_for_job(self, batch_specs):
        serial = BatchRunner(workers=1).run(batch_specs)
        parallel = BatchRunner(workers=4).run(batch_specs)
        assert _comparable(serial) == _comparable(parallel)

    def test_run_batch_convenience(self, batch_specs):
        result = run_batch(batch_specs[:1], workers=2)
        assert len(result.results) == 1 and result.all_ok

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)

    def test_failing_job_captured_not_raised(self, batch_config, batch_specs):
        specs = [batch_specs[0], JobSpec(circuit="no-such-circuit", config=batch_config)]
        result = BatchRunner(workers=2).run(specs)
        assert result.results[0].ok
        assert not result.results[1].ok
        assert "unknown circuit" in result.results[1].error
        assert result.num_errors == 1 and not result.all_ok

    def test_external_plugin_module_forwarded_to_workers(
        self, tmp_path, monkeypatch, batch_config
    ):
        plugin = tmp_path / "repro_test_plugin.py"
        plugin.write_text(
            "from repro.api.registry import register_stimulus\n"
            "from repro.stimulus.random_inputs import BernoulliStimulus\n"
            "\n"
            "@register_stimulus('plugin-bernoulli')\n"
            "def build(num_inputs, probability=0.5):\n"
            "    return BernoulliStimulus(num_inputs, probability)\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        __import__("repro_test_plugin")
        from repro.api.jobs import StimulusSpec
        from repro.api.registry import external_provider_modules

        assert "repro_test_plugin" in external_provider_modules()
        spec = JobSpec(
            circuit="s27",
            stimulus=StimulusSpec(kind="plugin-bernoulli", params={"probability": 0.4}),
            config=batch_config,
            seed=7,
        )
        result = BatchRunner(workers=2).run([spec, spec])
        assert result.all_ok


class TestManifest:
    def test_manifest_round_trip(self, tmp_path, batch_specs):
        result = BatchRunner(workers=1).run(batch_specs[:2])
        path = tmp_path / "manifest.json"
        result.write_manifest(path)
        loaded = BatchResult.load_manifest(path)
        assert _comparable(loaded) == _comparable(result)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-batch-manifest/v1"
        assert payload["num_jobs"] == 2

    def test_load_jobs_list_and_object_forms(self, tmp_path, batch_config):
        spec = JobSpec(circuit="s27", config=batch_config, seed=1)
        as_list = tmp_path / "list.json"
        as_list.write_text(json.dumps([spec.to_dict()]))
        as_object = tmp_path / "object.json"
        as_object.write_text(json.dumps({"jobs": [spec.to_dict()]}))
        assert load_jobs(as_list) == [spec]
        assert load_jobs(as_object) == [spec]

    def test_load_jobs_rejects_scalar(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('"just a string"')
        with pytest.raises(ValueError, match="jobs file"):
            load_jobs(bad)


class TestExperimentProducers:
    def test_table1_jobs_deterministic(self, batch_config):
        from repro.experiments.table1 import table1_jobs

        first = table1_jobs(("s27", "s298"), config=batch_config, seed=5)
        second = table1_jobs(("s27", "s298"), config=batch_config, seed=5)
        assert first == second
        assert [spec.circuit for spec in first] == ["s27", "s298"]
        assert first[0].seed != first[1].seed

    def test_table2_jobs_shape(self, batch_config):
        from repro.experiments.table2 import table2_jobs

        specs = table2_jobs(("s27",), runs_per_circuit=3, config=batch_config, seed=6)
        assert len(specs) == 3
        assert len({spec.seed for spec in specs}) == 3

    def test_run_table1_workers_match_serial(self, batch_config):
        from repro.experiments.table1 import run_table1

        serial = run_table1(("s27", "s298"), config=batch_config, reference_cycles=5000, seed=9)
        parallel = run_table1(
            ("s27", "s298"), config=batch_config, reference_cycles=5000, seed=9, workers=2
        )
        for a, b in zip(serial.rows, parallel.rows):
            assert a.circuit == b.circuit
            assert a.estimate_mw == b.estimate_mw
            assert a.sample_size == b.sample_size
            assert a.reference_power_mw == b.reference_power_mw
