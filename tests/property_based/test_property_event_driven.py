"""Property-based glitch equivalence between the event-driven backends.

The scalar and vectorized (numpy) engines behind
:class:`~repro.simulation.event_driven.EventDrivenSimulator` must count
*identical* transitions — per net, per lane, per cycle — for every circuit,
ensemble width and delay model.  This is the property that lets the
multi-chain glitch sampler swap the scalar engine for the time-wheel engine
without changing any estimate, and it is deliberately checked against the
scalar engine as the executable specification (one independent scalar
trajectory per lane).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.generators import SyntheticCircuitSpec, generate_sequential_circuit
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import (
    DelayModel,
    FanoutDelay,
    TypeTableDelay,
    UnitDelay,
    ZeroDelay,
)
from repro.simulation.event_driven import EventDrivenSimulator
from repro.stimulus.base import pack_bit_matrix


class MixedDelay(DelayModel):
    """Half the nets instantaneous, half loaded — stresses same-instant cascades."""

    def gate_delay(self, circuit, gate):
        if gate.output % 2:
            return 0.0
        return 0.5 + 0.25 * (gate.output % 3)


#: All delay models the equivalence must hold under (satellite requirement):
#: pure zero delay, uniform, fanout-loaded, per-type tables and a mix of
#: zero and positive delays.
DELAY_MODELS = (ZeroDelay, UnitDelay, FanoutDelay, TypeTableDelay, MixedDelay)


def _build_circuit(spec_seed: int) -> CompiledCircuit:
    rng = np.random.default_rng(spec_seed)
    spec = SyntheticCircuitSpec(
        name=f"edprop{spec_seed}",
        num_inputs=int(rng.integers(1, 7)),
        num_outputs=int(rng.integers(1, 4)),
        num_latches=int(rng.integers(1, 7)),
        num_gates=int(rng.integers(25, 70)),
    )
    return CompiledCircuit.from_netlist(generate_sequential_circuit(spec, seed=spec_seed))


@settings(max_examples=20, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    width=st.integers(min_value=1, max_value=192),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
    model_index=st.integers(min_value=0, max_value=len(DELAY_MODELS) - 1),
)
def test_event_backends_identical_on_random_netlists(spec_seed, width, run_seed, model_index):
    """Per-lane energies and per-net transition counts agree, glitches included."""
    circuit = _build_circuit(spec_seed)
    model_cls = DELAY_MODELS[model_index]
    rng = np.random.default_rng(run_seed)
    initial_state = int(rng.integers(0, circuit.state_space_size()))
    cycles = 5
    bits = rng.integers(0, 2, size=(cycles, circuit.num_inputs, width), dtype=np.uint8)

    vector = EventDrivenSimulator(
        circuit, delay_model=model_cls(), width=width, backend="numpy"
    )
    vector.reset(latch_state=initial_state)
    vector.settle(pack_bit_matrix(bits[0]))

    scalars = []
    for lane in range(width):
        scalar = EventDrivenSimulator(circuit, delay_model=model_cls(), backend="scalar")
        scalar.reset(latch_state=initial_state)
        scalar.settle(bits[0][:, lane].tolist())
        scalars.append(scalar)

    for step in range(1, cycles):
        lanes = vector.cycle_lanes(pack_bit_matrix(bits[step]))
        expected = [
            scalar.cycle(bits[step][:, lane].tolist()) for lane, scalar in enumerate(scalars)
        ]
        assert lanes == pytest.approx(expected)

    aggregated = np.zeros(circuit.num_nets, dtype=np.int64)
    for scalar in scalars:
        aggregated += scalar.transition_counts
    assert np.array_equal(aggregated, vector.transition_counts)
    # Settled values agree lane for lane after the run.
    for lane, scalar in enumerate(scalars):
        assert vector.latch_state_scalar(lane) == scalar.latch_state_scalar()


@settings(max_examples=10, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_zero_delay_model_matches_functional_counts(spec_seed, run_seed):
    """With all-zero delays the vectorized event engine sees no glitches:
    its lane energies equal the zero-delay simulator's functional ones."""
    from repro.simulation.zero_delay import ZeroDelaySimulator

    circuit = _build_circuit(spec_seed)
    width = 48
    rng = np.random.default_rng(run_seed)
    bits = rng.integers(0, 2, size=(5, circuit.num_inputs, width), dtype=np.uint8)

    event = EventDrivenSimulator(circuit, delay_model=ZeroDelay(), width=width, backend="numpy")
    functional = ZeroDelaySimulator(circuit, width=width, backend="numpy")
    event.reset(latch_state=0)
    functional.reset(latch_state=0)
    event.settle(pack_bit_matrix(bits[0]))
    functional.settle(pack_bit_matrix(bits[0]))

    for step in range(1, 5):
        pattern = pack_bit_matrix(bits[step])
        lanes_event = event.cycle_lanes(pattern)
        lanes_functional = functional.step_and_measure_lanes(pattern)
        assert lanes_event == pytest.approx(lanes_functional)


@settings(max_examples=8, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    width=st.integers(min_value=1, max_value=96),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_event_checkpoint_roundtrip(spec_seed, width, run_seed):
    """get_state/set_state freezes and resumes an identical trajectory."""
    circuit = _build_circuit(spec_seed)
    rng = np.random.default_rng(run_seed)
    bits = rng.integers(0, 2, size=(7, circuit.num_inputs, width), dtype=np.uint8)

    simulator = EventDrivenSimulator(circuit, delay_model=FanoutDelay(), width=width)
    simulator.reset(latch_state=1)
    simulator.settle(pack_bit_matrix(bits[0]))
    simulator.cycle_lanes(pack_bit_matrix(bits[1]))
    snapshot = simulator.get_state()

    first = [simulator.cycle_lanes(pack_bit_matrix(bits[step])).tolist() for step in range(2, 7)]
    counts_first = simulator.transition_counts.copy()

    restored = EventDrivenSimulator(
        circuit, delay_model=FanoutDelay(), width=width,
        backend="numpy" if width > 1 else "scalar",
    )
    restored.set_state(snapshot)
    second = [restored.cycle_lanes(pack_bit_matrix(bits[step])).tolist() for step in range(2, 7)]
    assert second == first
    assert np.array_equal(restored.transition_counts, counts_first)
