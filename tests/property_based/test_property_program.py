"""Property tests for the optional :meth:`CircuitProgram.optimize` passes.

The optimization passes (dead-net sweep, fanout-free buffer/inverter
collapse) may change the net set of the circuit freely, but the externally
observable behaviour — every primary-output value and every latch state, on
every clock cycle, for every stimulus — must stay bit-identical.  This is
the contract that makes the passes safe to enable for power estimation of
the *visible* logic.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits.generators import SyntheticCircuitSpec, generate_sequential_circuit
from repro.circuits.program import CircuitProgram
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator


def _build_circuit(spec_seed: int) -> CompiledCircuit:
    rng = np.random.default_rng(spec_seed)
    spec = SyntheticCircuitSpec(
        name=f"opt{spec_seed}",
        num_inputs=int(rng.integers(1, 7)),
        num_outputs=int(rng.integers(1, 5)),
        num_latches=int(rng.integers(1, 8)),
        num_gates=int(rng.integers(20, 80)),
    )
    return CompiledCircuit.from_netlist(generate_sequential_circuit(spec, seed=spec_seed))


@settings(max_examples=25, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_optimized_program_preserves_po_and_latch_behavior(spec_seed, run_seed):
    """Dead-net sweep + buffer/inverter collapse never change visible behaviour."""
    original = _build_circuit(spec_seed)
    program = CircuitProgram.of(original)
    optimized = program.optimize().circuit

    assert optimized.num_gates <= original.num_gates
    assert optimized.num_latches == original.num_latches
    assert [original.net_names[po] for po in original.primary_outputs] == [
        optimized.net_names[po] for po in optimized.primary_outputs
    ]

    width = 16
    sim_a = ZeroDelaySimulator(original, width=width, backend="bigint")
    sim_b = ZeroDelaySimulator(optimized, width=width, backend="bigint")
    sim_a.randomize_state(rng=run_seed)
    # The optimized circuit has the same latches in the same declaration
    # order, so loading the same lane-packed latch state aligns both runs.
    sim_b.reset(latch_state=sim_a.latch_state())

    rng = np.random.default_rng(run_seed + 1)
    mask = (1 << width) - 1
    input_names = [original.net_names[pi] for pi in original.primary_inputs]
    po_names = [original.net_names[po] for po in original.primary_outputs]
    for cycle in range(12):
        packed = {name: int(rng.integers(0, mask + 1)) for name in input_names}
        pattern_a = [packed[original.net_names[pi]] for pi in original.primary_inputs]
        pattern_b = [packed[optimized.net_names[pi]] for pi in optimized.primary_inputs]
        sim_a.step(pattern_a)
        sim_b.step(pattern_b)
        for lane in range(width):
            assert sim_a.latch_state_scalar(lane) == sim_b.latch_state_scalar(lane), (
                f"latch state diverged at cycle {cycle}, lane {lane}"
            )
            for name in po_names:
                assert sim_a.net_value(name, lane) == sim_b.net_value(name, lane), (
                    f"PO {name} diverged at cycle {cycle}, lane {lane}"
                )


@settings(max_examples=15, deadline=None)
@given(spec_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_single_pass_variants_also_preserve_behavior(spec_seed):
    """Each pass alone is behaviour-preserving (not only their composition)."""
    original = _build_circuit(spec_seed)
    program = CircuitProgram.of(original)
    for kwargs in (
        {"dead_net_sweep": True, "collapse_buffers": False},
        {"dead_net_sweep": False, "collapse_buffers": True},
    ):
        optimized = program.optimize(**kwargs).circuit
        sim_a = ZeroDelaySimulator(original, width=1, backend="bigint")
        sim_b = ZeroDelaySimulator(optimized, width=1, backend="bigint")
        sim_a.reset()
        sim_b.reset()
        rng = np.random.default_rng(spec_seed ^ 0x5EED)
        for _ in range(8):
            bits = {
                original.net_names[pi]: int(rng.integers(0, 2))
                for pi in original.primary_inputs
            }
            sim_a.step([bits[original.net_names[pi]] for pi in original.primary_inputs])
            sim_b.step([bits[optimized.net_names[pi]] for pi in optimized.primary_inputs])
            assert sim_a.latch_state_scalar() == sim_b.latch_state_scalar()
            for po in original.primary_outputs:
                name = original.net_names[po]
                assert sim_a.net_value(name) == sim_b.net_value(name)
