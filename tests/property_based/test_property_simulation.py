"""Property-based tests for the simulators and the power model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.library import s27
from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import FanoutDelay, UnitDelay, ZeroDelay
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator

_S27 = CompiledCircuit.from_netlist(s27())
_CAPS = CapacitanceModel().node_capacitances(_S27)


def pattern_sequences(num_inputs, min_length=2, max_length=30):
    return st.lists(
        st.lists(st.integers(min_value=0, max_value=1), min_size=num_inputs, max_size=num_inputs),
        min_size=min_length,
        max_size=max_length,
    )


@settings(max_examples=30, deadline=None)
@given(
    patterns=pattern_sequences(4),
    initial_state=st.integers(min_value=0, max_value=7),
)
def test_switched_capacitance_bounded_by_total(patterns, initial_state):
    """A cycle can never switch more capacitance than the circuit owns (zero delay)."""
    total = sum(_CAPS)
    simulator = ZeroDelaySimulator(_S27, node_capacitance=_CAPS)
    simulator.reset(latch_state=initial_state)
    simulator.settle(patterns[0])
    for pattern in patterns[1:]:
        switched = simulator.step_and_measure(pattern)
        assert 0.0 <= switched <= total + 1e-18


@settings(max_examples=30, deadline=None)
@given(
    patterns=pattern_sequences(4),
    initial_state=st.integers(min_value=0, max_value=7),
)
def test_repeating_a_pattern_eventually_stops_switching(patterns, initial_state):
    """Holding the inputs constant must drive the activity to a closed orbit.

    For s27 the next-state logic under constant inputs settles to a fixed
    point or a short cycle; after enough repetitions of the same pattern the
    per-cycle switched capacitance becomes periodic and bounded by the state
    orbit.  The weaker invariant checked here: switched capacitance under a
    repeated pattern never exceeds what the *first* application switched plus
    the full latch-cone capacitance (no energy can appear from nowhere).
    """
    simulator = ZeroDelaySimulator(_S27, node_capacitance=_CAPS)
    simulator.reset(latch_state=initial_state)
    simulator.settle(patterns[0])
    last_pattern = patterns[-1]
    # Drive with the same pattern many times; by then the 8-state FSM is on a
    # closed orbit, so the per-cycle switched capacitance is periodic with
    # some period of at most 8 cycles.
    tail = [simulator.step_and_measure(last_pattern) for _ in range(30)]
    window = tail[-16:]
    assert any(
        all(abs(window[i] - window[i + period]) < 1e-18 for i in range(len(window) - period))
        for period in range(1, 9)
    )


@settings(max_examples=20, deadline=None)
@given(
    patterns=pattern_sequences(4, min_length=3, max_length=20),
    initial_state=st.integers(min_value=0, max_value=7),
    delay_model=st.sampled_from(["zero", "unit", "fanout"]),
)
def test_event_driven_settles_to_functional_values(patterns, initial_state, delay_model):
    """Whatever the delay model, the settled network equals zero-delay simulation."""
    model = {"zero": ZeroDelay(), "unit": UnitDelay(), "fanout": FanoutDelay()}[delay_model]
    event = EventDrivenSimulator(_S27, delay_model=model, node_capacitance=_CAPS)
    reference = ZeroDelaySimulator(_S27, node_capacitance=_CAPS)
    event.reset(latch_state=initial_state)
    reference.reset(latch_state=initial_state)
    event.settle(patterns[0])
    reference.settle(patterns[0])
    for pattern in patterns[1:]:
        event.cycle(pattern)
        reference.step(pattern)
        assert event.values == reference.values


@settings(max_examples=50, deadline=None)
@given(
    switched=st.floats(min_value=0.0, max_value=1e-9, allow_nan=False),
    vdd=st.floats(min_value=0.5, max_value=5.0),
    frequency=st.floats(min_value=1e6, max_value=1e9),
)
def test_power_model_scaling_laws(switched, vdd, frequency):
    """Energy is quadratic in Vdd and power is linear in frequency."""
    model = PowerModel(vdd=vdd, clock_frequency_hz=frequency)
    doubled_vdd = PowerModel(vdd=2 * vdd, clock_frequency_hz=frequency)
    doubled_freq = PowerModel(vdd=vdd, clock_frequency_hz=2 * frequency)
    assert doubled_vdd.cycle_energy(switched) == pytest.approx(4 * model.cycle_energy(switched))
    assert doubled_freq.cycle_power(switched) == pytest.approx(2 * model.cycle_power(switched))
    assert model.cycle_power(switched) >= 0.0


@settings(max_examples=30, deadline=None)
@given(width=st.integers(min_value=1, max_value=64), seed=st.integers(0, 2**31 - 1))
def test_lane_packing_never_leaks_across_lanes(width, seed):
    """Aggregate switched capacitance equals the sum over independently run lanes."""
    rng = np.random.default_rng(seed)
    cycles = 10
    patterns = rng.integers(0, 2, size=(cycles, 4, width))

    packed = ZeroDelaySimulator(_S27, width=width, node_capacitance=_CAPS)
    packed.reset(latch_state=0)
    packed.settle([0, 0, 0, 0])
    packed_total = 0.0
    for cycle in range(cycles):
        pattern = [
            int(sum(int(patterns[cycle, i, lane]) << lane for lane in range(width)))
            for i in range(4)
        ]
        packed_total += packed.step_and_measure(pattern)

    scalar_total = 0.0
    for lane in range(width):
        scalar = ZeroDelaySimulator(_S27, width=1, node_capacitance=_CAPS)
        scalar.reset(latch_state=0)
        scalar.settle([0, 0, 0, 0])
        for cycle in range(cycles):
            scalar_total += scalar.step_and_measure(
                [int(patterns[cycle, i, lane]) for i in range(4)]
            )

    assert packed_total == pytest.approx(scalar_total)
