"""Property-based tests for the statistical machinery."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.stats.randomness import dichotomize, thin_sequence
from repro.stats.runs_test import count_runs, runs_test
from repro.stats.stopping import (
    CltStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
    OrderStatisticStoppingCriterion,
)

binary_sequences = st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=500)
float_sequences = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


@settings(max_examples=100, deadline=None)
@given(symbols=binary_sequences)
def test_run_count_bounds(symbols):
    """1 <= U <= N, and U-1 never exceeds twice the minority count."""
    runs = count_runs(symbols)
    assert 1 <= runs <= len(symbols)
    minority = min(symbols.count(0), symbols.count(1))
    assert runs <= 2 * minority + 1


@settings(max_examples=100, deadline=None)
@given(symbols=binary_sequences, alpha=st.sampled_from([0.05, 0.1, 0.2, 0.5]))
def test_runs_test_decision_matches_threshold(symbols, alpha):
    """The accept decision is exactly |z| <= c for non-degenerate sequences."""
    result = runs_test(symbols, significance_level=alpha)
    if result.degenerate:
        assert result.accepted
    else:
        assert result.accepted == (abs(result.z_statistic) <= result.critical_value)
        assert 0.0 <= result.p_value <= 1.0


@settings(max_examples=100, deadline=None)
@given(values=float_sequences)
def test_dichotomize_balance(values):
    """Dichotomised symbols are 0/1, and neither class exceeds half of the data."""
    symbols = dichotomize(values)
    assert set(symbols) <= {0, 1}
    if symbols:
        zeros = symbols.count(0)
        ones = symbols.count(1)
        assert zeros <= len(values) / 2 + 1
        assert ones <= len(values) / 2 + 1


@settings(max_examples=100, deadline=None)
@given(values=float_sequences, interval=st.integers(min_value=0, max_value=10))
def test_thinning_length(values, interval):
    """Thinning keeps ceil(n / (interval+1)) elements and preserves order."""
    thinned = thin_sequence(values, interval)
    expected_length = (len(values) + interval) // (interval + 1)
    assert len(thinned) == expected_length
    assert thinned == values[:: interval + 1]


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False), min_size=2, max_size=400
    )
)
def test_stopping_criteria_interval_contains_sample_mean(data):
    """For every criterion the reported interval always brackets the estimate."""
    for criterion in (
        CltStoppingCriterion(min_samples=2),
        OrderStatisticStoppingCriterion(min_samples=2),
        KolmogorovSmirnovStoppingCriterion(min_samples=2),
    ):
        decision = criterion.evaluate(data)
        assert decision.lower - 1e-9 <= decision.estimate <= decision.upper + 1e-9
        assert decision.sample_size == len(data)
        assert decision.relative_half_width >= 0.0


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=1.0, max_value=50.0),
    scale=st.floats(min_value=0.01, max_value=5.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_clt_interval_width_decreases_with_more_data(mean, scale, seed):
    rng = np.random.default_rng(seed)
    sample = rng.normal(mean, scale, size=4096)
    assume(sample.std() > 0)
    criterion = CltStoppingCriterion(min_samples=2)
    small = criterion.evaluate(sample[:256].tolist())
    large = criterion.evaluate(sample.tolist())
    assert large.upper - large.lower <= small.upper - small.lower + 1e-12
