"""Property-based tests for netlist construction, parsing and compilation."""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import SyntheticCircuitSpec, generate_sequential_circuit
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.levelize import levelize, logic_depth
from repro.netlist.validate import validate_netlist
from repro.simulation.compiled import CompiledCircuit


def circuit_specs():
    return st.builds(
        SyntheticCircuitSpec,
        name=st.just("prop"),
        num_inputs=st.integers(min_value=1, max_value=8),
        num_outputs=st.integers(min_value=1, max_value=4),
        num_latches=st.integers(min_value=1, max_value=8),
        num_gates=st.integers(min_value=30, max_value=120),
    )


@settings(max_examples=25, deadline=None)
@given(spec=circuit_specs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_generated_circuits_always_valid(spec, seed):
    """Every generated circuit is structurally sound and compilable."""
    netlist = generate_sequential_circuit(spec, seed=seed)
    errors = [issue for issue in validate_netlist(netlist) if issue.severity == "error"]
    assert errors == []
    circuit = CompiledCircuit.from_netlist(netlist)
    assert circuit.num_latches == spec.num_latches
    assert circuit.num_inputs == spec.num_inputs


@settings(max_examples=20, deadline=None)
@given(spec=circuit_specs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_bench_round_trip_preserves_structure(spec, seed):
    """write_bench -> parse_bench is the identity on structure."""
    netlist = generate_sequential_circuit(spec, seed=seed)
    reparsed = parse_bench(write_bench(netlist), name=netlist.name)
    assert reparsed.primary_inputs == netlist.primary_inputs
    assert reparsed.primary_outputs == netlist.primary_outputs
    assert [(g.output, g.gate_type, g.inputs) for g in reparsed.gates] == [
        (g.output, g.gate_type, g.inputs) for g in netlist.gates
    ]
    assert [(latch.output, latch.data) for latch in reparsed.latches] == [
        (latch.output, latch.data) for latch in netlist.latches
    ]


@settings(max_examples=20, deadline=None)
@given(spec=circuit_specs(), seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_levelization_is_a_valid_topological_order(spec, seed):
    """Every gate appears after all gate-driven fan-in, and depth is consistent."""
    netlist = generate_sequential_circuit(spec, seed=seed)
    order = levelize(netlist)
    assert len(order) == netlist.num_gates
    seen = set(netlist.primary_inputs) | {latch.output for latch in netlist.latches}
    for gate in order:
        gate_driven = [src for src in gate.inputs if src not in seen]
        # Everything not yet seen must not be the output of a *gate* (it could
        # only be an undriven net, which validation already excludes).
        assert not any(src == other.output for other in netlist.gates for src in gate_driven)
        seen.add(gate.output)
    assert logic_depth(netlist) >= 1
