"""Property-based equivalence tests between the simulator backends.

The big-int and numpy backends of :class:`ZeroDelaySimulator` must be
indistinguishable: identical net values, identical transition counts and
identical RNG consumption for every circuit, width and stimulus.  These
properties are what allows ``backend="auto"`` to switch engines by ensemble
width without changing any estimation result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.generators import SyntheticCircuitSpec, generate_sequential_circuit
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.sampler import PowerSampler
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus


def _build_circuit(spec_seed: int) -> CompiledCircuit:
    rng = np.random.default_rng(spec_seed)
    spec = SyntheticCircuitSpec(
        name=f"prop{spec_seed}",
        num_inputs=int(rng.integers(1, 7)),
        num_outputs=int(rng.integers(1, 4)),
        num_latches=int(rng.integers(1, 7)),
        num_gates=int(rng.integers(25, 70)),
    )
    return CompiledCircuit.from_netlist(generate_sequential_circuit(spec, seed=spec_seed))


@settings(max_examples=25, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    width=st.integers(min_value=1, max_value=192),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_backends_bit_identical_on_random_netlists(spec_seed, width, run_seed):
    """Both backends produce identical net values and transition counts."""
    circuit = _build_circuit(spec_seed)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)

    bigint = ZeroDelaySimulator(circuit, width=width, backend="bigint")
    vector = ZeroDelaySimulator(circuit, width=width, backend="numpy")
    bigint.randomize_state(rng=run_seed)
    vector.randomize_state(rng=run_seed)
    assert bigint.latch_state() == vector.latch_state()

    rng_a = np.random.default_rng(run_seed + 1)
    rng_b = np.random.default_rng(run_seed + 1)
    bigint.settle(stimulus.next_pattern(rng_a, width=width))
    vector.settle(stimulus.next_pattern_words(rng_b, width=width))
    assert bigint.values == vector.values

    for _ in range(6):
        counts_a = bigint.step_and_count(stimulus.next_pattern(rng_a, width=width))
        counts_b = vector.step_and_count(stimulus.next_pattern_words(rng_b, width=width))
        assert counts_a == counts_b
        assert bigint.values == vector.values


@settings(max_examples=15, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    width=st.integers(min_value=1, max_value=192),
    run_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_lane_resolved_measurement_agrees(spec_seed, width, run_seed):
    """Per-lane switched capacitance agrees between the backends."""
    circuit = _build_circuit(spec_seed)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)

    bigint = ZeroDelaySimulator(circuit, width=width, backend="bigint")
    vector = ZeroDelaySimulator(circuit, width=width, backend="numpy")
    bigint.randomize_state(rng=run_seed)
    vector.randomize_state(rng=run_seed)

    rng_a = np.random.default_rng(run_seed)
    rng_b = np.random.default_rng(run_seed)
    for _ in range(4):
        lanes_a = bigint.step_and_measure_lanes(stimulus.next_pattern(rng_a, width=width))
        lanes_b = vector.step_and_measure_lanes(stimulus.next_pattern_words(rng_b, width=width))
        assert lanes_b == pytest.approx(lanes_a)
        total = vector.step_and_measure(stimulus.next_pattern_words(rng_b, width=width))
        total_a = bigint.step_and_measure(stimulus.next_pattern(rng_a, width=width))
        assert total == pytest.approx(total_a)


@settings(max_examples=10, deadline=None)
@given(
    spec_seed=st.integers(min_value=0, max_value=2**31 - 1),
    sample_seed=st.integers(min_value=0, max_value=2**31 - 1),
    interval=st.integers(min_value=0, max_value=4),
    backend=st.sampled_from(["bigint", "numpy"]),
)
def test_single_chain_batch_sampler_matches_power_sampler(
    spec_seed, sample_seed, interval, backend
):
    """BatchPowerSampler with 1 chain reproduces PowerSampler sample-for-sample."""
    circuit = _build_circuit(spec_seed)
    config = EstimationConfig(warmup_cycles=8, simulation_backend=backend)

    single = PowerSampler(
        circuit, BernoulliStimulus(circuit.num_inputs, 0.5), config, rng=sample_seed
    )
    batch = BatchPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=sample_seed,
        num_chains=1,
    )
    expected = [single.next_sample(interval) for _ in range(20)]
    actual = [float(batch.next_samples(interval)[0]) for _ in range(20)]
    assert actual == pytest.approx(expected)
    assert batch.cycles_simulated == single.cycles_simulated
