"""ResultStore: atomic persistence, torn-tail tolerance, scan robustness."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service.store import ResultStore


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _make_job(store, job_id="j1", status="queued"):
    store.create_job(job_id, {"circuit": "s27"}, {"id": job_id, "status": status})
    return job_id


class TestLayout:
    def test_create_and_read_back(self, store):
        _make_job(store)
        assert store.has_job("j1")
        assert not store.has_job("j2")
        assert store.read_spec("j1") == {"circuit": "s27"}
        assert store.read_meta("j1")["status"] == "queued"

    def test_meta_replace_is_atomic_no_tmp_left(self, store):
        _make_job(store)
        store.write_meta("j1", {"id": "j1", "status": "completed"})
        assert store.read_meta("j1")["status"] == "completed"
        leftovers = [p.name for p in store.job_dir("j1").iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_result_roundtrip(self, store):
        _make_job(store)
        payload = {"status": "ok", "result": {"type": "power-estimate", "data": {"x": 1}}}
        store.save_result("j1", payload)
        assert store.load_result("j1") == payload
        assert store.load_result("missing") is None


class TestEventLog:
    def test_append_read_ordered(self, store):
        _make_job(store)
        for seq in range(5):
            store.append_event("j1", {"seq": seq, "event": {"kind": "progress"}})
        store.close_events("j1")
        events = store.read_events("j1")
        assert [e["seq"] for e in events] == list(range(5))

    def test_close_events_idempotent(self, store):
        _make_job(store)
        store.append_event("j1", {"seq": 0})
        store.close_events("j1")
        store.close_events("j1")
        store.close()

    def test_torn_tail_dropped(self, store):
        _make_job(store)
        for seq in range(3):
            store.append_event("j1", {"seq": seq})
        store.close_events("j1")
        path = store.job_dir("j1") / "events.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "trunc')  # a crashed writer's torn line
        events = store.read_events("j1")
        assert [e["seq"] for e in events] == [0, 1, 2]

    def test_missing_log_is_empty(self, store):
        _make_job(store)
        assert store.read_events("j1") == []


class TestCheckpoints:
    def test_pickle_roundtrip_with_numpy(self, store):
        _make_job(store)
        checkpoint = {"samples": np.arange(7, dtype=np.float64), "big": 1 << 200}
        store.save_checkpoint("j1", checkpoint)
        assert store.has_checkpoint("j1")
        loaded = store.load_checkpoint("j1")
        np.testing.assert_array_equal(loaded["samples"], checkpoint["samples"])
        assert loaded["big"] == checkpoint["big"]

    def test_absent_checkpoint(self, store):
        _make_job(store)
        assert not store.has_checkpoint("j1")
        assert store.load_checkpoint("j1") is None


class TestScan:
    def test_scan_yields_in_name_order(self, store):
        for job_id in ("jbb", "jaa", "jcc"):
            _make_job(store, job_id)
        assert [job_id for job_id, _, _ in store.scan()] == ["jaa", "jbb", "jcc"]

    def test_scan_skips_corrupt_and_partial_dirs(self, store, tmp_path):
        _make_job(store, "jgood")
        (store.jobs_dir / "jhalf").mkdir()  # no spec/meta at all
        _make_job(store, "jbadmeta")
        (store.job_dir("jbadmeta") / "meta.json").write_text("{corrupt")
        (store.jobs_dir / "stray-file").write_text("not a dir")
        assert [job_id for job_id, _, _ in store.scan()] == ["jgood"]
