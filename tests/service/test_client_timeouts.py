"""ServiceClient transport robustness: timeouts, bounded retries, SSE resume.

These tests run the client against scripted raw sockets — a server that
wedges (accepts, never replies), drops connections, or cuts an SSE stream
mid-job — and assert the client fails in bounded time, retries idempotent
requests only, and resumes event streams gap- and duplicate-free.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceClientError


class ScriptedServer:
    """A raw TCP server whose per-connection behaviour is a list of callables.

    Connection *i* is handled by ``script[min(i, len(script) - 1)]``; each
    handler gets the accepted socket (with the request already readable) and
    is responsible for any reply.  Connections are counted.
    """

    def __init__(self, script):
        self.script = script
        self.connections = 0
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.05)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._open: list[socket.socket] = []
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            index = self.connections
            self.connections += 1
            self._open.append(conn)
            handler = self.script[min(index, len(self.script) - 1)]
            try:
                handler(conn)
            except OSError:
                pass

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        for conn in self._open:
            try:
                conn.close()
            except OSError:
                pass
        self._thread.join(timeout=2.0)


def _read_request(conn) -> str:
    conn.settimeout(2.0)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            break
        data += chunk
    return data.decode("utf-8", "replace")


def wedge(conn) -> None:
    """Read the request, then never answer (until the test tears down)."""
    _read_request(conn)


def drop(conn) -> None:
    """Read the request, then slam the connection shut with no reply."""
    _read_request(conn)
    conn.close()


def reply_json(payload):
    body = json.dumps(payload).encode()

    def handler(conn):
        _read_request(conn)
        conn.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        conn.close()

    return handler


def _envelope(seq, kind, **fields):
    event = {"kind": kind, "circuit": "s27", "method": "dipe",
             "samples_drawn": 0, "cycles_simulated": 0, "job_id": "j1", **fields}
    return {"seq": seq, "job": "j1", "time": 0.0, "event": event}


def sse(envelopes, *, finish):
    """An SSE handler: send *envelopes*, then close (cleanly if *finish*)."""

    def handler(conn):
        request = _read_request(conn)
        assert "/events" in request
        conn.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
            b"Connection: close\r\n\r\n"
        )
        for envelope in envelopes:
            conn.sendall(f"data: {json.dumps(envelope)}\n\n".encode())
        if finish:
            conn.sendall(b": stream-end\n\n")
        conn.close()

    return handler


@pytest.fixture
def server_factory():
    servers = []

    def make(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestBoundedTime:
    def test_wedged_server_times_out(self, server_factory):
        server = server_factory([wedge])
        client = ServiceClient(server.url, timeout=0.2, retries=1, retry_backoff=0.01)
        began = time.monotonic()
        with pytest.raises(OSError):  # socket.timeout is a TimeoutError/OSError
            client.health()
        elapsed = time.monotonic() - began
        assert elapsed < 5.0  # two bounded attempts, not a forever-block
        assert server.connections == 2  # original + one retry

    def test_wedged_sse_stream_times_out(self, server_factory):
        server = server_factory([wedge])
        client = ServiceClient(
            server.url, timeout=0.2, retries=1, retry_backoff=0.01
        )
        began = time.monotonic()
        with pytest.raises(TimeoutError):
            list(client.events("j1"))
        assert time.monotonic() - began < 5.0


class TestIdempotentRetry:
    def test_get_retries_past_dropped_connections(self, server_factory):
        server = server_factory([drop, drop, reply_json({"status": "ok"})])
        client = ServiceClient(server.url, timeout=1.0, retries=2, retry_backoff=0.01)
        assert client.health() == {"status": "ok"}
        assert server.connections == 3

    def test_get_exhausts_retry_budget(self, server_factory):
        server = server_factory([drop])
        client = ServiceClient(server.url, timeout=1.0, retries=2, retry_backoff=0.01)
        with pytest.raises(OSError):
            client.health()
        assert server.connections == 3  # 1 + retries

    def test_post_reconnects_only_once(self, server_factory):
        """Non-idempotent verbs must not be retried into duplicates."""
        server = server_factory([drop])
        client = ServiceClient(server.url, timeout=1.0, retries=5, retry_backoff=0.01)
        with pytest.raises(OSError):
            client.submit({"circuit": "s27"})
        assert server.connections == 2  # dropped keep-alive reconnect only

    def test_http_errors_are_not_retried(self, server_factory):
        # A 4xx is a server answer, not a transport failure; ServiceClientError
        # must surface immediately.
        body = json.dumps({"error": "no such job"}).encode()

        def not_found(conn):
            _read_request(conn)
            conn.sendall(
                b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            conn.close()

        server = server_factory([not_found])
        client = ServiceClient(server.url, timeout=1.0, retries=3, retry_backoff=0.01)
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("jnope")
        assert excinfo.value.status == 404
        assert server.connections == 1


class TestSSEResume:
    def test_stream_resumes_after_mid_job_disconnect(self, server_factory):
        first = [_envelope(0, "job-queued"), _envelope(1, "job-started")]
        rest = [
            _envelope(2, "sample-progress"),
            _envelope(3, "job-completed", result=None),
        ]
        server = server_factory([sse(first, finish=False), sse(rest, finish=True)])
        client = ServiceClient(server.url, timeout=1.0, retries=2, retry_backoff=0.01)
        envelopes = list(client.events("j1"))
        assert [e["seq"] for e in envelopes] == [0, 1, 2, 3]  # gap- and dup-free
        assert envelopes[-1]["event"]["kind"] == "job-completed"
        assert server.connections == 2

    def test_resume_skips_replayed_envelopes(self, server_factory):
        first = [_envelope(0, "job-queued"), _envelope(1, "job-started")]
        # The second connection replays an already-seen envelope (a server
        # that ignores ?from=); the client must drop it.
        rest = [_envelope(1, "job-started"), _envelope(2, "job-completed", result=None)]
        server = server_factory([sse(first, finish=False), sse(rest, finish=True)])
        client = ServiceClient(server.url, timeout=1.0, retries=2, retry_backoff=0.01)
        envelopes = list(client.events("j1"))
        assert [e["seq"] for e in envelopes] == [0, 1, 2]

    def test_stream_without_terminal_exhausts_budget(self, server_factory):
        server = server_factory([sse([_envelope(0, "job-queued")], finish=False)])
        client = ServiceClient(server.url, timeout=0.5, retries=1, retry_backoff=0.01)
        with pytest.raises(TimeoutError):
            list(client.events("j1"))

    def test_sse_http_error_propagates(self, server_factory):
        body = json.dumps({"error": "unknown job"}).encode()

        def not_found(conn):
            _read_request(conn)
            conn.sendall(
                b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            conn.close()

        server = server_factory([not_found])
        client = ServiceClient(server.url, timeout=1.0, retries=2, retry_backoff=0.01)
        with pytest.raises(ServiceClientError):
            list(client.events("jnope"))

    def test_client_validation(self):
        with pytest.raises(ValueError):
            ServiceClient(retries=-1)
        with pytest.raises(ValueError):
            ServiceClient(retry_backoff=-0.5)
