"""In-process EstimationService: scheduling, event logs, cancel/resume, store."""

from __future__ import annotations

import json
import time

import pytest

from repro.api import JobSpec
from repro.api.jobs import run_job
from repro.core.config import EstimationConfig
from repro.service import EstimationService
from repro.service.core import JobStateError, ServiceFullError, UnknownJobError
from repro.service.events import TERMINAL_EVENT_KINDS

TINY = EstimationConfig(
    randomness_sequence_length=16,
    max_independence_interval=4,
    min_samples=16,
    check_interval=16,
    max_samples=48,
    warmup_cycles=4,
)

#: Long enough that a cancel reliably lands mid-sampling.
LONG = EstimationConfig(
    randomness_sequence_length=32,
    max_independence_interval=4,
    min_samples=64,
    check_interval=16,
    max_samples=1536,
    warmup_cycles=4,
)


def _canon(payload):
    """Canonical JSON with the wall-clock elapsed_seconds field stripped."""

    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return json.dumps(strip(payload), sort_keys=True)


def _wait_for_progress(record, timeout=30.0):
    """Block until the job has published at least one sample-progress event."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(e["event"]["kind"] == "sample-progress" for e in record.events):
            return
        time.sleep(0.001)
    raise AssertionError(f"no sample-progress within {timeout}s; log: "
                         f"{[e['event']['kind'] for e in record.events]}")


class TestLifecycle:
    def test_submit_completes_byte_identical_to_run_job(self):
        spec = JobSpec(circuit="s27", config=TINY, seed=11)
        with EstimationService(num_workers=2) as service:
            record = service.submit(spec.to_dict())
            assert record.wait_finished(timeout=60)
            assert record.status == "completed"
            assert _canon(record.result_payload) == _canon(run_job(spec).to_dict())

    def test_event_log_contiguous_and_bracketed(self):
        with EstimationService(num_workers=1) as service:
            record = service.submit(JobSpec(circuit="s27", config=TINY, seed=3).to_dict())
            assert record.wait_finished(timeout=60)
        kinds = [e["event"]["kind"] for e in record.events]
        seqs = [e["seq"] for e in record.events]
        assert seqs == list(range(len(seqs)))
        assert kinds[0] == "job-queued"
        assert kinds[1] == "job-started"
        assert kinds[-1] == "job-completed"
        assert sum(1 for k in kinds if k in TERMINAL_EVENT_KINDS) == 1
        # The estimator's own stream is forwarded verbatim in between.
        assert "run-started" in kinds and "sample-progress" in kinds

    def test_failing_job_finishes_failed_and_pool_survives(self):
        with EstimationService(num_workers=1) as service:
            # Unknown estimator params pass boundary validation (they belong
            # to the estimator factory) and fail at build time — i.e. on the
            # worker, which must report job-failed and keep running.
            record = service.submit(
                JobSpec(circuit="s27", config=TINY, seed=1,
                        params={"bogus_param": 1}).to_dict()
            )
            assert record.wait_finished(timeout=60)
            assert record.status == "failed"
            assert record.error
            assert record.events[-1]["event"]["kind"] == "job-failed"
            # The worker thread survived and still runs jobs.
            ok = service.submit(JobSpec(circuit="s27", config=TINY, seed=2).to_dict())
            assert ok.wait_finished(timeout=60)
            assert ok.status == "completed"

    def test_unknown_job_raises(self):
        with EstimationService(num_workers=1) as service:
            with pytest.raises(UnknownJobError):
                service.get("jnope")


class TestBackpressure:
    def test_submissions_beyond_max_pending_rejected(self):
        service = EstimationService(num_workers=1, max_pending=2)
        # Workers not started: everything submitted stays queued.
        service.submit(JobSpec(circuit="s27", config=TINY, seed=1).to_dict())
        service.submit(JobSpec(circuit="s27", config=TINY, seed=2).to_dict())
        with pytest.raises(ServiceFullError):
            service.submit(JobSpec(circuit="s27", config=TINY, seed=3).to_dict())
        service.shutdown()


class TestCancelResume:
    def test_cancel_queued_job_is_immediate(self):
        service = EstimationService(num_workers=1)
        record = service.submit(JobSpec(circuit="s27", config=TINY, seed=5).to_dict())
        service.cancel(record.id)  # workers not started: still queued
        assert record.status == "cancelled"
        assert not record.checkpoint_available
        assert record.events[-1]["event"]["kind"] == "job-cancelled"
        service.start()
        time.sleep(0.05)
        assert record.status == "cancelled"  # the pool skips cancelled jobs
        service.shutdown()

    def test_cancel_running_then_resume_bit_identical(self):
        spec = JobSpec(circuit="s27", config=LONG, seed=90125)
        uninterrupted = _canon(run_job(spec).to_dict())
        with EstimationService(num_workers=1) as service:
            record = service.submit(spec.to_dict())
            _wait_for_progress(record)
            service.cancel(record.id)
            assert record.wait_finished(timeout=60)
            assert record.status == "cancelled"
            assert record.checkpoint_available
            service.resume(record.id)
            assert record.wait_finished(timeout=60)
            assert record.status == "completed"
            assert _canon(record.result_payload) == uninterrupted
        kinds = [e["event"]["kind"] for e in record.events]
        assert kinds.count("job-cancelled") == 1
        assert kinds.count("job-resumed") == 1
        assert kinds[-1] == "job-completed"

    def test_resume_without_checkpoint_restarts_identically(self):
        spec = JobSpec(circuit="s27", config=TINY, seed=17)
        uninterrupted = _canon(run_job(spec).to_dict())
        service = EstimationService(num_workers=1)
        record = service.submit(spec.to_dict())
        service.cancel(record.id)  # cancelled while queued: no checkpoint
        service.start()
        service.resume(record.id)
        assert record.wait_finished(timeout=60)
        assert record.status == "completed"
        assert _canon(record.result_payload) == uninterrupted
        service.shutdown()

    def test_resume_rejects_non_resumable_states(self):
        with EstimationService(num_workers=1) as service:
            record = service.submit(JobSpec(circuit="s27", config=TINY, seed=9).to_dict())
            assert record.wait_finished(timeout=60)
            with pytest.raises(JobStateError):
                service.resume(record.id)
            with pytest.raises(JobStateError):
                service.cancel(record.id)


class TestStoreIntegration:
    def test_restart_rehydrates_completed_jobs(self, tmp_path):
        spec = JobSpec(circuit="s27", config=TINY, seed=21, label="persisted")
        with EstimationService(store=str(tmp_path), num_workers=1) as service:
            record = service.submit(spec.to_dict())
            assert record.wait_finished(timeout=60)
            job_id = record.id
            payload = _canon(record.result_payload)
            num_events = len(record.events)

        reborn = EstimationService(store=str(tmp_path), num_workers=1)
        revived = reborn.get(job_id)
        assert revived.status == "completed"
        assert _canon(revived.result_payload) == payload
        assert len(revived.events) == num_events
        assert [e["seq"] for e in revived.events] == list(range(num_events))
        reborn.shutdown()

    def test_restart_marks_inflight_jobs_interrupted(self, tmp_path):
        service = EstimationService(store=str(tmp_path), num_workers=1)
        record = service.submit(JobSpec(circuit="s27", config=TINY, seed=23).to_dict())
        # Simulate a crash: never start workers, never finish the job.
        service.store.close()
        job_id = record.id

        reborn = EstimationService(store=str(tmp_path), num_workers=1)
        revived = reborn.get(job_id)
        assert revived.status == "interrupted"
        reborn.start()
        reborn.resume(job_id)
        assert revived.wait_finished(timeout=60)
        assert revived.status == "completed"
        reborn.shutdown()

    def test_checkpoint_survives_restart(self, tmp_path):
        spec = JobSpec(circuit="s27", config=LONG, seed=90125)
        uninterrupted = _canon(run_job(spec).to_dict())
        with EstimationService(store=str(tmp_path), num_workers=1) as service:
            record = service.submit(spec.to_dict())
            _wait_for_progress(record)
            service.cancel(record.id)
            assert record.wait_finished(timeout=60)
            assert record.status == "cancelled"
            job_id = record.id
            had_checkpoint = record.checkpoint_available

        reborn = EstimationService(store=str(tmp_path), num_workers=1)
        revived = reborn.get(job_id)
        assert revived.checkpoint_available == had_checkpoint
        reborn.start()
        reborn.resume(job_id)
        assert revived.wait_finished(timeout=60)
        assert revived.status == "completed"
        assert _canon(revived.result_payload) == uninterrupted
        reborn.shutdown()


class TestProgramSharing:
    def test_pool_lowers_each_circuit_exactly_once(self, tmp_path, monkeypatch):
        import uuid

        from repro.circuits.library import S27_BENCH
        from repro.circuits.program import clear_program_memo, compile_count

        monkeypatch.delenv("REPRO_PROGRAM_CACHE", raising=False)
        # A structurally unique circuit: no memo, disk cache or attached
        # program can satisfy it, so lowerings are observable via
        # compile_count().
        tag = f"N{uuid.uuid4().hex[:8]}"
        bench = tmp_path / "unique.bench"
        bench.write_text(S27_BENCH.replace("G", tag))
        clear_program_memo()
        before = compile_count()
        with EstimationService(num_workers=4) as service:
            records = [
                service.submit(
                    JobSpec(circuit=str(bench), config=TINY, seed=seed).to_dict()
                )
                for seed in range(8)
            ]
            for record in records:
                assert record.wait_finished(timeout=120)
                assert record.status == "completed"
        assert compile_count() - before == 1
