"""Variance-reduction stimuli through the service: HTTP, SSE, persistence."""

from __future__ import annotations

import pytest

from repro.api import JobSpec, StimulusSpec
from repro.core.config import EstimationConfig
from repro.service import EstimationService, ResultStore, ServiceClient, ServiceThread

COUPLED = EstimationConfig(
    num_chains=16,
    randomness_sequence_length=32,
    max_independence_interval=4,
    min_samples=64,
    check_interval=32,
    max_samples=2000,
    warmup_cycles=8,
)


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "store")


@pytest.fixture()
def server(store_path):
    service = EstimationService(store=store_path, num_workers=2)
    with ServiceThread(service) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as client:
        yield client


def _spec(kind, seed):
    return JobSpec(
        circuit="s27",
        stimulus=StimulusSpec(kind=kind, params={"probability": 0.5}),
        config=COUPLED,
        seed=seed,
        label=f"{kind}-job",
    )


@pytest.mark.parametrize("kind", ["sobol", "antithetic"])
class TestVarianceJobsOverHttp:
    def test_job_completes_and_streams_ess(self, client, kind):
        job_id = client.submit(_spec(kind, seed=5))["id"]
        assert client.wait(job_id)["status"] == "completed"

        envelopes = list(client.events(job_id))
        progress = [
            e["event"] for e in envelopes if e["event"]["kind"] == "sample-progress"
        ]
        assert progress
        # Past the first check, streamed progress carries the running ESS.
        assert all(
            e["effective_sample_size"] is not None and e["effective_sample_size"] > 0
            for e in progress[1:]
        )

        result = client.result(job_id)
        assert result["status"] == "ok"
        estimate = result["result"]["data"]
        assert estimate["stopping_criterion"] == "grouped-order-statistic"
        assert estimate["effective_sample_size"] > 0
        assert estimate["sample_size"] % COUPLED.num_chains == 0

    def test_result_roundtrips_through_store(self, client, store_path, kind):
        job_id = client.submit(_spec(kind, seed=6))["id"]
        client.wait(job_id)
        over_http = client.result(job_id)
        on_disk = ResultStore(store_path).load_result(job_id)
        assert on_disk == over_http
        assert on_disk["result"]["data"]["effective_sample_size"] > 0


class TestVarianceJobValidation:
    def test_unknown_stimulus_rejected(self, client):
        from repro.service.client import ServiceClientError

        spec = JobSpec(circuit="s27", config=COUPLED, seed=1)
        payload = spec.to_dict()
        payload["stimulus"] = {"kind": "warp-drive", "params": {}}
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(payload)
        assert excinfo.value.status == 400
        assert "stimulus" in str(excinfo.value)
