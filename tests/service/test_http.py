"""HTTP/SSE front-end: endpoints, streaming, cancel/resume over the wire."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api import JobSpec
from repro.api.events import EstimateCompleted, event_from_dict
from repro.core.config import EstimationConfig
from repro.service import EstimationService, ServiceClient, ServiceThread
from repro.service.client import ServiceClientError

TINY = EstimationConfig(
    randomness_sequence_length=16,
    max_independence_interval=4,
    min_samples=16,
    check_interval=16,
    max_samples=48,
    warmup_cycles=4,
)


@pytest.fixture()
def server(tmp_path):
    """A live server on an ephemeral port, with an on-disk store."""
    service = EstimationService(store=str(tmp_path / "store"), num_workers=2)
    with ServiceThread(service) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as client:
        yield client


def _spec(seed=1, **kwargs):
    return JobSpec(circuit="s27", config=TINY, seed=seed, **kwargs)


class TestEndpoints:
    def test_banner_health_stats(self, client):
        assert client.health() == {"ok": True}
        stats = client.stats()
        assert stats["num_workers"] == 2
        assert "jobs" in stats

    def test_submit_wait_result_roundtrip(self, client):
        snapshot = client.submit(_spec(seed=4, label="http-job"))
        assert snapshot["status"] in ("queued", "running")
        final = client.wait(snapshot["id"])
        assert final["status"] == "completed"
        assert final["label"] == "http-job"
        result = client.result(snapshot["id"])
        assert result["status"] == "ok"
        assert result["result"]["type"] == "power-estimate"
        listing = client.jobs()
        assert [job["id"] for job in listing] == [snapshot["id"]]

    def test_result_missing_job_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.result("jmissing")
        assert excinfo.value.status == 404

    def test_result_conflicts_until_finished(self, client):
        long_spec = JobSpec(
            circuit="s298",
            config=EstimationConfig(
                randomness_sequence_length=64,
                max_independence_interval=8,
                min_samples=128,
                check_interval=32,
                max_samples=4000,
                warmup_cycles=16,
            ),
            seed=33,
        )
        job_id = client.submit(long_spec)["id"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.result(job_id)  # immediately: still queued or running
        assert excinfo.value.status == 409
        assert client.wait(job_id)["status"] == "completed"

    def test_unknown_routes_and_methods(self, server):
        conn = http.client.HTTPConnection(*server.server.address)
        try:
            for method, path, expected in [
                ("GET", "/nope", 404),
                ("PUT", "/jobs", 405),
                ("PATCH", "/jobs/j123", 405),
            ]:
                conn.request(method, path)
                response = conn.getresponse()
                response.read()  # drain so the keep-alive connection is reusable
                assert response.status == expected
        finally:
            conn.close()

    def test_cancel_then_resume_over_http(self, client):
        long_spec = JobSpec(
            circuit="s27",
            config=EstimationConfig(
                randomness_sequence_length=32,
                max_independence_interval=4,
                min_samples=64,
                check_interval=16,
                max_samples=1536,
                warmup_cycles=4,
            ),
            seed=90125,
        )
        job_id = client.submit(long_spec)["id"]
        stream = client.events(job_id)
        try:
            for envelope in stream:
                if envelope["event"]["kind"] == "sample-progress":
                    client.cancel(job_id)
                    break
        finally:
            stream.close()
        final = client.wait(job_id)
        if final["status"] == "cancelled":  # the cancel landed mid-run
            client.resume(job_id)
            final = client.wait(job_id)
        assert final["status"] == "completed"


class TestEventStream:
    def test_sse_stream_is_contiguous_and_typed(self, client):
        job_id = client.submit(_spec(seed=6))["id"]
        envelopes = list(client.events(job_id))
        assert [e["seq"] for e in envelopes] == list(range(len(envelopes)))
        kinds = [e["event"]["kind"] for e in envelopes]
        assert kinds[0] == "job-queued"
        assert kinds[-1] == "job-completed"
        typed = [event_from_dict(e["event"]) for e in envelopes]
        completed = [e for e in typed if isinstance(e, EstimateCompleted)]
        assert len(completed) == 1

    def test_sse_replay_from_offset(self, client):
        job_id = client.submit(_spec(seed=7))["id"]
        full = list(client.events(job_id))  # runs to completion
        tail = list(client.events(job_id, from_seq=3))
        assert tail == full[3:]
        again = list(client.typed_events(job_id))
        assert len(again) == len(full)

    def test_sse_unknown_job_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            list(client.events("jghost"))
        assert excinfo.value.status == 404

    def test_sse_bad_from_parameter(self, client):
        job_id = client.submit(_spec(seed=8))["id"]
        client.wait(job_id)
        for bad in ("abc", "-1"):
            with pytest.raises(ServiceClientError) as excinfo:
                list(client.events(job_id, from_seq=bad))
            assert excinfo.value.status == 400


class TestRestartOverHttp:
    def test_results_survive_server_restart(self, tmp_path):
        store = str(tmp_path / "store")
        service = EstimationService(store=store, num_workers=1)
        with ServiceThread(service) as thread:
            with ServiceClient(thread.url) as client:
                job_id = client.submit(_spec(seed=12))["id"]
                final = client.wait(job_id)
                result = client.result(job_id)
        assert final["status"] == "completed"

        reborn = EstimationService(store=store, num_workers=1)
        with ServiceThread(reborn) as thread:
            with ServiceClient(thread.url) as client:
                assert client.job(job_id)["status"] == "completed"
                assert client.result(job_id) == result
                # The persisted event log replays over SSE after restart.
                envelopes = list(client.events(job_id))
                assert envelopes[-1]["event"]["kind"] == "job-completed"
