"""Adversarial JobSpec payloads at the service boundary.

Every malformed, hostile, or oversized submission must come back as a clean
4xx — never crash a worker, never poison the queue, never take the server
down.  Each test ends by running a good job to prove the service survived.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api import JobSpec
from repro.core.config import EstimationConfig
from repro.service import EstimationService, ServiceClient, ServiceThread
from repro.service.client import ServiceClientError
from repro.service.core import InvalidJobError, validate_job_payload
from repro.service.server import MAX_BODY_BYTES

TINY = EstimationConfig(
    randomness_sequence_length=16,
    max_independence_interval=4,
    min_samples=16,
    check_interval=16,
    max_samples=48,
    warmup_cycles=4,
)


def _tiny_payload(**overrides):
    payload = JobSpec(circuit="s27", config=TINY, seed=1).to_dict()
    payload.update(overrides)
    return payload


#: (payload, match) — every entry must be rejected by the boundary validator.
REJECTED_PAYLOADS = [
    (None, "JSON object"),
    ("a string", "JSON object"),
    ([1, 2, 3], "JSON object"),
    ({}, "missing the required 'circuit'"),
    ({"spec": {}}, "missing the required 'circuit'"),
    (_tiny_payload(estimator="not-an-estimator"), "unknown estimator"),
    (_tiny_payload(stimulus={"kind": "not-a-stimulus", "params": {}}), "unknown stimulus"),
    (_tiny_payload(circuit="no-such-circuit"), "unknown circuit"),
    (_tiny_payload(circuit="/nonexistent/path/to/file.bench"), "cannot read circuit"),
    (_tiny_payload(sneaky_extra_field=1), "unknown spec fields"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], min_samples=-5)),
     "min_samples"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], max_samples=-1)),
     "invalid job spec"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], confidence=7.0)),
     "invalid job spec"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], stopping_criterion="bogus")),
     "invalid job spec"),
    (_tiny_payload(stimulus={"kind": "bernoulli", "params": {"probabilities": 2.5}}),
     "invalid stimulus"),
    (_tiny_payload(seed="not-an-int"), "invalid job spec"),
    (_tiny_payload(config="not-a-config-dict"), "invalid job spec"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], worker_hosts="nohost")),
     "invalid 'config.worker_hosts'"),
    (_tiny_payload(config=dict(_tiny_payload()["config"], worker_hosts="host:70000")),
     "invalid 'config.worker_hosts'"),
]


class TestBoundaryValidator:
    @pytest.mark.parametrize("payload,match", REJECTED_PAYLOADS)
    def test_rejected_with_clear_message(self, payload, match):
        with pytest.raises(InvalidJobError, match=match):
            validate_job_payload(payload)

    def test_valid_payload_accepted_both_shapes(self):
        payload = _tiny_payload()
        assert validate_job_payload(payload).circuit == "s27"
        assert validate_job_payload({"spec": payload}).circuit == "s27"


class TestHttpBoundary:
    @pytest.fixture()
    def server(self):
        service = EstimationService(num_workers=1, max_pending=8)
        with ServiceThread(service) as thread:
            yield thread

    def test_all_adversarial_payloads_get_400_and_server_survives(self, server):
        with ServiceClient(server.url) as client:
            for payload, _match in REJECTED_PAYLOADS:
                with pytest.raises(ServiceClientError) as excinfo:
                    client.submit(payload)
                assert excinfo.value.status == 400, payload
            assert client.stats()["num_jobs"] == 0  # nothing reached the queue
            good = client.submit(_tiny_payload())
            assert client.wait(good["id"])["status"] == "completed"

    def test_non_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(*server.server.address)
        try:
            conn.request("POST", "/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_empty_body_is_400(self, server):
        conn = http.client.HTTPConnection(*server.server.address)
        try:
            conn.request("POST", "/jobs")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_oversized_spec_is_413(self, server):
        oversized = _tiny_payload(label="x" * (MAX_BODY_BYTES + 1))
        with ServiceClient(server.url) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(oversized)
            assert excinfo.value.status == 413
            # And the connection/server survive to run a real job.
            good = client.submit(_tiny_payload())
            assert client.wait(good["id"])["status"] == "completed"

    def test_oversized_headers_are_413(self, server):
        conn = http.client.HTTPConnection(*server.server.address)
        try:
            conn.putrequest("GET", "/health", skip_accept_encoding=True)
            conn.putheader("X-Flood", "y" * (64 * 1024))
            conn.endheaders()
            assert conn.getresponse().status == 413
        except (ConnectionError, http.client.HTTPException):
            pass  # server may drop the connection mid-flood; that's fine too
        finally:
            conn.close()

    def test_backpressure_is_429(self):
        service = EstimationService(num_workers=1, max_pending=2)
        # Keep the pool idle so submissions stay queued: don't start workers.
        # ServiceThread.start() starts them, so drive the scheduler directly
        # through the HTTP layer with the queue pre-filled.
        with ServiceThread(service) as thread:
            service._stop.set()  # freeze the pool: jobs stay pending
            for worker in service._threads:
                worker.join(timeout=5)
            with ServiceClient(thread.url) as client:
                client.submit(_tiny_payload(seed=1))
                client.submit(_tiny_payload(seed=2))
                with pytest.raises(ServiceClientError) as excinfo:
                    client.submit(_tiny_payload(seed=3))
                assert excinfo.value.status == 429
