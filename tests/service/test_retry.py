"""Per-job retry policy: transient failures retry from the auto-checkpoint.

A registered ``flaky-dipe`` estimator fails on demand partway through its
event stream, which exercises the whole retry loop: auto-checkpoint while
running, ``job-retrying`` (not terminal), resume from the snapshot, and a
final result byte-identical to a never-failed run.  Restart rehydration is
covered too: interrupted jobs with a checkpoint and budget left are
auto-requeued when a new service opens the store.
"""

from __future__ import annotations

import json

import pytest

from repro.api import JobSpec
from repro.api.jobs import run_job
from repro.api.registry import register_estimator
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.service import EstimationService
from repro.service.core import InvalidJobError, validate_retry_policy
from repro.service.store import ResultStore

LONG = EstimationConfig(
    randomness_sequence_length=32,
    max_independence_interval=4,
    min_samples=64,
    check_interval=16,
    max_samples=1536,
    warmup_cycles=4,
)

#: Mutable failure plan the flaky estimator consults: ``remaining`` attempts
#: still to fail, each at its ``after_progress``-th sample-progress event (so
#: the failure lands mid-sampling, after auto-checkpoints exist).  Safe for
#: single-worker services (one attempt runs at a time).
_FAIL_PLAN = {"remaining": 0, "after_progress": 2}


class _FlakyDipe(DipeEstimator):
    """DIPE whose run() raises mid-stream while the failure plan says so."""

    def run(self, resume_from=None):
        progressed = 0
        for event in super().run(resume_from=resume_from):
            yield event
            if getattr(type(event), "kind", "") == "sample-progress":
                progressed += 1
                if _FAIL_PLAN["remaining"] > 0 and progressed >= _FAIL_PLAN["after_progress"]:
                    _FAIL_PLAN["remaining"] -= 1
                    raise RuntimeError("injected transient estimator failure")


register_estimator("flaky-dipe", _FlakyDipe)


@pytest.fixture(autouse=True)
def _reset_fail_plan():
    _FAIL_PLAN["remaining"] = 0
    _FAIL_PLAN["after_progress"] = 2
    yield
    _FAIL_PLAN["remaining"] = 0


def _canon(payload):
    def strip(node):
        if isinstance(node, dict):
            return {k: strip(v) for k, v in node.items() if k != "elapsed_seconds"}
        if isinstance(node, list):
            return [strip(v) for v in node]
        return node

    return json.dumps(strip(payload), sort_keys=True)


def _spec(seed=90125):
    return JobSpec(circuit="s27", estimator="flaky-dipe", config=LONG, seed=seed)


def _wait_for_progress(record, timeout=30.0):
    """Block until the job published a sample-progress event (checkpointable)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(e["event"]["kind"] == "sample-progress" for e in record.events):
            return
        time.sleep(0.001)
    raise AssertionError("no sample-progress event within the deadline")


class TestRetryPolicy:
    def test_transient_failure_retries_from_checkpoint_bit_identical(self):
        uninterrupted = _canon(run_job(_spec()).to_dict())  # plan inactive: clean
        _FAIL_PLAN["remaining"] = 1
        with EstimationService(
            num_workers=1, max_retries=2, auto_checkpoint_events=1
        ) as service:
            record = service.submit(_spec().to_dict())
            assert record.wait_finished(timeout=120)
            assert record.status == "completed"
            assert record.retries == 1
            assert _canon(record.result_payload) == uninterrupted
            assert service.stats()["retries_scheduled"] == 1
        kinds = [e["event"]["kind"] for e in record.events]
        assert kinds.count("job-retrying") == 1
        assert kinds.count("job-started") == 2
        assert kinds[-1] == "job-completed"
        retrying = next(
            e["event"] for e in record.events if e["event"]["kind"] == "job-retrying"
        )
        assert retrying["attempt"] == 1
        assert retrying["max_retries"] == 2
        assert retrying["from_checkpoint"] is True
        assert "injected transient" in retrying["error"]

    def test_budget_exhausted_fails_terminally(self):
        _FAIL_PLAN["remaining"] = 5  # more failures than budget
        with EstimationService(num_workers=1, max_retries=1) as service:
            record = service.submit(_spec(seed=3).to_dict())
            assert record.wait_finished(timeout=120)
            assert record.status == "failed"
            assert record.retries == 1
            assert "injected transient" in record.error
        kinds = [e["event"]["kind"] for e in record.events]
        assert kinds.count("job-retrying") == 1
        assert kinds[-1] == "job-failed"

    def test_wrapper_payload_overrides_server_default(self):
        _FAIL_PLAN["remaining"] = 1
        with EstimationService(num_workers=1, auto_checkpoint_events=1) as service:
            # Server default is max_retries=0; the wrapper grants budget.
            record = service.submit({"spec": _spec(seed=5).to_dict(), "max_retries": 2})
            assert record.max_retries == 2
            assert record.wait_finished(timeout=120)
            assert record.status == "completed"
            assert record.retries == 1

    def test_zero_budget_fails_on_first_error(self):
        _FAIL_PLAN["remaining"] = 1
        with EstimationService(num_workers=1) as service:
            record = service.submit(_spec(seed=7).to_dict())
            assert record.wait_finished(timeout=120)
            assert record.status == "failed"
            assert record.retries == 0
            assert "job-retrying" not in [e["event"]["kind"] for e in record.events]


class TestValidation:
    def test_validate_retry_policy(self):
        assert validate_retry_policy(0) == 0
        assert validate_retry_policy(7) == 7
        for bad in (-1, True, 1.5, "2", None):
            with pytest.raises(InvalidJobError):
                validate_retry_policy(bad)

    def test_wrapper_rejects_unknown_keys(self):
        with EstimationService(num_workers=1) as service:
            with pytest.raises(InvalidJobError):
                service.submit({"spec": _spec().to_dict(), "max_rerties": 1})
            with pytest.raises(InvalidJobError):
                service.submit({"spec": _spec().to_dict(), "max_retries": -2})

    def test_service_constructor_validation(self):
        with pytest.raises(ValueError):
            EstimationService(max_retries=-1)
        with pytest.raises(ValueError):
            EstimationService(auto_checkpoint_events=-1)


class TestRestartRehydration:
    def test_interrupted_job_with_checkpoint_auto_requeues(self, tmp_path):
        spec = _spec()
        uninterrupted = _canon(run_job(spec).to_dict())
        with EstimationService(
            store=str(tmp_path), num_workers=1, auto_checkpoint_events=1
        ) as service:
            record = service.submit({"spec": spec.to_dict(), "max_retries": 1})
            # Cancel mid-sampling: snapshots a genuine resumable checkpoint.
            _wait_for_progress(record)
            service.cancel(record.id)
            assert record.wait_finished(timeout=60)
            assert record.checkpoint_available
            job_id = record.id
            meta = record.meta_dict()

        # Simulate a server crash: the stored meta says the job was still
        # running when the process died.
        store = ResultStore(str(tmp_path))
        meta["status"] = "running"
        meta["finished_at"] = None
        store.write_meta(job_id, meta)
        store.close()

        with EstimationService(store=str(tmp_path), num_workers=1) as reborn:
            revived = reborn.get(job_id)
            assert revived.retries == 1  # the auto-requeue consumed one retry
            assert revived.wait_finished(timeout=120)
            assert revived.status == "completed"
            assert _canon(revived.result_payload) == uninterrupted
        kinds = [e["event"]["kind"] for e in revived.events]
        assert kinds.count("job-resumed") == 1
        assert kinds[-1] == "job-completed"

    def test_interrupted_job_without_budget_stays_interrupted(self, tmp_path):
        with EstimationService(
            store=str(tmp_path), num_workers=1, auto_checkpoint_events=1
        ) as service:
            record = service.submit(_spec(seed=11).to_dict())  # max_retries=0
            _wait_for_progress(record)
            service.cancel(record.id)
            record.wait_finished(timeout=60)
            job_id = record.id
            meta = record.meta_dict()

        store = ResultStore(str(tmp_path))
        meta["status"] = "running"
        store.write_meta(job_id, meta)
        store.close()

        reborn = EstimationService(store=str(tmp_path), num_workers=1)
        assert reborn.get(job_id).status == "interrupted"
        reborn.shutdown()
