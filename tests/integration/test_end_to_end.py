"""Integration tests: the full DIPE flow against exact and reference ground truth."""

import pytest

from repro.circuits.iscas89 import build_circuit
from repro.circuits.library import binary_counter, parity_tracker
from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.fsm.exact_power import exact_average_power
from repro.fsm.markov import mixing_time, stationary_distribution
from repro.fsm.stg import extract_stg
from repro.power.reference import estimate_reference_power
from repro.simulation.compiled import CompiledCircuit
from repro.stimulus.correlated_inputs import LagOneMarkovStimulus
from repro.stimulus.random_inputs import BernoulliStimulus


QUICK = EstimationConfig(
    randomness_sequence_length=128,
    min_samples=64,
    check_interval=32,
    max_samples=6000,
    warmup_cycles=32,
)


class TestAgainstExactPower:
    """The statistical estimators must converge to the enumerated truth."""

    @pytest.mark.parametrize(
        "factory, input_probability",
        [
            # Only ergodic FSMs are meaningful here: for a reducible state
            # chain (e.g. a free-running Johnson counter) the long-run power
            # depends on which closed class the initial state lands in, so a
            # single simulated chain and the all-states stationary solution
            # legitimately disagree.
            (lambda: binary_counter(4), 0.5),
            (lambda: binary_counter(4), 0.8),
            (lambda: parity_tracker(3), 0.3),
        ],
        ids=["counter-p0.5", "counter-p0.8", "parity-p0.3"],
    )
    def test_dipe_matches_enumeration(self, factory, input_probability):
        circuit = CompiledCircuit.from_netlist(factory())
        exact = exact_average_power(circuit, input_probability)
        stimulus = BernoulliStimulus(circuit.num_inputs, input_probability)
        estimate = DipeEstimator(circuit, stimulus=stimulus, config=QUICK, rng=1).estimate()
        assert estimate.average_power_w == pytest.approx(exact, rel=0.08)

    def test_all_three_estimators_agree_on_s27(self, s27_circuit):
        exact = exact_average_power(s27_circuit, 0.5)
        dipe = DipeEstimator(s27_circuit, config=QUICK, rng=2).estimate()
        consecutive = ConsecutiveCycleEstimator(s27_circuit, config=QUICK, rng=3).estimate()
        warmup = FixedWarmupEstimator(
            s27_circuit, config=QUICK, rng=4, warmup_period=16
        ).estimate()
        for estimate in (dipe, consecutive, warmup):
            assert estimate.average_power_w == pytest.approx(exact, rel=0.10)


class TestAgainstLongSimulation:
    def test_dipe_meets_error_specification_on_benchmark(self):
        circuit = build_circuit("s344")
        reference = estimate_reference_power(
            circuit, BernoulliStimulus(circuit.num_inputs, 0.5), total_cycles=40_000, rng=5
        )
        estimate = DipeEstimator(circuit, config=QUICK, rng=6).estimate()
        assert estimate.accuracy_met
        assert estimate.relative_error_to(reference.average_power_w) < QUICK.max_relative_error * 2

    def test_correlated_inputs_still_estimated_correctly(self):
        """Paper claim: correlated input streams are handled without extra work."""
        circuit = build_circuit("s298")
        stimulus = LagOneMarkovStimulus(circuit.num_inputs, probability=0.5, correlation=0.8)
        reference = estimate_reference_power(
            circuit,
            LagOneMarkovStimulus(circuit.num_inputs, probability=0.5, correlation=0.8),
            total_cycles=60_000,
            lanes=64,
            rng=7,
        )
        estimate = DipeEstimator(circuit, stimulus=stimulus, config=QUICK, rng=8).estimate()
        assert estimate.relative_error_to(reference.average_power_w) < 0.10


class TestMixingExplainsInterval:
    def test_fast_mixing_circuit_gets_small_interval(self, s27_circuit):
        """The FSM's mixing time and the selected interval tell the same story."""
        stg = extract_stg(s27_circuit, 0.5)
        pi = stationary_distribution(stg.transition_matrix)
        assert pi.sum() == pytest.approx(1.0)
        chain_mixing = mixing_time(stg.transition_matrix, threshold=0.1)
        estimate = DipeEstimator(s27_circuit, config=QUICK, rng=9).estimate()
        assert estimate.independence_interval <= max(4, 2 * chain_mixing)


class TestEventDrivenPowerMode:
    def test_glitch_aware_estimate_at_least_functional(self, s27_circuit):
        functional_config = EstimationConfig(
            randomness_sequence_length=96,
            min_samples=64,
            check_interval=32,
            max_samples=2000,
            warmup_cycles=16,
            power_simulator="zero-delay",
        )
        glitch_config = EstimationConfig(
            randomness_sequence_length=96,
            min_samples=64,
            check_interval=32,
            max_samples=2000,
            warmup_cycles=16,
            power_simulator="event-driven",
        )
        functional = DipeEstimator(s27_circuit, config=functional_config, rng=10).estimate()
        glitchy = DipeEstimator(s27_circuit, config=glitch_config, rng=10).estimate()
        assert glitchy.average_power_w >= functional.average_power_w * 0.95
