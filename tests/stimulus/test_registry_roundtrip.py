"""Registry-wide stimulus contract: state round-trips and spec serialization.

Parameterized over *every* registered stimulus kind, so a stimulus added to
the registry is automatically held to the checkpointing contract:
``get_state``/``set_state`` must continue the stream bit-identically, and the
kind must survive a :class:`~repro.api.jobs.StimulusSpec` JSON round trip.
"""

import json

import numpy as np
import pytest

from repro.api.jobs import StimulusSpec
from repro.api.registry import stimulus_names

NUM_INPUTS = 4
WIDTH = 8  # even: the antithetic stimulus requires paired lanes

#: Factory parameters needed by kinds whose factories have required or
#: probability-constrained arguments; every other kind builds bare.
SPEC_PARAMS = {
    "sequence": {
        "vectors": [
            [0, 1, 0, 1],
            [1, 1, 0, 0],
            [0, 0, 1, 1],
        ]
    },
}


def all_kinds():
    return sorted(stimulus_names())


def build(kind):
    return StimulusSpec(kind=kind, params=SPEC_PARAMS.get(kind, {}))


def test_variance_stimuli_are_registered():
    assert {"antithetic", "stratified", "sobol"} <= set(all_kinds())


@pytest.mark.parametrize("kind", all_kinds())
def test_spec_survives_json_roundtrip(kind):
    spec = build(kind)
    recovered = StimulusSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert recovered == spec
    stimulus = recovered.build(NUM_INPUTS)
    assert stimulus.num_inputs == NUM_INPUTS


@pytest.mark.parametrize("kind", all_kinds())
def test_state_roundtrip_continues_bit_identically(kind):
    spec = build(kind)
    stimulus = spec.build(NUM_INPUTS)
    rng = np.random.default_rng(123)
    for _ in range(7):
        stimulus.next_bits(rng, WIDTH)
    state = stimulus.get_state()
    rng_state = rng.bit_generator.state

    continued = [stimulus.next_bits(rng, WIDTH).copy() for _ in range(7)]

    clone = spec.build(NUM_INPUTS)
    clone.set_state(state)
    clone_rng = np.random.default_rng(0)
    clone_rng.bit_generator.state = rng_state
    resumed = [clone.next_bits(clone_rng, WIDTH).copy() for _ in range(7)]

    for a, b in zip(continued, resumed):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("kind", all_kinds())
def test_fresh_state_restores_into_fresh_instance(kind):
    spec = build(kind)
    stimulus = spec.build(NUM_INPUTS)
    clone = spec.build(NUM_INPUTS)
    clone.set_state(stimulus.get_state())
    rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
    np.testing.assert_array_equal(
        stimulus.next_bits(rng_a, WIDTH), clone.next_bits(rng_b, WIDTH)
    )


@pytest.mark.parametrize("kind", all_kinds())
def test_block_draws_match_looped_draws(kind):
    # next_bits_block must consume the RNG exactly like successive next_bits
    # calls — the invariant the sharded sampler's pattern feeder relies on.
    spec = build(kind)
    looped = spec.build(NUM_INPUTS)
    blocked = spec.build(NUM_INPUTS)
    rng_a, rng_b = np.random.default_rng(31), np.random.default_rng(31)
    expected = np.stack([looped.next_bits(rng_a, WIDTH).copy() for _ in range(6)])
    np.testing.assert_array_equal(blocked.next_bits_block(rng_b, WIDTH, 6), expected)
