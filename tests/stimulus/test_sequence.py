"""Unit tests for the trace-replay stimulus."""

import numpy as np
import pytest

from repro.stimulus.sequence import SequenceStimulus


class TestSequenceStimulus:
    def test_replays_in_order(self):
        stimulus = SequenceStimulus([[0, 1], [1, 0], [1, 1]])
        rng = np.random.default_rng(0)
        assert stimulus.next_pattern(rng) == [0, 1]
        assert stimulus.next_pattern(rng) == [1, 0]
        assert stimulus.next_pattern(rng) == [1, 1]

    def test_wraps_around(self):
        stimulus = SequenceStimulus([[1], [0]])
        rng = np.random.default_rng(0)
        values = [stimulus.next_pattern(rng)[0] for _ in range(5)]
        assert values == [1, 0, 1, 0, 1]

    def test_reset_restarts_trace(self):
        stimulus = SequenceStimulus([[1], [0]])
        rng = np.random.default_rng(0)
        stimulus.next_pattern(rng)
        stimulus.reset()
        assert stimulus.next_pattern(rng) == [1]

    def test_multi_lane_consumes_consecutive_vectors(self):
        stimulus = SequenceStimulus([[1, 0], [0, 1]])
        rng = np.random.default_rng(0)
        pattern = stimulus.next_pattern(rng, width=2)
        # lane 0 = first vector, lane 1 = second vector
        assert pattern[0] == 0b01
        assert pattern[1] == 0b10

    def test_values_are_masked_to_bits(self):
        stimulus = SequenceStimulus([[2, 3]])  # non-binary values collapse to LSB
        rng = np.random.default_rng(0)
        assert stimulus.next_pattern(rng) == [0, 1]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            SequenceStimulus([])

    def test_ragged_trace_rejected(self):
        with pytest.raises(ValueError):
            SequenceStimulus([[0, 1], [1]])

    def test_describe_mentions_length(self):
        assert "trace_length=3" in SequenceStimulus([[0], [1], [0]]).describe()
