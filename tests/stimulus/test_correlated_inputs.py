"""Unit tests for the correlated input generators."""

import numpy as np
import pytest

from repro.stimulus.correlated_inputs import LagOneMarkovStimulus, SpatiallyCorrelatedStimulus


def _bit_series(stimulus, input_index, cycles, rng, width=1):
    series = []
    for _ in range(cycles):
        pattern = stimulus.next_pattern(rng, width=width)
        series.append(pattern[input_index] & 1)
    return np.array(series, dtype=float)


class TestLagOneMarkovStimulus:
    def test_stationary_probability(self):
        stimulus = LagOneMarkovStimulus(1, probability=0.3, correlation=0.6)
        series = _bit_series(stimulus, 0, 6000, np.random.default_rng(1))
        assert series.mean() == pytest.approx(0.3, abs=0.04)

    def test_lag_one_autocorrelation(self):
        stimulus = LagOneMarkovStimulus(1, probability=0.5, correlation=0.7)
        series = _bit_series(stimulus, 0, 8000, np.random.default_rng(2))
        centred = series - series.mean()
        rho = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        assert rho == pytest.approx(0.7, abs=0.06)

    def test_zero_correlation_behaves_like_bernoulli(self):
        stimulus = LagOneMarkovStimulus(1, probability=0.5, correlation=0.0)
        series = _bit_series(stimulus, 0, 6000, np.random.default_rng(3))
        centred = series - series.mean()
        rho = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        assert abs(rho) < 0.05

    def test_reset_clears_state(self):
        stimulus = LagOneMarkovStimulus(2, correlation=0.9)
        stimulus.next_pattern(np.random.default_rng(4))
        stimulus.reset()
        assert stimulus._state is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LagOneMarkovStimulus(2, probability=1.5)
        with pytest.raises(ValueError):
            LagOneMarkovStimulus(2, correlation=1.5)
        with pytest.raises(ValueError):
            LagOneMarkovStimulus(2, probability=[0.5])

    def test_lane_width_change_restarts_chains(self):
        stimulus = LagOneMarkovStimulus(1, correlation=0.9)
        rng = np.random.default_rng(5)
        stimulus.next_pattern(rng, width=1)
        pattern = stimulus.next_pattern(rng, width=8)
        assert 0 <= pattern[0] < (1 << 8)


class TestSpatiallyCorrelatedStimulus:
    def test_same_group_inputs_positively_correlated(self):
        stimulus = SpatiallyCorrelatedStimulus(2, num_groups=1, coupling=0.9)
        rng = np.random.default_rng(6)
        a_series, b_series = [], []
        for _ in range(6000):
            pattern = stimulus.next_pattern(rng)
            a_series.append(pattern[0] & 1)
            b_series.append(pattern[1] & 1)
        a = np.array(a_series, dtype=float) - np.mean(a_series)
        b = np.array(b_series, dtype=float) - np.mean(b_series)
        correlation = np.dot(a, b) / np.sqrt(np.dot(a, a) * np.dot(b, b))
        assert correlation > 0.5

    def test_different_group_inputs_uncorrelated(self):
        stimulus = SpatiallyCorrelatedStimulus(2, num_groups=2, coupling=0.9)
        rng = np.random.default_rng(7)
        a_series, b_series = [], []
        for _ in range(6000):
            pattern = stimulus.next_pattern(rng)
            a_series.append(pattern[0] & 1)
            b_series.append(pattern[1] & 1)
        a = np.array(a_series, dtype=float) - np.mean(a_series)
        b = np.array(b_series, dtype=float) - np.mean(b_series)
        correlation = np.dot(a, b) / np.sqrt(np.dot(a, a) * np.dot(b, b))
        assert abs(correlation) < 0.1

    def test_marginal_probability_stays_half(self):
        stimulus = SpatiallyCorrelatedStimulus(3, num_groups=2, coupling=0.8)
        series = _bit_series(stimulus, 0, 6000, np.random.default_rng(8))
        assert series.mean() == pytest.approx(0.5, abs=0.04)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SpatiallyCorrelatedStimulus(2, num_groups=0)
        with pytest.raises(ValueError):
            SpatiallyCorrelatedStimulus(2, coupling=1.5)
