"""Unit tests for the Bernoulli input generator."""

import numpy as np
import pytest

from repro.stimulus.base import pack_lane_bits, unpack_lane_bits
from repro.stimulus.random_inputs import BernoulliStimulus


class TestPacking:
    def test_pack_unpack_round_trip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        word = pack_lane_bits(bits)
        assert np.array_equal(unpack_lane_bits(word, 8), bits)

    def test_pack_empty(self):
        assert pack_lane_bits(np.array([], dtype=np.uint8)) == 0


class TestBernoulliStimulus:
    def test_pattern_shape(self):
        stimulus = BernoulliStimulus(5, 0.5)
        pattern = stimulus.next_pattern(np.random.default_rng(0), width=8)
        assert len(pattern) == 5
        assert all(0 <= word < (1 << 8) for word in pattern)

    def test_zero_probability_gives_all_zero(self):
        stimulus = BernoulliStimulus(3, 0.0)
        pattern = stimulus.next_pattern(np.random.default_rng(0), width=16)
        assert pattern == [0, 0, 0]

    def test_one_probability_gives_all_ones(self):
        stimulus = BernoulliStimulus(3, 1.0)
        pattern = stimulus.next_pattern(np.random.default_rng(0), width=16)
        assert pattern == [(1 << 16) - 1] * 3

    def test_empirical_probability_matches(self):
        stimulus = BernoulliStimulus(1, 0.3)
        rng = np.random.default_rng(1)
        ones = 0
        cycles = 4000
        for _ in range(cycles):
            ones += stimulus.next_pattern(rng, width=1)[0]
        assert ones / cycles == pytest.approx(0.3, abs=0.03)

    def test_per_input_probabilities(self):
        stimulus = BernoulliStimulus(2, [0.0, 1.0])
        pattern = stimulus.next_pattern(np.random.default_rng(2), width=4)
        assert pattern == [0, 0b1111]

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BernoulliStimulus(2, 1.5)
        with pytest.raises(ValueError):
            BernoulliStimulus(2, [0.5])

    def test_zero_inputs_supported(self):
        stimulus = BernoulliStimulus(0)
        assert stimulus.next_pattern(np.random.default_rng(0)) == []

    def test_patterns_helper(self):
        stimulus = BernoulliStimulus(2, 0.5)
        patterns = stimulus.patterns(np.random.default_rng(3), cycles=10, width=1)
        assert len(patterns) == 10
        assert all(len(p) == 2 for p in patterns)

    def test_describe_mentions_probability(self):
        assert "0.5" in BernoulliStimulus(4, 0.5).describe()


class TestNextBitsBlock:
    """Blocked draws must consume the RNG stream exactly like per-cycle draws."""

    def test_block_matches_looped_draws(self):
        import numpy as np

        stimulus = BernoulliStimulus(7, 0.3)
        looped_rng = np.random.default_rng(11)
        blocked_rng = np.random.default_rng(11)
        looped = np.stack([stimulus.next_bits(looped_rng, 96) for _ in range(5)])
        blocked = stimulus.next_bits_block(blocked_rng, 96, 5)
        assert np.array_equal(looped, blocked)
        # The streams stay aligned afterwards too.
        assert np.array_equal(
            stimulus.next_bits(looped_rng, 96), stimulus.next_bits(blocked_rng, 96)
        )

    def test_default_block_implementation_for_stateful_stimuli(self):
        import numpy as np

        from repro.stimulus.correlated_inputs import LagOneMarkovStimulus

        looped = LagOneMarkovStimulus(5, 0.5, 0.8)
        blocked = LagOneMarkovStimulus(5, 0.5, 0.8)
        looped_rng = np.random.default_rng(3)
        blocked_rng = np.random.default_rng(3)
        expected = np.stack([looped.next_bits(looped_rng, 32) for _ in range(6)])
        assert np.array_equal(expected, blocked.next_bits_block(blocked_rng, 32, 6))

    def test_block_edge_cases(self):
        import numpy as np

        stimulus = BernoulliStimulus(3, 0.5)
        rng = np.random.default_rng(0)
        assert stimulus.next_bits_block(rng, 8, 0).shape == (0, 3, 8)
        empty = BernoulliStimulus(0, 0.5)
        assert empty.next_bits_block(rng, 8, 4).shape == (4, 0, 8)
        with pytest.raises(ValueError):
            stimulus.next_bits_block(rng, 8, -1)
