"""Unit tests for the ISCAS89 .bench parser and writer."""

import pytest

from repro.circuits.library import S27_BENCH
from repro.netlist.bench import (
    BenchParseError,
    parse_bench,
    parse_bench_file,
    parse_bench_lines,
    write_bench,
    write_bench_file,
)
from repro.netlist.cell_library import GateType


class TestParse:
    def test_parse_s27(self):
        netlist = parse_bench(S27_BENCH, name="s27")
        assert netlist.num_inputs == 4
        assert netlist.num_outputs == 1
        assert netlist.num_latches == 3
        assert netlist.num_gates == 10

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        INPUT(a)   # trailing comment
        OUTPUT(y)

        y = NOT(a)
        """
        netlist = parse_bench(text)
        assert netlist.num_gates == 1
        assert netlist.gates[0].gate_type is GateType.NOT

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(y)\ny = nand(a, a2)\ninput(a2)\n"
        netlist = parse_bench(text)
        assert netlist.num_inputs == 2
        assert netlist.gates[0].gate_type is GateType.NAND

    def test_dff_parsed_as_latch(self):
        text = "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n"
        netlist = parse_bench(text)
        assert netlist.num_latches == 1
        assert netlist.latches[0].data == "d"

    def test_dff_with_two_inputs_rejected(self):
        with pytest.raises(BenchParseError, match="exactly one data input"):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")

    def test_unknown_function_reports_line_number(self):
        with pytest.raises(BenchParseError) as excinfo:
            parse_bench("INPUT(a)\ny = MAJORITY(a, a, a)\n")
        assert excinfo.value.line_number == 2

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("this is not bench\n")

    def test_parse_lines_helper(self):
        netlist = parse_bench_lines(["INPUT(a)", "OUTPUT(y)", "y = BUFF(a)"])
        assert netlist.num_gates == 1


class TestWrite:
    def test_round_trip_preserves_structure(self, s27_netlist):
        text = write_bench(s27_netlist)
        reparsed = parse_bench(text, name="s27")
        assert reparsed.primary_inputs == s27_netlist.primary_inputs
        assert reparsed.primary_outputs == s27_netlist.primary_outputs
        assert [(latch.output, latch.data) for latch in reparsed.latches] == [
            (latch.output, latch.data) for latch in s27_netlist.latches
        ]
        assert [(gate.output, gate.gate_type, gate.inputs) for gate in reparsed.gates] == [
            (gate.output, gate.gate_type, gate.inputs) for gate in s27_netlist.gates
        ]

    def test_file_round_trip(self, s27_netlist, tmp_path):
        path = write_bench_file(s27_netlist, tmp_path / "s27.bench")
        reparsed = parse_bench_file(path)
        assert reparsed.name == "s27"
        assert reparsed.num_gates == s27_netlist.num_gates

    def test_written_text_contains_counts_comment(self, s27_netlist):
        text = write_bench(s27_netlist)
        assert "4 inputs" in text
        assert "3 D flip-flops" in text
