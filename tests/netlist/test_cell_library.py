"""Unit tests for the primitive gate library."""

import pytest

from repro.netlist.cell_library import (
    GATE_ARITY,
    GateType,
    check_arity,
    evaluate_gate,
    evaluate_gate_bitparallel,
    gate_type_from_name,
)


class TestGateTypeFromName:
    def test_all_canonical_names_resolve(self):
        for gate_type in GateType:
            assert gate_type_from_name(gate_type.value) is gate_type

    def test_names_are_case_insensitive(self):
        assert gate_type_from_name("nand") is GateType.NAND
        assert gate_type_from_name("Nor") is GateType.NOR

    def test_aliases(self):
        assert gate_type_from_name("INV") is GateType.NOT
        assert gate_type_from_name("BUF") is GateType.BUFF

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown gate function"):
            gate_type_from_name("MUX")


class TestArity:
    def test_not_requires_exactly_one_input(self):
        check_arity(GateType.NOT, 1)
        with pytest.raises(ValueError):
            check_arity(GateType.NOT, 2)

    def test_and_requires_at_least_one_input(self):
        check_arity(GateType.AND, 1)
        check_arity(GateType.AND, 5)
        with pytest.raises(ValueError):
            check_arity(GateType.AND, 0)

    def test_constants_take_no_inputs(self):
        check_arity(GateType.CONST0, 0)
        with pytest.raises(ValueError):
            check_arity(GateType.CONST1, 1)

    def test_arity_table_covers_every_type(self):
        assert set(GATE_ARITY) == set(GateType)


class TestScalarEvaluation:
    @pytest.mark.parametrize(
        "gate_type, inputs, expected",
        [
            (GateType.AND, (1, 1), 1),
            (GateType.AND, (1, 0), 0),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.XOR, (1, 0), 1),
            (GateType.XOR, (1, 1), 0),
            (GateType.XNOR, (1, 1), 1),
            (GateType.XNOR, (0, 1), 0),
            (GateType.NOT, (1,), 0),
            (GateType.NOT, (0,), 1),
            (GateType.BUFF, (1,), 1),
            (GateType.BUFF, (0,), 0),
        ],
    )
    def test_two_input_truth_tables(self, gate_type, inputs, expected):
        assert evaluate_gate(gate_type, inputs) == expected

    def test_three_input_gates(self):
        assert evaluate_gate(GateType.AND, (1, 1, 1)) == 1
        assert evaluate_gate(GateType.AND, (1, 1, 0)) == 0
        assert evaluate_gate(GateType.OR, (0, 0, 0)) == 0
        assert evaluate_gate(GateType.XOR, (1, 1, 1)) == 1
        assert evaluate_gate(GateType.NAND, (1, 1, 1)) == 0

    def test_constants(self):
        assert evaluate_gate(GateType.CONST0, ()) == 0
        assert evaluate_gate(GateType.CONST1, ()) == 1

    def test_missing_inputs_raise(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, ())


class TestBitParallelEvaluation:
    def test_matches_scalar_on_every_lane(self):
        mask = (1 << 8) - 1
        a = 0b10110010
        b = 0b01110101
        for gate_type in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            packed = evaluate_gate_bitparallel(gate_type, (a, b), mask)
            for lane in range(8):
                bits = ((a >> lane) & 1, (b >> lane) & 1)
                assert (packed >> lane) & 1 == evaluate_gate(gate_type, bits)

    def test_not_respects_mask(self):
        mask = (1 << 4) - 1
        assert evaluate_gate_bitparallel(GateType.NOT, (0b0101,), mask) == 0b1010

    def test_result_never_exceeds_mask(self):
        mask = (1 << 6) - 1
        for gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
            inputs = (0b101010,) if GATE_ARITY[gate_type] == 1 else (0b101010, 0b010101)
            assert evaluate_gate_bitparallel(gate_type, inputs, mask) <= mask

    def test_const1_returns_full_mask(self):
        mask = (1 << 16) - 1
        assert evaluate_gate_bitparallel(GateType.CONST1, (), mask) == mask
