"""Unit tests for the netlist data model."""

import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Gate, Latch, Netlist, NetlistError


class TestGateAndLatch:
    def test_gate_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate(output="y", gate_type=GateType.NOT, inputs=("a", "b"))

    def test_gate_rejects_self_loop(self):
        with pytest.raises(NetlistError):
            Gate(output="y", gate_type=GateType.AND, inputs=("y", "a"))

    def test_latch_rejects_bad_init_value(self):
        with pytest.raises(NetlistError):
            Latch(output="q", data="d", init_value=2)


class TestNetlistBuild:
    def test_duplicate_input_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_input("a")

    def test_duplicate_output_rejected(self):
        netlist = Netlist()
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.add_output("y")

    def test_counts(self, s27_netlist):
        assert s27_netlist.num_inputs == 4
        assert s27_netlist.num_outputs == 1
        assert s27_netlist.num_latches == 3
        assert s27_netlist.num_gates == 10

    def test_state_space_size(self, s27_netlist):
        assert s27_netlist.state_space_size() == 8


class TestNetlistQueries:
    def test_driver_map_contains_every_driven_net(self, s27_netlist):
        drivers = s27_netlist.driver_map()
        assert drivers["G0"] == "input"
        assert isinstance(drivers["G5"], Latch)
        assert isinstance(drivers["G11"], Gate)

    def test_multiple_drivers_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("y", GateType.BUFF, ["a"])
        netlist.add_gate("y", GateType.NOT, ["a"])
        with pytest.raises(NetlistError, match="multiple drivers"):
            netlist.driver_map()

    def test_all_nets_has_no_duplicates(self, s27_netlist):
        nets = s27_netlist.all_nets()
        assert len(nets) == len(set(nets))
        assert "G17" in nets and "G0" in nets

    def test_fanout_map(self, s27_netlist):
        fanout = s27_netlist.fanout_map()
        # G11 feeds G17 (NOT), G10 (NOR) and the latch G6.
        assert set(fanout["G11"]) == {"G17", "G10", "G6"}
        # The primary output G17 has the PO pseudo-sink.
        assert "PO:G17" in fanout["G17"]

    def test_undriven_nets_empty_for_complete_circuit(self, s27_netlist):
        assert s27_netlist.undriven_nets() == []

    def test_undriven_net_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("y", GateType.AND, ["a", "ghost"])
        assert "ghost" in netlist.undriven_nets()

    def test_iteration_yields_gates(self, s27_netlist):
        assert list(s27_netlist) == s27_netlist.gates
