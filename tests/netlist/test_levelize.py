"""Unit tests for levelization and logic depth."""

import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.levelize import gate_levels, levelize, logic_depth
from repro.netlist.netlist import Netlist, NetlistError


def _chain(length: int) -> Netlist:
    netlist = Netlist(name="chain")
    netlist.add_input("a")
    netlist.add_output(f"n{length - 1}")
    previous = "a"
    for index in range(length):
        netlist.add_gate(f"n{index}", GateType.NOT, [previous])
        previous = f"n{index}"
    return netlist


class TestLevelize:
    def test_topological_order_respects_dependencies(self, s27_netlist):
        order = levelize(s27_netlist)
        position = {gate.output: index for index, gate in enumerate(order)}
        gate_outputs = set(position)
        for gate in order:
            for src in gate.inputs:
                if src in gate_outputs:
                    assert position[src] < position[gate.output]

    def test_all_gates_present_exactly_once(self, s27_netlist):
        order = levelize(s27_netlist)
        assert sorted(g.output for g in order) == sorted(g.output for g in s27_netlist.gates)

    def test_combinational_cycle_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("x", GateType.AND, ["a", "y"])
        netlist.add_gate("y", GateType.OR, ["x", "a"])
        with pytest.raises(NetlistError, match="cycle"):
            levelize(netlist)

    def test_feedback_through_latch_is_not_a_cycle(self, s27_netlist):
        # s27 has feedback, but only through its flip-flops.
        levelize(s27_netlist)


class TestDepth:
    def test_chain_depth(self):
        assert logic_depth(_chain(7)) == 7

    def test_latch_outputs_are_level_zero(self, s27_netlist):
        levels = gate_levels(s27_netlist)
        for latch in s27_netlist.latches:
            assert levels[latch.output] == 0

    def test_depth_of_gateless_circuit_is_zero(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("a")
        assert logic_depth(netlist) == 0

    def test_every_gate_one_above_deepest_fanin(self, s27_netlist):
        levels = gate_levels(s27_netlist)
        for gate in s27_netlist.gates:
            fanin_level = max(levels[src] for src in gate.inputs)
            assert levels[gate.output] == fanin_level + 1
