"""Unit tests for structural netlist validation."""

import pytest

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.validate import assert_valid, validate_netlist


def _codes(issues):
    return {issue.code for issue in issues}


class TestValidate:
    def test_s27_is_clean(self, s27_netlist):
        errors = [i for i in validate_netlist(s27_netlist) if i.severity == "error"]
        assert errors == []

    def test_undriven_net_is_error(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.AND, ["a", "ghost"])
        assert "undriven-net" in _codes(validate_netlist(netlist))

    def test_undriven_output_is_error(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("nowhere")
        assert "undriven-output" in _codes(validate_netlist(netlist))

    def test_multiple_drivers_is_error(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("y", GateType.BUFF, ["a"])
        netlist.add_gate("y", GateType.NOT, ["a"])
        assert "multiple-drivers" in _codes(validate_netlist(netlist))

    def test_combinational_cycle_is_error(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("x", GateType.AND, ["a", "y"])
        netlist.add_gate("y", GateType.OR, ["x", "a"])
        assert "combinational-cycle" in _codes(validate_netlist(netlist))

    def test_dangling_net_is_warning_only(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.NOT, ["a"])
        netlist.add_gate("unused", GateType.BUFF, ["a"])
        issues = validate_netlist(netlist)
        dangling = [i for i in issues if i.code == "dangling-net"]
        assert dangling and all(i.severity == "warning" for i in dangling)

    def test_combinational_only_circuit_warns(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.NOT, ["a"])
        assert "combinational-only" in _codes(validate_netlist(netlist))


class TestAssertValid:
    def test_passes_for_valid_circuit(self, s27_netlist):
        assert_valid(s27_netlist)

    def test_raises_with_details_for_invalid_circuit(self):
        netlist = Netlist(name="broken")
        netlist.add_input("a")
        netlist.add_output("y")
        netlist.add_gate("y", GateType.AND, ["a", "ghost"])
        with pytest.raises(NetlistError, match="broken"):
            assert_valid(netlist)
