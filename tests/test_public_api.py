"""Tests of the top-level public API surface."""


import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must keep working verbatim."""
        circuit = repro.build_circuit("s298")
        estimate = repro.estimate_average_power(
            circuit,
            config=repro.EstimationConfig(
                randomness_sequence_length=64,
                min_samples=64,
                check_interval=32,
                max_samples=2000,
                warmup_cycles=16,
            ),
            rng=1,
        )
        assert estimate.average_power_mw > 0
        assert estimate.independence_interval >= 0
        assert estimate.sample_size >= 64

    def test_bench_parser_reachable_from_top_level(self):
        netlist = repro.parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)\n")
        assert netlist.num_latches == 1
        assert "DFF" in repro.write_bench(netlist)

    def test_estimators_exported(self):
        assert repro.DipeEstimator is not None
        assert repro.ConsecutiveCycleEstimator is not None
        assert repro.FixedWarmupEstimator is not None

    def test_list_circuits_contains_paper_set(self):
        names = repro.list_circuits()
        for expected in ("s27", "s298", "s1494", "s15850"):
            assert expected in names
