"""Tests for the three ablation harnesses (quick configurations)."""

import pytest

from repro.core.config import EstimationConfig
from repro.experiments.ablation_baseline import format_baseline_ablation, run_baseline_ablation
from repro.experiments.ablation_seqlen import format_seqlen_ablation, run_seqlen_ablation
from repro.experiments.ablation_stopping import format_stopping_ablation, run_stopping_ablation


@pytest.fixture()
def quick_config():
    return EstimationConfig(
        randomness_sequence_length=96,
        min_samples=64,
        check_interval=32,
        max_samples=2000,
        warmup_cycles=16,
    )


class TestStoppingAblation:
    def test_every_pair_present(self, quick_config):
        result = run_stopping_ablation(
            circuit_names=("s27",),
            criteria=("order-statistic", "clt"),
            config=quick_config,
            reference_cycles=15_000,
            seed=1,
        )
        assert len(result.rows) == 2
        assert {row.criterion for row in result.rows} == {"order-statistic", "clt"}
        assert result.mean_sample_size("clt") > 0
        text = format_stopping_ablation(result)
        assert "Criterion" in text and "s27" in text

    def test_errors_are_moderate(self, quick_config):
        result = run_stopping_ablation(
            circuit_names=("s27",),
            criteria=("clt",),
            config=quick_config,
            reference_cycles=15_000,
            seed=2,
        )
        assert all(row.relative_error < 0.15 for row in result.rows)


class TestBaselineAblation:
    def test_rows_and_lookup(self, quick_config):
        result = run_baseline_ablation(
            circuit_names=("s27",),
            methods=("dipe", "consecutive-mc"),
            runs_per_method=3,
            config=quick_config,
            reference_cycles=20_000,
            seed=3,
        )
        assert len(result.rows) == 2
        row = result.row_for("s27", "dipe")
        assert row.runs == 3
        assert 0.0 <= row.empirical_coverage <= 1.0
        with pytest.raises(KeyError):
            result.row_for("s27", "unknown")
        assert "Coverage" in format_baseline_ablation(result)

    def test_invalid_run_count_rejected(self, quick_config):
        with pytest.raises(ValueError):
            run_baseline_ablation(runs_per_method=0, config=quick_config)

    def test_unknown_method_rejected(self, quick_config):
        with pytest.raises(ValueError):
            run_baseline_ablation(
                circuit_names=("s27",),
                methods=("quantum",),
                runs_per_method=1,
                config=quick_config,
                reference_cycles=5_000,
            )


class TestSequenceLengthAblation:
    def test_sweep_shape(self, quick_config):
        result = run_seqlen_ablation(
            circuit_names=("s27",),
            sequence_lengths=(64, 128),
            runs_per_setting=4,
            config=quick_config,
            seed=4,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.interval_min <= row.interval_avg <= row.interval_max
            assert 0.0 <= row.converged_fraction <= 1.0
            assert row.mean_selection_cycles >= row.sequence_length
        assert "Seq len" in format_seqlen_ablation(result)

    def test_invalid_run_count_rejected(self, quick_config):
        with pytest.raises(ValueError):
            run_seqlen_ablation(runs_per_setting=0, config=quick_config)
