"""Tests for the Table 2 experiment harness (quick configuration)."""

import pytest

from repro.core.config import EstimationConfig
from repro.experiments.table2 import format_table2, run_table2


@pytest.fixture(scope="module")
def quick_table2():
    config = EstimationConfig(
        randomness_sequence_length=128,
        min_samples=64,
        check_interval=32,
        max_samples=3000,
        warmup_cycles=32,
    )
    return run_table2(
        circuit_names=("s27", "s298"),
        runs_per_circuit=5,
        config=config,
        reference_cycles=20_000,
        seed=321,
    )


class TestRunTable2:
    def test_one_row_per_circuit(self, quick_table2):
        assert [row.circuit for row in quick_table2.rows] == ["s27", "s298"]

    def test_interval_statistics_consistent(self, quick_table2):
        for row in quick_table2.rows:
            assert row.interval_min <= row.interval_avg <= row.interval_max

    def test_average_deviation_small(self, quick_table2):
        """Paper's Table 2: average deviation around one percent."""
        for row in quick_table2.rows:
            assert row.deviation_avg_pct < 8.0

    def test_violation_percentage_bounded(self, quick_table2):
        for row in quick_table2.rows:
            assert 0.0 <= row.violation_pct <= 100.0

    def test_runs_recorded(self, quick_table2):
        assert quick_table2.runs_per_circuit == 5
        for row in quick_table2.rows:
            assert row.runs == 5

    def test_invalid_run_count_rejected(self):
        with pytest.raises(ValueError):
            run_table2(circuit_names=("s27",), runs_per_circuit=0)


class TestFormatTable2:
    def test_contains_paper_columns(self, quick_table2):
        text = format_table2(quick_table2)
        for column in ("II_min", "II_max", "II_avg", "S_avg", "D_avg (%)", "Err (%)"):
            assert column in text
