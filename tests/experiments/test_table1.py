"""Tests for the Table 1 experiment harness (quick configuration)."""

import pytest

from repro.core.config import EstimationConfig
from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def quick_table1():
    config = EstimationConfig(
        randomness_sequence_length=128,
        min_samples=64,
        check_interval=32,
        max_samples=4000,
        warmup_cycles=32,
    )
    return run_table1(
        circuit_names=("s27", "s298", "s386"),
        config=config,
        reference_cycles=20_000,
        seed=123,
    )


class TestRunTable1:
    def test_one_row_per_circuit(self, quick_table1):
        assert [row.circuit for row in quick_table1.rows] == ["s27", "s298", "s386"]

    def test_estimates_close_to_reference(self, quick_table1):
        """The paper's headline claim: every estimate is within the error spec."""
        for row in quick_table1.rows:
            assert row.relative_error < 0.10, row
            assert row.accuracy_met

    def test_independence_intervals_small(self, quick_table1):
        """Paper observation 2: a few clock cycles suffice for the runs test."""
        for row in quick_table1.rows:
            assert 0 <= row.independence_interval <= 12

    def test_sample_sizes_reasonable(self, quick_table1):
        """Sample sizes are hundreds-to-thousands, as in the paper's Table 1."""
        for row in quick_table1.rows:
            assert 32 <= row.sample_size <= 4000

    def test_summary_statistics(self, quick_table1):
        assert quick_table1.mean_relative_error() <= quick_table1.max_relative_error()

    def test_positive_power_values(self, quick_table1):
        for row in quick_table1.rows:
            assert row.reference_power_mw > 0
            assert row.estimate_mw > 0


class TestFormatTable1:
    def test_contains_paper_columns(self, quick_table1):
        text = format_table1(quick_table1)
        for column in ("Circuit", "SIM (mW)", "I.I.", "Sample Size", "CPU (s)"):
            assert column in text

    def test_contains_every_circuit(self, quick_table1):
        text = format_table1(quick_table1)
        for row in quick_table1.rows:
            assert row.circuit in text
