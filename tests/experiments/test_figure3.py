"""Tests for the Figure 3 experiment harness (quick configuration)."""

import pytest

from repro.experiments.figure3 import format_figure3, run_figure3


@pytest.fixture(scope="module")
def quick_figure3():
    # The paper uses s1494 with a sequence of 10,000; a shorter sequence and a
    # smaller circuit keep the unit test fast while preserving the shape.
    return run_figure3(
        circuit_name="s298",
        max_interval=8,
        sequence_length=1500,
        significance_level=0.20,
        seed=99,
    )


class TestRunFigure3:
    def test_point_per_interval(self, quick_figure3):
        assert [p.interval for p in quick_figure3.points] == list(range(9))

    def test_z_values_non_negative(self, quick_figure3):
        assert all(p.z_statistic >= 0.0 for p in quick_figure3.points)

    def test_decay_shape(self, quick_figure3):
        """The paper's Figure 3 shape: large |z| at interval 0, small at the tail."""
        z_values = [p.z_statistic for p in quick_figure3.points]
        assert z_values[0] > quick_figure3.acceptance_threshold
        assert min(z_values[2:]) < z_values[0]

    def test_some_interval_gets_accepted(self, quick_figure3):
        assert quick_figure3.first_accepted_interval() is not None

    def test_series_helper(self, quick_figure3):
        intervals, z_values = quick_figure3.series()
        assert len(intervals) == len(z_values) == 9

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            run_figure3(circuit_name="s298", max_interval=-1, sequence_length=100)


class TestFormatFigure3:
    def test_mentions_circuit_and_threshold(self, quick_figure3):
        text = format_figure3(quick_figure3)
        assert "s298" in text
        assert "threshold" in text

    def test_contains_ascii_plot(self, quick_figure3):
        assert "#" in format_figure3(quick_figure3)
