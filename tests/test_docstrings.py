"""Documentation enforcement: every module and public entry point is documented.

The docs/ tree links into docstrings as the source of truth for API details,
so a missing docstring is a broken promise, not a style nit.  Modules are
checked statically with :mod:`ast` (no imports needed); public objects are
checked on the import surfaces users actually reach for: the top-level
``repro`` package, ``repro.api``, and ``repro.service``.
"""

from __future__ import annotations

import ast
import inspect
import pathlib

import pytest

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

ALL_MODULES = sorted(SRC_ROOT.rglob("*.py"))


def _module_id(path):
    return str(path.relative_to(SRC_ROOT.parent))


class TestModuleDocstrings:
    def test_the_tree_was_found(self):
        assert len(ALL_MODULES) > 30  # guards against a silently-wrong SRC_ROOT

    @pytest.mark.parametrize("path", ALL_MODULES, ids=_module_id)
    def test_module_has_docstring(self, path):
        docstring = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
        assert docstring, f"{_module_id(path)} has no module docstring"
        assert len(docstring.split()) >= 3, f"{_module_id(path)} docstring is a stub"

    @pytest.mark.parametrize(
        "path",
        [p for p in ALL_MODULES if p.name == "__init__.py"],
        ids=_module_id,
    )
    def test_every_package_init_documents_the_package(self, path):
        docstring = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
        assert docstring and "\n" in docstring.strip(), (
            f"{_module_id(path)}: package docstrings must be more than one line —"
            " say what the package holds and how the pieces fit"
        )


def _public_objects(module):
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


class TestPublicApiDocstrings:
    @pytest.mark.parametrize("module_name", ["repro", "repro.api", "repro.service"])
    def test_every_public_export_is_documented(self, module_name):
        module = __import__(module_name, fromlist=["__all__"])
        undocumented = [
            name
            for name, obj in _public_objects(module)
            if not inspect.getdoc(obj)
        ]
        assert undocumented == [], (
            f"{module_name} exports without docstrings: {undocumented}"
        )

    def test_service_entry_points_document_their_contract(self):
        from repro.service import EstimationService, ServiceClient, run_load_test
        from repro.service.server import ServiceServer

        for obj in (EstimationService, ServiceServer, ServiceClient, run_load_test):
            doc = inspect.getdoc(obj)
            assert doc and len(doc.splitlines()) >= 2, (
                f"{obj.__name__} needs a real docstring, not a one-liner"
            )

    def test_cli_documents_the_batch_exit_code_contract(self):
        import repro.cli

        doc = repro.cli.__doc__
        assert "exit" in doc.lower() and "batch" in doc, (
            "repro.cli must document the batch exit-code contract"
        )
