"""Unit tests for the lane-coupled variance-reduction stimuli."""

import numpy as np
import pytest

from repro.api.registry import get_stimulus
from repro.variance import AntitheticStimulus, SobolStimulus, StratifiedStimulus

ALL_KINDS = [AntitheticStimulus, StratifiedStimulus, SobolStimulus]


def _toggle_stream(stimulus, rng, width, cycles):
    """Toggle matrices between consecutive patterns (cycles-1 entries)."""
    patterns = [stimulus.next_bits(rng, width).copy() for _ in range(cycles)]
    return [a ^ b for a, b in zip(patterns, patterns[1:])]


@pytest.mark.parametrize("cls", ALL_KINDS)
class TestCommonBehaviour:
    def test_rejects_unbalanced_probability(self, cls):
        with pytest.raises(ValueError, match="probability=0.5"):
            cls(4, probability=0.3)

    def test_marks_lanes_dependent(self, cls):
        assert cls(4).lanes_dependent is True

    def test_registered_in_the_stimulus_registry(self, cls):
        name = {
            AntitheticStimulus: "antithetic",
            StratifiedStimulus: "stratified",
            SobolStimulus: "sobol",
        }[cls]
        assert get_stimulus(name) is cls

    def test_shapes_and_dtype(self, cls):
        stim = cls(5)
        rng = np.random.default_rng(0)
        bits = stim.next_bits(rng, width=8)
        assert bits.shape == (5, 8)
        assert bits.dtype == np.uint8
        assert set(np.unique(bits)) <= {0, 1}

    def test_zero_inputs(self, cls):
        stim = cls(0)
        rng = np.random.default_rng(0)
        assert stim.next_bits(rng, width=4).shape == (0, 4)

    def test_reset_restarts_the_stream(self, cls):
        stim = cls(4)
        rng = np.random.default_rng(3)
        first = [stim.next_bits(rng, 8).copy() for _ in range(6)]
        stim.reset()
        rng = np.random.default_rng(3)
        again = [stim.next_bits(rng, 8).copy() for _ in range(6)]
        for a, b in zip(first, again):
            np.testing.assert_array_equal(a, b)

    def test_state_roundtrip_continues_bit_identically(self, cls):
        stim = cls(4)
        rng = np.random.default_rng(11)
        for _ in range(5):
            stim.next_bits(rng, 8)
        state = stim.get_state()
        rng_state = rng.bit_generator.state

        continued = [stim.next_bits(rng, 8).copy() for _ in range(5)]

        clone = cls(4)
        clone.set_state(state)
        rng2 = np.random.default_rng(0)
        rng2.bit_generator.state = rng_state
        resumed = [clone.next_bits(rng2, 8).copy() for _ in range(5)]
        for a, b in zip(continued, resumed):
            np.testing.assert_array_equal(a, b)

    def test_fresh_state_is_restorable(self, cls):
        stim = cls(4)
        clone = cls(4)
        clone.set_state(stim.get_state())
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        np.testing.assert_array_equal(stim.next_bits(rng1, 4), clone.next_bits(rng2, 4))

    def test_each_lane_is_marginally_balanced(self, cls):
        # Every lane's level stream must look exactly like Bernoulli(0.5):
        # check the per-lane level mean over many cycles.
        stim = cls(3)
        rng = np.random.default_rng(42)
        levels = np.stack([stim.next_bits(rng, 8).copy() for _ in range(4000)])
        lane_means = levels.mean(axis=0)
        assert np.abs(lane_means - 0.5).max() < 0.05


class TestAntithetic:
    def test_odd_width_is_rejected(self):
        stim = AntitheticStimulus(3)
        with pytest.raises(ValueError, match="even"):
            stim.next_bits(np.random.default_rng(0), width=5)

    def test_adjacent_lanes_toggle_complementarily(self):
        stim = AntitheticStimulus(4)
        rng = np.random.default_rng(1)
        for toggles in _toggle_stream(stim, rng, width=8, cycles=10):
            np.testing.assert_array_equal(toggles[:, 0::2] ^ toggles[:, 1::2], 1)


class TestStratified:
    def test_every_input_toggles_exactly_half_the_lanes(self):
        stim = StratifiedStimulus(5)
        rng = np.random.default_rng(2)
        for toggles in _toggle_stream(stim, rng, width=16, cycles=10):
            assert (toggles.sum(axis=1) == 8).all()

    def test_width_one_degrades_to_plain_toggles(self):
        stim = StratifiedStimulus(3)
        rng = np.random.default_rng(4)
        bits = [stim.next_bits(rng, 1).copy() for _ in range(50)]
        assert all(b.shape == (3, 1) for b in bits)


class TestSobol:
    def test_every_input_toggles_exactly_half_the_lanes(self):
        # Aligned 2^k Sobol blocks are balanced per coordinate; the digital
        # flip complements whole columns, keeping the count at width/2.
        stim = SobolStimulus(6)
        rng = np.random.default_rng(5)
        for toggles in _toggle_stream(stim, rng, width=64, cycles=8):
            assert (toggles.sum(axis=1) == 32).all()

    def test_state_carries_the_sequence_index(self):
        stim = SobolStimulus(4)
        rng = np.random.default_rng(6)
        for _ in range(5):
            stim.next_bits(rng, 8)
        state = stim.get_state()
        assert state["index"] == 4 * 8  # first call draws levels, 4 consume points
        assert state["levels"].shape == (4, 8)

    def test_reset_rewinds_the_sequence(self):
        stim = SobolStimulus(4)
        rng = np.random.default_rng(7)
        for _ in range(3):
            stim.next_bits(rng, 8)
        stim.reset()
        assert stim.get_state() == {"levels": None, "index": 0}
