"""Unit tests for the self-contained Sobol machinery."""

import numpy as np
import pytest

from repro.variance.sobol import SobolSequence, direction_numbers, primitive_polynomials


class TestPrimitivePolynomials:
    def test_first_polynomials_match_the_classical_table(self):
        # x+1; x^2+x+1; x^3+x+1; x^3+x^2+1 (degree, tail bit-encoding).
        assert primitive_polynomials(4) == ((1, 1), (2, 3), (3, 3), (3, 5))

    def test_count_zero_and_validation(self):
        assert primitive_polynomials(0) == ()
        with pytest.raises(ValueError, match="non-negative"):
            primitive_polynomials(-1)

    def test_enough_dimensions_for_large_input_counts(self):
        polys = primitive_polynomials(64)
        assert len(polys) == 64
        degrees = [deg for deg, _ in polys]
        assert degrees == sorted(degrees)


class TestDirectionNumbers:
    def test_coordinate_zero_is_van_der_corput(self):
        table = direction_numbers(1, bits=8)
        assert table.shape == (1, 8)
        assert [int(v) for v in table[0]] == [1 << (7 - j) for j in range(8)]

    def test_all_directions_have_leading_bit_in_range(self):
        bits = 16
        table = direction_numbers(8, bits=bits)
        assert table.dtype == np.uint64
        # m_j is odd and < 2^(j+1), so direction j always has its top bit at
        # position bits-1-j and no bits below bits-1-j... i.e. every
        # direction is non-zero and fits in `bits` bits.
        assert (table > 0).all()
        assert (table < (1 << bits)).all()

    def test_table_is_cached_and_read_only(self):
        table = direction_numbers(4)
        assert direction_numbers(4) is table
        with pytest.raises(ValueError):
            table[0, 0] = 0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            direction_numbers(0)
        with pytest.raises(ValueError, match="bits"):
            direction_numbers(2, bits=63)


class TestSobolSequence:
    def test_aligned_blocks_are_balanced_in_every_coordinate(self):
        seq = SobolSequence(dim=7)
        for block_size in (64, 64, 128):
            top = seq.next_top_bits(block_size)
            assert top.shape == (block_size, 7)
            # Each coordinate of an aligned 2^k block hits the upper half of
            # its axis exactly half the time — the net's defining balance.
            assert (top.sum(axis=0) == block_size // 2).all()

    def test_gray_code_emits_the_natural_block_as_a_set(self):
        seq = SobolSequence(dim=3, bits=8)
        block = seq.next_block(16)
        # Coordinate 0 is van der Corput: the 16 points cover all 16
        # multiples of 2^4 exactly once (gray code permutes the block).
        assert sorted(int(v) >> 4 for v in block[:, 0]) == list(range(16))

    def test_index_is_the_only_state(self):
        first = SobolSequence(dim=4)
        head = first.next_block(10)
        tail_direct = first.next_block(10)
        resumed = SobolSequence(dim=4, index=10)
        np.testing.assert_array_equal(resumed.next_block(10), tail_direct)
        restart = SobolSequence(dim=4)
        np.testing.assert_array_equal(restart.next_block(10), head)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            SobolSequence(dim=2, index=-1)
        seq = SobolSequence(dim=2)
        with pytest.raises(ValueError, match="non-negative"):
            seq.next_block(-1)
        assert seq.next_block(0).shape == (0, 2)
