"""Unit tests for the paired/grouped moment accumulators."""

import numpy as np
import pytest

from repro.variance import PairedMeanAccumulator


class TestPairedMeanAccumulator:
    def test_group_width_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            PairedMeanAccumulator(0)

    def test_empty_accumulator(self):
        acc = PairedMeanAccumulator(4)
        assert acc.count == 0
        assert acc.num_groups == 0
        assert acc.mean == 0.0
        assert acc.per_sample_variance is None
        assert acc.group_mean_variance is None
        assert acc.effective_sample_size is None

    def test_moments_match_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=240)
        acc = PairedMeanAccumulator(8)
        acc.extend(data)
        assert acc.count == 240
        assert acc.num_groups == 30
        assert acc.mean == pytest.approx(data.mean())
        assert acc.per_sample_variance == pytest.approx(data.var(ddof=1))
        group_means = data.reshape(30, 8).mean(axis=1)
        assert acc.group_mean_variance == pytest.approx(group_means.var(ddof=1))

    def test_chunked_feeding_is_equivalent(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=200)
        whole = PairedMeanAccumulator(8)
        whole.extend(data)
        chunked = PairedMeanAccumulator(8)
        for start in range(0, 200, 7):  # chunk size coprime to the group width
            chunked.extend(data[start : start + 7])
        assert chunked.count == whole.count
        assert chunked.num_groups == whole.num_groups
        assert chunked.group_mean_variance == pytest.approx(whole.group_mean_variance)
        assert chunked.effective_sample_size == pytest.approx(whole.effective_sample_size)

    def test_partial_trailing_group_is_buffered(self):
        acc = PairedMeanAccumulator(4)
        acc.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert acc.count == 6
        assert acc.num_groups == 1
        acc.extend([7.0, 8.0])
        assert acc.num_groups == 2

    def test_iid_data_has_ess_near_count(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=6400)
        acc = PairedMeanAccumulator(8)
        acc.extend(data)
        assert acc.effective_sample_size == pytest.approx(6400, rel=0.25)

    def test_negative_coupling_raises_ess_above_count(self):
        # Pairs (x, -x + noise): group means have far lower variance than
        # independent samples, so the coupled draws are worth more each.
        rng = np.random.default_rng(3)
        x = rng.normal(size=2000)
        noise = 0.1 * rng.normal(size=2000)
        data = np.stack([x, -x + noise], axis=1).reshape(-1)
        acc = PairedMeanAccumulator(2)
        acc.extend(data)
        assert acc.effective_sample_size > 10 * acc.count

    def test_degenerate_constant_sample_gives_none(self):
        acc = PairedMeanAccumulator(2)
        acc.extend([1.0] * 20)
        assert acc.effective_sample_size is None

    def test_group_width_one_matches_raw_count(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=500)
        acc = PairedMeanAccumulator(1)
        acc.extend(data)
        assert acc.num_groups == acc.count == 500
        assert acc.effective_sample_size == pytest.approx(500)
