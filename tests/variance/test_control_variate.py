"""Control-variate estimator: validation, estimation, checkpoints, gains."""

import dataclasses

import numpy as np
import pytest

from repro.api.events import EstimateCompleted, SampleProgress
from repro.api.registry import get_estimator
from repro.core.config import EstimationConfig
from repro.variance import ControlVariateEstimator


@pytest.fixture()
def cv_config():
    return EstimationConfig(
        power_simulator="event-driven",
        num_chains=16,
        randomness_sequence_length=32,
        max_independence_interval=4,
        min_samples=64,
        check_interval=32,
        max_samples=4000,
        warmup_cycles=8,
    )


class TestValidation:
    def test_registered_with_alias(self):
        assert get_estimator("control-variate") is ControlVariateEstimator
        assert get_estimator("cv") is ControlVariateEstimator

    def test_rejects_zero_delay(self, s27_circuit):
        with pytest.raises(ValueError, match="zero-delay"):
            ControlVariateEstimator(s27_circuit, config=EstimationConfig())

    def test_rejects_workers(self, s27_circuit, cv_config):
        config = dataclasses.replace(cv_config, num_workers=2)
        with pytest.raises(ValueError, match="num_workers"):
            ControlVariateEstimator(s27_circuit, config=config)

    def test_rejects_adaptive_chains(self, s27_circuit, cv_config):
        config = dataclasses.replace(cv_config, adaptive_chains=True)
        with pytest.raises(ValueError, match="adaptive_chains"):
            ControlVariateEstimator(s27_circuit, config=config)

    def test_rejects_tiny_cheap_window(self, s27_circuit, cv_config):
        with pytest.raises(ValueError, match="cheap_cycles"):
            ControlVariateEstimator(s27_circuit, config=cv_config, cheap_cycles=1)


class TestEstimation:
    def test_runs_to_completion_with_diagnostics(self, s27_circuit, cv_config):
        estimator = ControlVariateEstimator(s27_circuit, config=cv_config, rng=5)
        events = list(estimator.run())
        assert isinstance(events[-1], EstimateCompleted)
        result = events[-1].estimate
        assert result.method == "control-variate"
        assert result.average_power_w > 0
        assert result.sample_size % cv_config.num_chains == 0
        assert result.effective_sample_size is not None
        assert result.effective_sample_size > 0
        # z values are sweep-level: one per measured sweep.
        assert len(result.samples_switched_capacitance_f) == (
            result.sample_size // cv_config.num_chains
        )
        progress = [e for e in events if isinstance(e, SampleProgress)]
        assert progress
        assert all(e.effective_sample_size is not None for e in progress[1:])

    def test_estimate_matches_event_driven_dipe_statistically(
        self, s27_circuit, cv_config
    ):
        # The control variate must not shift the estimand: compare against
        # the plain event-driven DIPE estimate within the combined CIs.
        from repro.core.dipe import DipeEstimator

        cv = ControlVariateEstimator(s27_circuit, config=cv_config, rng=10).estimate()
        plain = DipeEstimator(s27_circuit, config=cv_config, rng=11).estimate()
        spread = (cv.upper_bound_w - cv.lower_bound_w) + (
            plain.upper_bound_w - plain.lower_bound_w
        )
        assert abs(cv.average_power_w - plain.average_power_w) <= spread

    def test_reproducible_from_seed(self, s27_circuit, cv_config):
        first = ControlVariateEstimator(s27_circuit, config=cv_config, rng=3).estimate()
        second = ControlVariateEstimator(s27_circuit, config=cv_config, rng=3).estimate()
        assert first.average_power_w == second.average_power_w
        assert first.samples_switched_capacitance_f == second.samples_switched_capacitance_f


class TestCheckpointResume:
    def test_resumed_run_identical(self, s27_circuit, cv_config):
        full = ControlVariateEstimator(s27_circuit, config=cv_config, rng=42).estimate()

        estimator = ControlVariateEstimator(s27_circuit, config=cv_config, rng=42)
        stream = estimator.run()
        checkpoint = None
        for event in stream:
            if isinstance(event, SampleProgress):
                checkpoint = estimator.make_checkpoint()
                stream.close()
                break
        assert checkpoint is not None
        assert len(checkpoint.samples) % 3 == 0

        resumed = ControlVariateEstimator(s27_circuit, config=cv_config, rng=0)
        result = resumed.estimate_from(checkpoint)
        assert result.average_power_w == full.average_power_w
        assert result.sample_size == full.sample_size
        assert result.samples_switched_capacitance_f == full.samples_switched_capacitance_f

    def test_rejects_non_triple_checkpoints(self, s27_circuit, cv_config):
        from repro.api.checkpoint import RunCheckpoint
        from repro.core.results import IntervalSelectionResult

        estimator = ControlVariateEstimator(s27_circuit, config=cv_config, rng=1)
        bogus = RunCheckpoint(
            method="control-variate",
            circuit_name=s27_circuit.name,
            samples=(1.0, 2.0),
            interval_selection=IntervalSelectionResult(
                interval=1,
                converged=True,
                trials=(),
                significance_level=0.2,
                cycles_simulated=0,
            ),
            sampler_state=estimator.sampler.get_state(),
        )
        with pytest.raises(ValueError, match="multiple of 3"):
            list(estimator.run(resume_from=bogus))


class TestVarianceReduction:
    def test_adjusted_sweeps_beat_raw_sweeps(self, s27_circuit, cv_config):
        # The online-regressed z sequence must have materially lower variance
        # than the raw sweep means on a glitchy circuit.
        estimator = ControlVariateEstimator(s27_circuit, config=cv_config, rng=8)
        triples = []
        estimator.sampler.prepare(8)
        for _ in range(120):
            samples, controls, cheap = estimator.sampler.next_samples_with_control(2, 8)
            triples.extend((float(samples.mean()), float(controls.mean()), cheap))
        z, ess = estimator._control_adjusted(triples)
        arr = np.asarray(triples).reshape(-1, 3)
        assert z.var(ddof=1) < arr[:, 0].var(ddof=1)
        assert ess > 120 * cv_config.num_chains
