"""Variance stimuli through the full stack: DIPE, sharding, checkpoints."""

import dataclasses

import numpy as np
import pytest

from repro.api.events import SampleProgress
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sharded_sampler import ShardedPowerSampler
from repro.stats.stopping import GroupedStoppingCriterion
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.variance import AntitheticStimulus, SobolStimulus, StratifiedStimulus

STIMULI = {
    "antithetic": AntitheticStimulus,
    "stratified": StratifiedStimulus,
    "sobol": SobolStimulus,
}


@pytest.fixture()
def coupled_config():
    return EstimationConfig(
        num_chains=32,
        randomness_sequence_length=32,
        max_independence_interval=4,
        min_samples=64,
        check_interval=64,
        max_samples=6000,
        warmup_cycles=8,
    )


class TestGroupedStoppingWiring:
    def test_coupled_stimulus_gets_grouped_criterion(self, s27_circuit, coupled_config):
        estimator = DipeEstimator(
            s27_circuit,
            stimulus=SobolStimulus(s27_circuit.num_inputs),
            config=coupled_config,
        )
        assert isinstance(estimator.stopping_criterion, GroupedStoppingCriterion)
        assert estimator.sample_group_width == 32
        # The inner floor counts sweeps: ceil(64 / 32) = 2, raised to 16.
        assert estimator.stopping_criterion.inner.min_samples == 16

    def test_iid_stimulus_keeps_flat_criterion(self, s27_circuit, coupled_config):
        estimator = DipeEstimator(
            s27_circuit,
            stimulus=BernoulliStimulus(s27_circuit.num_inputs, 0.5),
            config=coupled_config,
        )
        assert not isinstance(estimator.stopping_criterion, GroupedStoppingCriterion)
        assert estimator.sample_group_width == 1

    def test_adaptive_chains_rejected_with_coupled_stimulus(
        self, s27_circuit, coupled_config
    ):
        config = dataclasses.replace(coupled_config, adaptive_chains=True, max_chains=64)
        with pytest.raises(ValueError, match="lanes_dependent"):
            DipeEstimator(
                s27_circuit,
                stimulus=SobolStimulus(s27_circuit.num_inputs),
                config=config,
            )


@pytest.mark.parametrize("kind", sorted(STIMULI))
class TestEndToEnd:
    def test_estimate_completes_and_reports_ess(self, s27_circuit, coupled_config, kind):
        estimator = DipeEstimator(
            s27_circuit,
            stimulus=STIMULI[kind](s27_circuit.num_inputs),
            config=coupled_config,
            rng=sum(map(ord, kind)),  # distinct deterministic seed per kind
        )
        events = list(estimator.run())
        result = events[-1].estimate
        assert result.average_power_w > 0
        assert result.stopping_criterion == "grouped-order-statistic"
        assert result.effective_sample_size is not None
        assert result.effective_sample_size > 0
        progress = [e for e in events if isinstance(e, SampleProgress)]
        assert progress
        assert all(e.effective_sample_size is not None for e in progress[1:])

    def test_estimate_agrees_with_iid_reference(self, s27_circuit, coupled_config, kind):
        coupled = DipeEstimator(
            s27_circuit,
            stimulus=STIMULI[kind](s27_circuit.num_inputs),
            config=coupled_config,
            rng=17,
        ).estimate()
        reference = DipeEstimator(
            s27_circuit,
            stimulus=BernoulliStimulus(s27_circuit.num_inputs, 0.5),
            config=coupled_config,
            rng=18,
        ).estimate()
        spread = (coupled.upper_bound_w - coupled.lower_bound_w) + (
            reference.upper_bound_w - reference.lower_bound_w
        )
        assert abs(coupled.average_power_w - reference.average_power_w) <= spread

    def test_checkpoint_resume_identical(self, s27_circuit, coupled_config, kind):
        def build():
            return DipeEstimator(
                s27_circuit,
                stimulus=STIMULI[kind](s27_circuit.num_inputs),
                config=coupled_config,
                rng=9,
            )

        full = build().estimate()
        estimator = build()
        stream = estimator.run()
        checkpoint = None
        for event in stream:
            if isinstance(event, SampleProgress):
                checkpoint = estimator.make_checkpoint()
                stream.close()
                break
        assert checkpoint is not None
        resumed = build().estimate_from(checkpoint)
        assert resumed.average_power_w == full.average_power_w
        assert resumed.samples_switched_capacitance_f == full.samples_switched_capacitance_f


@pytest.mark.parametrize("kind", sorted(STIMULI))
class TestShardedIdentity:
    def test_sharded_draws_bit_identical(self, s298_circuit, kind):
        # 128 chains = 2 uint64 words; word-aligned partitioning never splits
        # antithetic pairs, and the parent owns stimulus + RNG, so stateful
        # coupled stimuli must shard transparently.
        config = EstimationConfig(warmup_cycles=8)
        reference = BatchPowerSampler(
            s298_circuit,
            STIMULI[kind](s298_circuit.num_inputs),
            config,
            rng=7,
            num_chains=128,
        )
        sharded = ShardedPowerSampler(
            s298_circuit,
            STIMULI[kind](s298_circuit.num_inputs),
            config,
            rng=7,
            num_chains=128,
            num_workers=2,
        )
        with sharded:
            assert np.array_equal(
                reference.sample_block(2, 256), sharded.sample_block(2, 256)
            )
            assert np.array_equal(reference.next_samples(1), sharded.next_samples(1))
            assert reference.cycles_simulated == sharded.cycles_simulated
