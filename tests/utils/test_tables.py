"""Unit tests for the text-table formatter."""

import pytest

from repro.utils.tables import TextTable, format_table


class TestTextTable:
    def test_alignment_and_content(self):
        table = TextTable(headers=["Circuit", "Power"], precision=2)
        table.add_row(["s27", 0.123456])
        table.add_row(["s15850", 5.9])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("Circuit")
        assert "0.12" in text
        assert "5.90" in text
        # All lines are padded to the same column starts.
        assert lines[2].index("0.12") == lines[3].index("5.90")

    def test_row_width_checked(self):
        table = TextTable(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_integers_not_reformatted(self):
        table = TextTable(headers=["n"], precision=3)
        table.add_row([42])
        assert "42" in table.render()
        assert "42.000" not in table.render()

    def test_format_table_helper(self):
        text = format_table(["x", "y"], [[1, 2.5], [3, 4.5]], precision=1)
        assert "2.5" in text and "4.5" in text

    def test_str_dunder(self):
        table = TextTable(headers=["only"])
        table.add_row(["value"])
        assert "value" in str(table)
