"""Unit tests for the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import child_rngs, spawn_rng


class TestSpawnRng:
    def test_none_gives_generator(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert spawn_rng(5).integers(0, 1000) == spawn_rng(5).integers(0, 1000)

    def test_generator_passed_through(self):
        generator = np.random.default_rng(0)
        assert spawn_rng(generator) is generator

    def test_invalid_source_rejected(self):
        with pytest.raises(TypeError):
            spawn_rng("seed")


class TestChildRngs:
    def test_count_and_independence(self):
        children = child_rngs(7, 4)
        assert len(children) == 4
        draws = [child.integers(0, 10**9) for child in children]
        assert len(set(draws)) == 4

    def test_deterministic_given_seed(self):
        first = [rng.integers(0, 10**9) for rng in child_rngs(3, 3)]
        second = [rng.integers(0, 10**9) for rng in child_rngs(3, 3)]
        assert first == second

    def test_zero_children_allowed(self):
        assert child_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            child_rngs(1, -1)
