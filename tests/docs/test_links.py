"""Documentation link checker: every relative link and anchor resolves.

Runs over ``README.md`` and every markdown file under ``docs/``.  External
(``http(s)://``) links are not fetched — the suite must pass offline — but
relative file targets must exist and ``#fragment`` anchors must match a
heading in the target document (GitHub slugification rules).  This is a
tier-1 test *and* the CI link-check step: documentation that rots fails the
build.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

#: ``[text](target)`` links, ignoring images; target captured up to ) or space.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)


def _doc_id(path):
    return str(path.relative_to(REPO_ROOT))


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks — their brackets/parens are not links."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, drop punctuation."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    heading = heading.lower().strip()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: pathlib.Path) -> set[str]:
    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    return {_github_slug(title) for _, title in _HEADING.findall(text)}


def _links(path: pathlib.Path) -> list[str]:
    return _LINK.findall(_strip_code_blocks(path.read_text(encoding="utf-8")))


class TestDocTree:
    def test_the_documented_tree_exists(self):
        names = {path.name for path in DOC_FILES}
        assert {"README.md", "architecture.md", "service.md", "api.md",
                "benchmarks.md"} <= names

    def test_readme_links_into_every_docs_page(self):
        readme_targets = {link.split("#")[0] for link in _links(REPO_ROOT / "README.md")}
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert f"docs/{page.name}" in readme_targets, (
                f"README.md does not link to docs/{page.name}"
            )


class TestLinks:
    @pytest.mark.parametrize("path", DOC_FILES, ids=_doc_id)
    def test_relative_links_resolve(self, path):
        broken = []
        for link in _links(path):
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = link.partition("#")
            resolved = (path.parent / target).resolve() if target else path
            if target and not resolved.exists():
                broken.append(f"{link}: file {target!r} does not exist")
                continue
            if fragment:
                if resolved.is_dir() or resolved.suffix != ".md":
                    broken.append(f"{link}: anchor on a non-markdown target")
                elif fragment not in _anchors(resolved):
                    broken.append(f"{link}: no heading slugifies to #{fragment}")
        assert broken == [], f"{_doc_id(path)} has broken links: {broken}"

    @pytest.mark.parametrize("path", DOC_FILES, ids=_doc_id)
    def test_no_absolute_filesystem_links(self, path):
        offenders = [link for link in _links(path) if link.startswith("/")]
        assert offenders == [], (
            f"{_doc_id(path)} uses absolute paths (break on GitHub): {offenders}"
        )
