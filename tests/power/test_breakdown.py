"""Unit tests for the per-net power breakdown."""

import pytest

from repro.power.breakdown import power_breakdown
from repro.power.reference import estimate_reference_power
from repro.simulation.activity import collect_activity
from repro.stimulus.random_inputs import BernoulliStimulus


class TestPowerBreakdown:
    def test_shares_sum_to_one(self, s27_circuit):
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=2000, rng=1
        )
        assert sum(net.share for net in breakdown.nets) == pytest.approx(1.0)
        assert breakdown.cumulative_share(len(breakdown.nets)) == pytest.approx(1.0)

    def test_nets_sorted_by_power(self, s27_circuit):
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=1000, rng=2
        )
        powers = [net.power_w for net in breakdown.nets]
        assert powers == sorted(powers, reverse=True)

    def test_total_consistent_with_reference_estimator(self, s27_circuit):
        """Attribution must not create or destroy power relative to the reference."""
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=20_000, rng=3
        )
        reference = estimate_reference_power(
            s27_circuit, BernoulliStimulus(4, 0.5), total_cycles=40_000, rng=4
        )
        assert breakdown.total_power_w == pytest.approx(reference.average_power_w, rel=0.05)

    def test_reuses_existing_activity_record(self, s27_circuit):
        activity = collect_activity(s27_circuit, BernoulliStimulus(4, 0.5), cycles=500, rng=5)
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), activity=activity
        )
        assert breakdown.cycles == 500

    def test_mismatched_activity_record_rejected(self, s27_circuit, toggle_circuit):
        activity = collect_activity(toggle_circuit, BernoulliStimulus(1, 0.5), cycles=100, rng=6)
        with pytest.raises(ValueError, match="activity record"):
            power_breakdown(s27_circuit, BernoulliStimulus(4, 0.5), activity=activity)

    def test_render_contains_top_nets(self, s27_circuit):
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=500, rng=7
        )
        text = breakdown.render(count=5)
        assert "Power breakdown of s27" in text
        assert breakdown.top(1)[0].net in text

    def test_top_respects_count(self, s27_circuit):
        breakdown = power_breakdown(
            s27_circuit, BernoulliStimulus(4, 0.5), cycles=500, rng=8
        )
        assert len(breakdown.top(3)) == 3
