"""Unit tests for the dynamic power equation."""

import pytest

from repro.power.power_model import PowerModel


class TestPowerModel:
    def test_paper_operating_point_defaults(self):
        model = PowerModel()
        assert model.vdd == pytest.approx(5.0)
        assert model.clock_frequency_hz == pytest.approx(20e6)
        assert model.clock_period_s == pytest.approx(50e-9)

    def test_cycle_energy_formula(self):
        model = PowerModel(vdd=5.0, clock_frequency_hz=20e6)
        # 100 fF switched at 5 V: E = 0.5 * 25 * 100e-15 = 1.25 pJ
        assert model.cycle_energy(100e-15) == pytest.approx(1.25e-12)

    def test_cycle_power_is_energy_over_period(self):
        model = PowerModel(vdd=5.0, clock_frequency_hz=20e6)
        assert model.cycle_power(100e-15) == pytest.approx(1.25e-12 * 20e6)

    def test_average_power_over_sample(self):
        model = PowerModel()
        sample = [100e-15, 300e-15]
        assert model.average_power(sample) == pytest.approx(model.cycle_power(200e-15))

    def test_average_power_requires_samples(self):
        with pytest.raises(ValueError):
            PowerModel().average_power([])

    def test_power_scales_with_vdd_squared(self):
        low = PowerModel(vdd=2.5).cycle_power(1e-12)
        high = PowerModel(vdd=5.0).cycle_power(1e-12)
        assert high == pytest.approx(4.0 * low)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().cycle_energy(-1.0)

    def test_invalid_operating_point_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(vdd=0.0)
        with pytest.raises(ValueError):
            PowerModel(clock_frequency_hz=-1.0)

    def test_milliwatt_conversion(self):
        assert PowerModel().to_milliwatts(0.0025) == pytest.approx(2.5)
