"""Unit tests for the long-run reference power estimator."""

import pytest

from repro.fsm.exact_power import exact_average_power
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus


class TestReferenceEstimator:
    def test_matches_exact_power_on_s27(self, s27_circuit):
        exact = exact_average_power(s27_circuit, 0.5)
        reference = estimate_reference_power(
            s27_circuit,
            BernoulliStimulus(4, 0.5),
            total_cycles=60_000,
            lanes=32,
            rng=1,
        )
        assert reference.average_power_w == pytest.approx(exact, rel=0.03)

    def test_matches_exact_power_on_toggle_cell(self, toggle_circuit):
        exact = exact_average_power(toggle_circuit, 0.5)
        reference = estimate_reference_power(
            toggle_circuit,
            BernoulliStimulus(1, 0.5),
            total_cycles=40_000,
            lanes=32,
            rng=2,
        )
        assert reference.average_power_w == pytest.approx(exact, rel=0.05)

    def test_lane_count_does_not_bias_the_estimate(self, s27_circuit):
        stimulus = BernoulliStimulus(4, 0.5)
        few_lanes = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=40_000, lanes=4, rng=3
        )
        many_lanes = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=40_000, lanes=128, rng=4
        )
        assert few_lanes.average_power_w == pytest.approx(many_lanes.average_power_w, rel=0.05)

    def test_total_cycles_rounded_up_to_full_lanes(self, s27_circuit):
        reference = estimate_reference_power(
            s27_circuit, BernoulliStimulus(4, 0.5), total_cycles=1000, lanes=64, rng=5
        )
        assert reference.total_cycles >= 1000
        assert reference.total_cycles % 64 == 0

    def test_reproducible_with_same_seed(self, s27_circuit):
        stimulus = BernoulliStimulus(4, 0.5)
        first = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=5_000, lanes=16, rng=7
        )
        second = estimate_reference_power(
            s27_circuit, BernoulliStimulus(4, 0.5), total_cycles=5_000, lanes=16, rng=7
        )
        assert first.average_power_w == pytest.approx(second.average_power_w)

    def test_milliwatt_property(self, s27_circuit):
        reference = estimate_reference_power(
            s27_circuit, BernoulliStimulus(4, 0.5), total_cycles=2_000, lanes=16, rng=8
        )
        assert reference.average_power_mw == pytest.approx(reference.average_power_w * 1e3)

    def test_invalid_arguments_rejected(self, s27_circuit):
        stimulus = BernoulliStimulus(4, 0.5)
        with pytest.raises(ValueError):
            estimate_reference_power(s27_circuit, stimulus, total_cycles=0)
        with pytest.raises(ValueError):
            estimate_reference_power(s27_circuit, stimulus, total_cycles=100, lanes=0)
