"""Unit tests for the capacitance model."""

import pytest

from repro.power.capacitance import CapacitanceModel


class TestCapacitanceModel:
    def test_every_net_has_positive_capacitance(self, s27_circuit):
        caps = CapacitanceModel().node_capacitances(s27_circuit)
        assert len(caps) == s27_circuit.num_nets
        assert all(c > 0 for c in caps)

    def test_fanout_increases_capacitance(self, s27_circuit):
        model = CapacitanceModel()
        caps = model.node_capacitances(s27_circuit)
        # G11 fans out to two gates and one latch; G14 fans out to two gates.
        assert caps[s27_circuit.net_id("G11")] > caps[s27_circuit.net_id("G14")]

    def test_primary_output_load_applied(self, s27_circuit):
        model = CapacitanceModel()
        caps = model.node_capacitances(s27_circuit)
        g17 = caps[s27_circuit.net_id("G17")]
        expected = (
            model.output_capacitance_f + model.primary_output_capacitance_f
        ) * model.overhead_factor
        assert g17 == pytest.approx(expected)

    def test_latch_input_capacitance_applied(self, s27_circuit):
        model = CapacitanceModel(input_capacitance_f=0.0, latch_input_capacitance_f=10e-15)
        caps = model.node_capacitances(s27_circuit)
        g13 = caps[s27_circuit.net_id("G13")]  # drives only the latch G7
        expected = (model.output_capacitance_f + 10e-15) * model.overhead_factor
        assert g13 == pytest.approx(expected)

    def test_total_capacitance_is_sum(self, s27_circuit):
        model = CapacitanceModel()
        assert model.total_capacitance(s27_circuit) == pytest.approx(
            sum(model.node_capacitances(s27_circuit))
        )

    def test_overhead_factor_scales_everything(self, s27_circuit):
        plain = CapacitanceModel(overhead_factor=1.0).node_capacitances(s27_circuit)
        scaled = CapacitanceModel(overhead_factor=2.0).node_capacitances(s27_circuit)
        for a, b in zip(plain, scaled):
            assert b == pytest.approx(2.0 * a)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CapacitanceModel(output_capacitance_f=-1e-15)
        with pytest.raises(ValueError):
            CapacitanceModel(overhead_factor=0.0)
