"""Unit tests for the multi-chain batch power sampler and its estimator wiring."""

import numpy as np
import pytest

from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sampler import PowerSampler
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus


def _batch(circuit, chains=8, config=None, rng=0, backend="auto"):
    config = config or EstimationConfig(warmup_cycles=8)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    return BatchPowerSampler(
        circuit, stimulus, config, rng=rng, num_chains=chains, backend=backend
    )


class TestBatchPowerSampler:
    def test_invalid_arguments_rejected(self, s27_circuit):
        with pytest.raises(ValueError, match="num_chains"):
            _batch(s27_circuit, chains=0)
        with pytest.raises(ValueError, match="stimulus drives"):
            BatchPowerSampler(s27_circuit, BernoulliStimulus(2, 0.5), EstimationConfig())
        sampler = _batch(s27_circuit)
        with pytest.raises(ValueError):
            sampler.next_samples(interval=-1)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=-1, length=10)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=0, length=0)
        with pytest.raises(ValueError):
            sampler.advance(-1)

    def test_measure_cycle_shape_and_sign(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=16)
        switched = sampler.measure_cycle()
        assert switched.shape == (16,)
        assert np.all(switched >= 0.0)

    def test_cycle_accounting(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=4)
        sampler.prepare(warmup_cycles=10)
        assert sampler.cycles_simulated == 10
        sampler.next_samples(interval=3)
        assert sampler.cycles_simulated == 14
        assert sampler.chain_cycles == 14 * 4

    def test_collect_sequence_is_chain_zero_series(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=8, rng=4)
        sequence = sampler.collect_sequence(interval=1, length=30)
        assert len(sequence) == 30
        assert all(value >= 0.0 for value in sequence)
        assert any(value > 0.0 for value in sequence)

    def test_samples_interleaved_across_chains(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=8)
        values = sampler.samples(interval=0, count=20)
        assert len(values) == 24  # rounded up to whole batches of 8

    def test_reproducible_given_seed(self, s27_circuit):
        first = _batch(s27_circuit, chains=8, rng=42)
        second = _batch(s27_circuit, chains=8, rng=42)
        assert np.array_equal(first.next_samples(2), second.next_samples(2))

    def test_backends_agree_on_samples(self, s27_circuit):
        a = _batch(s27_circuit, chains=8, rng=7, backend="bigint")
        b = _batch(s27_circuit, chains=8, rng=7, backend="numpy")
        for _ in range(5):
            assert b.next_samples(1) == pytest.approx(a.next_samples(1))

    def test_ensemble_mean_matches_single_chain_mean(self, s27_circuit):
        config = EstimationConfig(warmup_cycles=32)
        batch = _batch(s27_circuit, chains=64, config=config, rng=1)
        single = PowerSampler(
            s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=2
        )
        batch_mean = float(np.mean([batch.next_samples(2) for _ in range(100)]))
        single_mean = float(np.mean([single.next_sample(2) for _ in range(400)]))
        assert batch_mean == pytest.approx(single_mean, rel=0.15)


class TestEstimatorWiring:
    def test_dipe_with_chains_reaches_accuracy(self, s27_circuit, quick_config):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=16,
            max_samples=4000,
            warmup_cycles=16,
            max_independence_interval=16,
            num_chains=16,
        )
        estimator = DipeEstimator(s27_circuit, config=config, rng=5)
        assert isinstance(estimator.sampler, BatchPowerSampler)
        estimate = estimator.estimate()
        assert estimate.sample_size >= config.min_samples
        assert estimate.sample_size % 16 == 0 or estimate.sample_size == config.max_samples
        assert estimate.average_power_w > 0

    def test_multi_chain_estimate_consistent_with_single_chain(self, s27_circuit):
        kwargs = dict(
            randomness_sequence_length=64,
            min_samples=128,
            check_interval=32,
            max_samples=8000,
            warmup_cycles=16,
            max_independence_interval=16,
        )
        multi = DipeEstimator(
            s27_circuit, config=EstimationConfig(num_chains=32, **kwargs), rng=9
        ).estimate()
        single = DipeEstimator(s27_circuit, config=EstimationConfig(**kwargs), rng=9).estimate()
        assert multi.average_power_w == pytest.approx(single.average_power_w, rel=0.2)

    def test_config_accepts_batch_event_driven(self):
        config = EstimationConfig(num_chains=4, power_simulator="event-driven")
        assert config.num_chains == 4
        with pytest.raises(ValueError, match="max_chains"):
            EstimationConfig(num_chains=64, adaptive_chains=True, max_chains=8)

    def test_baselines_support_chains(self, s27_circuit):
        config = EstimationConfig(
            min_samples=64, check_interval=16, max_samples=2000, warmup_cycles=8, num_chains=8
        )
        consecutive = ConsecutiveCycleEstimator(s27_circuit, config=config, rng=3).estimate()
        assert consecutive.sample_size >= 64
        fixed = FixedWarmupEstimator(
            s27_circuit, config=config, rng=3, warmup_period=10
        ).estimate()
        assert fixed.sample_size >= 64
        assert fixed.average_power_w == pytest.approx(consecutive.average_power_w, rel=0.3)

    def test_reference_backends_agree(self, s27_circuit):
        stimulus = BernoulliStimulus(s27_circuit.num_inputs, 0.5)
        bigint = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=5000, lanes=64, rng=1, backend="bigint"
        )
        vector = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=5000, lanes=64, rng=1, backend="numpy"
        )
        assert vector.average_power_w == pytest.approx(bigint.average_power_w)
        assert vector.total_cycles == bigint.total_cycles == 5056


class TestEventDrivenChains:
    """Multi-chain sampling composed with the glitch-aware power engine."""

    def _event_batch(self, circuit, chains, rng=0, config=None):
        config = config or EstimationConfig(warmup_cycles=8, power_simulator="event-driven")
        stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
        return BatchPowerSampler(circuit, stimulus, config, rng=rng, num_chains=chains)

    def test_event_driven_batch_shapes(self, s27_circuit):
        sampler = self._event_batch(s27_circuit, chains=16)
        switched = sampler.next_samples(interval=2)
        assert switched.shape == (16,)
        assert np.all(switched >= 0.0)

    def test_single_chain_event_batch_matches_power_sampler(self, s27_circuit):
        config = EstimationConfig(warmup_cycles=8, power_simulator="event-driven")
        single = PowerSampler(
            s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=11
        )
        batch = self._event_batch(s27_circuit, chains=1, rng=11, config=config)
        expected = [single.next_sample(2) for _ in range(15)]
        actual = [float(batch.next_samples(2)[0]) for _ in range(15)]
        assert actual == pytest.approx(expected)

    def test_event_chains_at_least_zero_delay_chains(self, s27_circuit):
        """Glitches only add switched capacitance, chain for chain."""
        functional = _batch(
            s27_circuit, chains=32, rng=21, config=EstimationConfig(warmup_cycles=8)
        )
        glitchy = self._event_batch(s27_circuit, chains=32, rng=21)
        for _ in range(5):
            zero_delay = functional.next_samples(1)
            event = glitchy.next_samples(1)
            assert np.all(event >= zero_delay - 1e-12)

    def test_dipe_event_driven_with_chains(self, s27_circuit):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=16,
            max_samples=2000,
            warmup_cycles=8,
            max_independence_interval=8,
            num_chains=8,
            power_simulator="event-driven",
        )
        estimator = DipeEstimator(s27_circuit, config=config, rng=6)
        assert isinstance(estimator.sampler, BatchPowerSampler)
        estimate = estimator.estimate()
        assert estimate.average_power_w > 0
        assert estimate.sample_size >= 64


class TestSampleBlock:
    """The vectorized interleave must match the per-batch loop draw for draw."""

    def test_sample_block_matches_looped_draws(self, s27_circuit):
        from repro.core.batch_sampler import draw_sample_block, draw_samples

        looped = _batch(s27_circuit, chains=8, rng=13)
        blocked = _batch(s27_circuit, chains=8, rng=13)
        collected: list[float] = []
        while len(collected) < 48:
            collected.extend(draw_samples(looped, 2))
        block = draw_sample_block(blocked, 2, 48)
        assert block == pytest.approx(collected)
        assert blocked.cycles_simulated == looped.cycles_simulated
        assert all(isinstance(value, float) for value in block)

    def test_sample_block_identical_stopping_decisions(self, s27_circuit):
        """Stopping trajectories are unchanged by the vectorized interleave."""
        from repro.core.batch_sampler import draw_sample_block, draw_samples
        from repro.stats.stopping import make_stopping_criterion

        config = EstimationConfig(warmup_cycles=8)
        criterion_kwargs = dict(max_relative_error=0.1, confidence=0.95, min_samples=32)
        looped = _batch(s27_circuit, chains=8, rng=17, config=config)
        blocked = _batch(s27_circuit, chains=8, rng=17, config=config)
        crit_a = make_stopping_criterion("order-statistic", **criterion_kwargs)
        crit_b = make_stopping_criterion("order-statistic", **criterion_kwargs)

        samples_a: list[float] = []
        samples_b: list[float] = []
        for _ in range(6):
            added = 0
            while added < 16:
                batch = draw_samples(looped, 1)
                samples_a.extend(batch)
                added += len(batch)
            samples_b.extend(draw_sample_block(blocked, 1, 16))
            decision_a = crit_a.evaluate(samples_a)
            decision_b = crit_b.evaluate(samples_b)
            assert decision_a == decision_b

    def test_samples_helper_uses_block(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=8)
        values = sampler.samples(interval=0, count=20)
        assert len(values) == 24  # rounded up to whole batches of 8


class TestAdaptiveChains:
    def _adaptive_config(self, **overrides):
        defaults = dict(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=4000,
            warmup_cycles=8,
            max_independence_interval=8,
            num_chains=4,
            adaptive_chains=True,
            max_chains=64,
        )
        defaults.update(overrides)
        return EstimationConfig(**defaults)

    def test_resize_rebuilds_and_rewarms(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=4, rng=3)
        sampler.prepare(warmup_cycles=8)
        cycles_before = sampler.cycles_simulated
        sampler.resize(16)
        assert sampler.num_chains == 16
        assert sampler.cycles_simulated > cycles_before  # re-warmed
        assert sampler.next_samples(1).shape == (16,)
        sampler.resize(16)  # no-op
        assert sampler.num_chains == 16

    def test_plan_chain_resize_grows_and_shrinks(self, s27_circuit):
        from repro.stats.stopping.base import StoppingDecision

        config = EstimationConfig(
            warmup_cycles=8, num_chains=4, adaptive_chains=True, max_chains=256,
            max_relative_error=0.05,
        )
        sampler = _batch(s27_circuit, chains=4, rng=3, config=config)
        far = StoppingDecision(
            should_stop=False, sample_size=128, estimate=1.0,
            lower=0.5, upper=1.5, relative_half_width=0.5,
        )
        assert sampler.plan_chain_resize(far) == 256  # far from target: grow to cap
        sampler.resize(256)
        close = StoppingDecision(
            should_stop=False, sample_size=2000, estimate=1.0,
            lower=0.948, upper=1.052, relative_half_width=0.052,
        )
        proposal = sampler.plan_chain_resize(close)
        assert proposal < 256  # almost done (~160 samples left): shrink decisively
        done = StoppingDecision(
            should_stop=True, sample_size=2000, estimate=1.0,
            lower=0.96, upper=1.04, relative_half_width=0.04,
        )
        assert sampler.plan_chain_resize(done) == sampler.num_chains

    def test_make_sampler_selects_batch_for_adaptive_single_chain(self, s27_circuit):
        from repro.core.batch_sampler import make_sampler

        config = EstimationConfig(warmup_cycles=8, num_chains=1, adaptive_chains=True)
        sampler = make_sampler(
            s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=1
        )
        assert isinstance(sampler, BatchPowerSampler)

    def test_adaptive_dipe_run_emits_resize_events(self, s27_circuit):
        from repro.api.events import ChainsResized

        config = self._adaptive_config()
        estimator = DipeEstimator(s27_circuit, config=config, rng=8)
        events = list(estimator.run())
        resizes = [event for event in events if isinstance(event, ChainsResized)]
        estimate = events[-1].estimate
        assert estimate.average_power_w > 0
        for event in resizes:
            assert event.previous_chains != event.num_chains
            assert 1 <= event.num_chains <= config.max_chains
        drawn = [event.samples_drawn for event in events]
        assert drawn == sorted(drawn)  # monotone across resizes too

    def test_adaptive_run_reproducible(self, s27_circuit):
        config = self._adaptive_config()
        first = DipeEstimator(s27_circuit, config=config, rng=12).estimate()
        second = DipeEstimator(s27_circuit, config=config, rng=12).estimate()
        assert first.average_power_w == second.average_power_w
        assert first.sample_size == second.sample_size

    def test_adaptive_with_event_driven_engine(self, s27_circuit):
        config = self._adaptive_config(power_simulator="event-driven", max_samples=2000)
        estimate = DipeEstimator(s27_circuit, config=config, rng=4).estimate()
        assert estimate.average_power_w > 0

    def test_snapshot_restores_across_resize(self, s27_circuit):
        """A checkpoint taken after a resize restores into a fresh sampler."""
        source = _batch(s27_circuit, chains=4, rng=19)
        source.prepare(warmup_cycles=4)
        source.resize(16)
        snapshot = source.get_state()
        expected = source.next_samples(1)

        target = _batch(s27_circuit, chains=4, rng=0)  # differently seeded and sized
        target.set_state(snapshot)
        assert target.num_chains == 16
        assert np.array_equal(target.next_samples(1), expected)
