"""Unit tests for the multi-chain batch power sampler and its estimator wiring."""

import numpy as np
import pytest

from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sampler import PowerSampler
from repro.power.reference import estimate_reference_power
from repro.stimulus.random_inputs import BernoulliStimulus


def _batch(circuit, chains=8, config=None, rng=0, backend="auto"):
    config = config or EstimationConfig(warmup_cycles=8)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    return BatchPowerSampler(
        circuit, stimulus, config, rng=rng, num_chains=chains, backend=backend
    )


class TestBatchPowerSampler:
    def test_invalid_arguments_rejected(self, s27_circuit):
        with pytest.raises(ValueError, match="num_chains"):
            _batch(s27_circuit, chains=0)
        with pytest.raises(ValueError, match="stimulus drives"):
            BatchPowerSampler(s27_circuit, BernoulliStimulus(2, 0.5), EstimationConfig())
        with pytest.raises(ValueError, match="zero-delay"):
            BatchPowerSampler(
                s27_circuit,
                BernoulliStimulus(s27_circuit.num_inputs, 0.5),
                EstimationConfig(power_simulator="event-driven"),
            )
        sampler = _batch(s27_circuit)
        with pytest.raises(ValueError):
            sampler.next_samples(interval=-1)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=-1, length=10)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=0, length=0)
        with pytest.raises(ValueError):
            sampler.advance(-1)

    def test_measure_cycle_shape_and_sign(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=16)
        switched = sampler.measure_cycle()
        assert switched.shape == (16,)
        assert np.all(switched >= 0.0)

    def test_cycle_accounting(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=4)
        sampler.prepare(warmup_cycles=10)
        assert sampler.cycles_simulated == 10
        sampler.next_samples(interval=3)
        assert sampler.cycles_simulated == 14
        assert sampler.chain_cycles == 14 * 4

    def test_collect_sequence_is_chain_zero_series(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=8, rng=4)
        sequence = sampler.collect_sequence(interval=1, length=30)
        assert len(sequence) == 30
        assert all(value >= 0.0 for value in sequence)
        assert any(value > 0.0 for value in sequence)

    def test_samples_interleaved_across_chains(self, s27_circuit):
        sampler = _batch(s27_circuit, chains=8)
        values = sampler.samples(interval=0, count=20)
        assert len(values) == 24  # rounded up to whole batches of 8

    def test_reproducible_given_seed(self, s27_circuit):
        first = _batch(s27_circuit, chains=8, rng=42)
        second = _batch(s27_circuit, chains=8, rng=42)
        assert np.array_equal(first.next_samples(2), second.next_samples(2))

    def test_backends_agree_on_samples(self, s27_circuit):
        a = _batch(s27_circuit, chains=8, rng=7, backend="bigint")
        b = _batch(s27_circuit, chains=8, rng=7, backend="numpy")
        for _ in range(5):
            assert b.next_samples(1) == pytest.approx(a.next_samples(1))

    def test_ensemble_mean_matches_single_chain_mean(self, s27_circuit):
        config = EstimationConfig(warmup_cycles=32)
        batch = _batch(s27_circuit, chains=64, config=config, rng=1)
        single = PowerSampler(
            s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=2
        )
        batch_mean = float(np.mean([batch.next_samples(2) for _ in range(100)]))
        single_mean = float(np.mean([single.next_sample(2) for _ in range(400)]))
        assert batch_mean == pytest.approx(single_mean, rel=0.15)


class TestEstimatorWiring:
    def test_dipe_with_chains_reaches_accuracy(self, s27_circuit, quick_config):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=16,
            max_samples=4000,
            warmup_cycles=16,
            max_independence_interval=16,
            num_chains=16,
        )
        estimator = DipeEstimator(s27_circuit, config=config, rng=5)
        assert isinstance(estimator.sampler, BatchPowerSampler)
        estimate = estimator.estimate()
        assert estimate.sample_size >= config.min_samples
        assert estimate.sample_size % 16 == 0 or estimate.sample_size == config.max_samples
        assert estimate.average_power_w > 0

    def test_multi_chain_estimate_consistent_with_single_chain(self, s27_circuit):
        kwargs = dict(
            randomness_sequence_length=64,
            min_samples=128,
            check_interval=32,
            max_samples=8000,
            warmup_cycles=16,
            max_independence_interval=16,
        )
        multi = DipeEstimator(
            s27_circuit, config=EstimationConfig(num_chains=32, **kwargs), rng=9
        ).estimate()
        single = DipeEstimator(s27_circuit, config=EstimationConfig(**kwargs), rng=9).estimate()
        assert multi.average_power_w == pytest.approx(single.average_power_w, rel=0.2)

    def test_config_rejects_batch_event_driven(self):
        with pytest.raises(ValueError, match="multi-chain"):
            EstimationConfig(num_chains=4, power_simulator="event-driven")

    def test_baselines_support_chains(self, s27_circuit):
        config = EstimationConfig(
            min_samples=64, check_interval=16, max_samples=2000, warmup_cycles=8, num_chains=8
        )
        consecutive = ConsecutiveCycleEstimator(s27_circuit, config=config, rng=3).estimate()
        assert consecutive.sample_size >= 64
        fixed = FixedWarmupEstimator(
            s27_circuit, config=config, rng=3, warmup_period=10
        ).estimate()
        assert fixed.sample_size >= 64
        assert fixed.average_power_w == pytest.approx(consecutive.average_power_w, rel=0.3)

    def test_reference_backends_agree(self, s27_circuit):
        stimulus = BernoulliStimulus(s27_circuit.num_inputs, 0.5)
        bigint = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=5000, lanes=64, rng=1, backend="bigint"
        )
        vector = estimate_reference_power(
            s27_circuit, stimulus, total_cycles=5000, lanes=64, rng=1, backend="numpy"
        )
        assert vector.average_power_w == pytest.approx(bigint.average_power_w)
        assert vector.total_cycles == bigint.total_cycles == 5056
