"""Unit tests for the command-line interface."""

import json

import pytest

from repro.circuits.library import S27_BENCH
from repro.cli import _stimulus_spec, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults_match_paper(self):
        args = build_parser().parse_args(["estimate", "s27"])
        assert args.alpha == pytest.approx(0.20)
        assert args.max_error == pytest.approx(0.05)
        assert args.confidence == pytest.approx(0.99)
        assert args.stopping == "order-statistic"

    def test_unknown_stopping_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "s27", "--stopping", "magic"])

    def test_input_probability_shared_across_verbs(self):
        for verb in (["estimate", "s27"], ["table1"], ["table2"], ["figure3"]):
            args = build_parser().parse_args([*verb, "--input-probability", "0.3"])
            assert args.input_probability == pytest.approx(0.3)

    def test_batch_verb_parses(self):
        args = build_parser().parse_args(["batch", "jobs.json", "--workers", "3", "--json"])
        assert args.jobs_file == "jobs.json"
        assert args.workers == 3
        assert args.json


class TestCommands:
    def test_circuits_listing(self, capsys):
        assert main(["circuits"]) == 0
        output = capsys.readouterr().out
        assert "s27" in output and "s15850" in output

    def test_estimate_registered_circuit(self, capsys):
        exit_code = main(["estimate", "s27", "--seed", "3", "--reference-cycles", "5000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "average power" in output
        assert "independence interval" in output
        assert "relative error" in output

    def test_estimate_bench_file(self, tmp_path, capsys):
        bench_path = tmp_path / "mini.bench"
        bench_path.write_text(S27_BENCH)
        assert main(["estimate", str(bench_path), "--seed", "4"]) == 0
        assert "average power" in capsys.readouterr().out

    def test_estimate_unknown_circuit_fails(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            main(["estimate", "not-a-circuit"])

    def test_table1_explicit_circuits(self, capsys):
        exit_code = main(
            ["table1", "s27", "--reference-cycles", "5000", "--seed", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SIM (mW)" in output and "s27" in output

    def test_figure3_small_sweep(self, capsys):
        exit_code = main(
            [
                "figure3",
                "--circuit",
                "s298",
                "--max-interval",
                "3",
                "--sequence-length",
                "200",
                "--seed",
                "6",
            ]
        )
        assert exit_code == 0
        assert "threshold" in capsys.readouterr().out

    def test_estimate_json_output(self, capsys):
        assert main(["estimate", "s27", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["spec"]["circuit"] == "s27"
        assert payload["result"]["data"]["average_power_w"] > 0

    def test_estimate_with_registered_estimator_kind(self, capsys):
        exit_code = main(
            ["estimate", "s27", "--estimator", "consecutive-mc", "--seed", "3"]
        )
        assert exit_code == 0
        assert "consecutive-mc" in capsys.readouterr().out

    def test_circuits_json_output(self, capsys):
        assert main(["circuits", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["circuit"] == "s27" for entry in payload)

    def test_estimate_progress_streams_events(self, capsys):
        assert main(["estimate", "s27", "--seed", "4", "--progress"]) == 0
        captured = capsys.readouterr()
        kinds = [json.loads(line)["kind"] for line in captured.err.splitlines() if line]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "estimate-completed"


class TestBatchCommand:
    @pytest.fixture()
    def jobs_file(self, tmp_path):
        quick = {
            "randomness_sequence_length": 64,
            "min_samples": 64,
            "check_interval": 32,
            "max_samples": 2000,
            "warmup_cycles": 16,
        }
        path = tmp_path / "jobs.json"
        path.write_text(
            json.dumps(
                {
                    "jobs": [
                        {"circuit": "s27", "seed": 11, "label": "cli:s27", "config": quick},
                        {"circuit": "s298", "seed": 12, "label": "cli:s298", "config": quick},
                    ]
                }
            )
        )
        return path

    def test_batch_runs_and_writes_manifest(self, tmp_path, jobs_file, capsys):
        manifest = tmp_path / "out.json"
        exit_code = main(["batch", str(jobs_file), "--workers", "2", "--output", str(manifest)])
        assert exit_code == 0
        assert "cli:s27" in capsys.readouterr().out
        payload = json.loads(manifest.read_text())
        assert payload["num_jobs"] == 2 and payload["num_errors"] == 0
        assert payload["jobs"][0]["result"]["data"]["average_power_w"] > 0

    def test_batch_json_output(self, tmp_path, jobs_file, capsys):
        manifest = tmp_path / "out.json"
        exit_code = main(["batch", str(jobs_file), "--output", str(manifest), "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-batch-manifest/v1"

    def test_batch_failing_job_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad_jobs.json"
        path.write_text(json.dumps([{"circuit": "nope", "seed": 1}]))
        manifest = tmp_path / "out.json"
        assert main(["batch", str(path), "--output", str(manifest)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_batch_failing_job_json_mode_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad_jobs.json"
        path.write_text(json.dumps([{"circuit": "nope", "seed": 1, "label": "doomed"}]))
        manifest = tmp_path / "out.json"
        assert main(["batch", str(path), "--output", str(manifest), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_errors"] == 1
        assert json.loads(manifest.read_text())["num_errors"] == 1

    def test_batch_parallel_failing_job_exits_1(self, tmp_path, jobs_file, capsys):
        jobs = json.loads(jobs_file.read_text())["jobs"]
        jobs.append({"circuit": "nope", "seed": 3, "label": "doomed"})
        path = tmp_path / "mixed_jobs.json"
        path.write_text(json.dumps({"jobs": jobs}))
        manifest = tmp_path / "out.json"
        assert main(["batch", str(path), "--workers", "2", "--output", str(manifest)]) == 1
        payload = json.loads(manifest.read_text())
        assert payload["num_errors"] == 1
        good = [job for job in payload["jobs"] if job["status"] == "ok"]
        assert len(good) == 2  # the failure does not take down its siblings

    def test_batch_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load jobs"):
            main(["batch", str(tmp_path / "missing.json")])

    def test_batch_typoed_config_key_reports_cleanly(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps([{"circuit": "s27", "config": {"max_sample": 2000}}]))
        with pytest.raises(SystemExit, match="job #0 is invalid"):
            main(["batch", str(path)])

    def test_estimate_figure3_profile_kind_emits_json(self, capsys):
        exit_code = main(
            [
                "estimate",
                "s27",
                "--estimator",
                "figure3-profile",
                "--params",
                '{"max_interval": 2, "sequence_length": 100}',
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["result"]["type"] == "figure3-profile"

    def test_estimate_params_forwarded(self, capsys):
        exit_code = main(
            [
                "estimate",
                "s27",
                "--estimator",
                "fixed-warmup",
                "--params",
                '{"warmup_period": 7}',
                "--seed",
                "3",
            ]
        )
        assert exit_code == 0
        assert "independence interval : 7 cycles" in capsys.readouterr().out


class TestShardedEstimate:
    def test_workers_and_delay_model_parse(self):
        args = build_parser().parse_args(
            ["estimate", "s27", "--workers", "2", "--delay-model", "unit"]
        )
        assert args.workers == 2
        assert args.delay_model == "unit"

    def test_unknown_delay_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "s27", "--delay-model", "magic"])

    def test_estimate_with_workers_matches_serial(self, capsys):
        common = ["estimate", "s27", "--seed", "6", "--chains", "64", "--json"]
        assert main(common) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main([*common, "--workers", "2"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["result"]["data"]["average_power_w"] == (
            serial["result"]["data"]["average_power_w"]
        )
        assert sharded["result"]["data"]["sample_size"] == (
            serial["result"]["data"]["sample_size"]
        )
        assert sharded["spec"]["config"]["num_workers"] == 2

    def test_estimate_text_output_reports_workers(self, capsys):
        assert main(["estimate", "s27", "--seed", "6", "--chains", "64",
                     "--workers", "2"]) == 0
        assert "shard workers" in capsys.readouterr().out


class TestCompileVerb:
    def test_compile_text_output(self, capsys):
        assert main(["compile", "s27"]) == 0
        out = capsys.readouterr().out
        assert "cache key" in out
        assert "logic levels" in out
        assert "Quantized delay schedules" in out
        assert "fanout" in out

    def test_compile_json_output(self, capsys):
        assert main(["compile", "s298", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit"] == "s298"
        assert payload["gates"] == 119
        assert sum(payload["gates_per_level"]) == payload["gates"]
        assert set(payload["delay_models"]) == {"zero", "unit", "fanout", "type-table"}
        assert payload["delay_models"]["zero"]["zero_tick_gates"] == payload["gates"]
        assert len(payload["key"]) == 24

    def test_compile_optimize_reports_removals(self, capsys):
        assert main(["compile", "s27", "--optimize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "optimized" in payload
        assert payload["optimized"]["gates_removed"] >= 0

    def test_compile_selected_delay_models(self, capsys):
        assert main(["compile", "s27", "--delay-models", "unit", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["delay_models"]) == {"unit"}

    def test_compile_unknown_circuit_fails(self):
        with pytest.raises(SystemExit):
            main(["compile", "nope"])


class TestStimulusOption:
    def test_defaults_to_bernoulli(self):
        args = build_parser().parse_args(["estimate", "s27"])
        assert args.stimulus == "bernoulli"
        spec = _stimulus_spec(args)
        assert spec.kind == "bernoulli"
        assert spec.params["probabilities"] == 0.5

    def test_unknown_stimulus_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "s27", "--stimulus", "magic"])

    def test_probability_forwarded_to_probability_kinds(self):
        args = build_parser().parse_args(
            ["estimate", "s27", "--stimulus", "lag-one-markov",
             "--input-probability", "0.3"]
        )
        spec = _stimulus_spec(args)
        assert spec.kind == "lag-one-markov"
        assert spec.params == {"probability": 0.3}

    def test_parameterless_kinds_get_bare_spec(self):
        args = build_parser().parse_args(["estimate", "s27", "--stimulus", "sobol"])
        spec = _stimulus_spec(args)
        assert spec.kind == "sobol"
        assert spec.params == {"probability": 0.5}

    def test_registry_kinds_are_offered(self):
        for kind in ("antithetic", "stratified", "sobol"):
            args = build_parser().parse_args(["estimate", "s27", "--stimulus", kind])
            assert args.stimulus == kind

    def test_estimate_runs_with_variance_stimulus(self, capsys):
        exit_code = main(
            ["estimate", "s27", "--stimulus", "antithetic", "--chains", "8",
             "--seed", "3", "--json", "--reference-cycles", "0"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["stimulus"]["kind"] == "antithetic"
        estimate = payload["result"]["data"]
        assert estimate["stopping_criterion"] == "grouped-order-statistic"
        assert estimate["effective_sample_size"] > 0
