"""Unit tests for the command-line interface."""

import pytest

from repro.circuits.library import S27_BENCH
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults_match_paper(self):
        args = build_parser().parse_args(["estimate", "s27"])
        assert args.alpha == pytest.approx(0.20)
        assert args.max_error == pytest.approx(0.05)
        assert args.confidence == pytest.approx(0.99)
        assert args.stopping == "order-statistic"

    def test_unknown_stopping_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "s27", "--stopping", "magic"])


class TestCommands:
    def test_circuits_listing(self, capsys):
        assert main(["circuits"]) == 0
        output = capsys.readouterr().out
        assert "s27" in output and "s15850" in output

    def test_estimate_registered_circuit(self, capsys):
        exit_code = main(["estimate", "s27", "--seed", "3", "--reference-cycles", "5000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "average power" in output
        assert "independence interval" in output
        assert "relative error" in output

    def test_estimate_bench_file(self, tmp_path, capsys):
        bench_path = tmp_path / "mini.bench"
        bench_path.write_text(S27_BENCH)
        assert main(["estimate", str(bench_path), "--seed", "4"]) == 0
        assert "average power" in capsys.readouterr().out

    def test_estimate_unknown_circuit_fails(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            main(["estimate", "not-a-circuit"])

    def test_table1_explicit_circuits(self, capsys):
        exit_code = main(
            ["table1", "s27", "--reference-cycles", "5000", "--seed", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "SIM (mW)" in output and "s27" in output

    def test_figure3_small_sweep(self, capsys):
        exit_code = main(
            [
                "figure3",
                "--circuit",
                "s298",
                "--max-interval",
                "3",
                "--sequence-length",
                "200",
                "--seed",
                "6",
            ]
        )
        assert exit_code == 0
        assert "threshold" in capsys.readouterr().out
