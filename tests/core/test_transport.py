"""Unit tests of the framed-TCP shard transport: framing, handshake, membership.

Everything here runs against in-process sockets (``socketpair`` or a real
:class:`ShardCoordinator` on a loopback ephemeral port) with hand-rolled
client handshakes — no worker processes.  The full distributed integration
matrix (real ``run_shard_worker`` processes, chaos, bit-identity) lives in
``tests/core/test_distributed.py``.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.core.config import EstimationConfig
from repro.core.transport import (
    MAX_FRAME_BYTES,
    FrameError,
    ShardCoordinator,
    WorkerDown,
    _FrameBuffer,
    _recv_json_frame,
    _send_json_frame,
    parse_address,
    recv_frame,
    run_shard_worker,
    send_frame,
)

_HEADER = struct.Struct(">I")


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestFraming:
    def test_roundtrip(self):
        left, right = _pair()
        payload = {"arrays": [1, 2, 3], "nested": ("a", b"bytes")}
        send_frame(left, "cmd", payload)
        kind, received = recv_frame(right)
        assert kind == "cmd"
        assert received == payload
        left.close(), right.close()

    def test_multiple_frames_preserve_order(self):
        left, right = _pair()
        for index in range(5):
            send_frame(left, "cmd", index)
        assert [recv_frame(right)[1] for _ in range(5)] == list(range(5))
        left.close(), right.close()

    def test_closed_stream(self):
        left, right = _pair()
        left.close()
        with pytest.raises(FrameError) as excinfo:
            recv_frame(right)
        assert excinfo.value.reason == "closed"
        right.close()

    def test_truncated_frame(self):
        left, right = _pair()
        left.sendall(_HEADER.pack(1 << 20) + b"only a sliver")
        left.close()
        with pytest.raises(FrameError) as excinfo:
            recv_frame(right)
        assert excinfo.value.reason == "truncated"
        right.close()

    def test_oversized_header_rejected(self):
        left, right = _pair()
        left.sendall(_HEADER.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError) as excinfo:
            recv_frame(right)
        assert excinfo.value.reason == "oversized"
        left.close(), right.close()

    def test_garbled_body(self):
        left, right = _pair()
        body = b"not a pickle at all"
        left.sendall(_HEADER.pack(len(body)) + body)
        with pytest.raises(FrameError) as excinfo:
            recv_frame(right)
        assert excinfo.value.reason == "garbled"
        left.close(), right.close()

    def test_json_handshake_frames(self):
        left, right = _pair()
        _send_json_frame(left, {"token": "t", "epoch": None})
        assert _recv_json_frame(right) == {"token": "t", "epoch": None}
        # Non-object JSON is garbling, not a crash.
        body = b"[1, 2, 3]"
        left.sendall(_HEADER.pack(len(body)) + body)
        with pytest.raises(FrameError) as excinfo:
            _recv_json_frame(right)
        assert excinfo.value.reason == "garbled"
        left.close(), right.close()


class TestFrameBuffer:
    def test_byte_at_a_time(self):
        wire = b""
        for index in range(3):
            body = pickle.dumps(("reply", index))
            wire += _HEADER.pack(len(body)) + body
        buffer = _FrameBuffer()
        bodies = []
        for offset in range(len(wire)):
            bodies.extend(buffer.feed(wire[offset : offset + 1]))
        assert [pickle.loads(body)[1] for body in bodies] == [0, 1, 2]
        assert buffer.pending == 0

    def test_many_frames_in_one_chunk(self):
        body = pickle.dumps(("reply", "x"))
        chunk = (_HEADER.pack(len(body)) + body) * 4
        assert len(_FrameBuffer().feed(chunk)) == 4

    def test_partial_frame_stays_pending(self):
        body = pickle.dumps(("reply", "x"))
        buffer = _FrameBuffer()
        assert buffer.feed(_HEADER.pack(len(body)) + body[:3]) == []
        assert buffer.pending > 0
        assert len(buffer.feed(body[3:])) == 1
        assert buffer.pending == 0

    def test_oversized_length_raises(self):
        with pytest.raises(FrameError) as excinfo:
            _FrameBuffer().feed(_HEADER.pack(MAX_FRAME_BYTES + 1))
        assert excinfo.value.reason == "oversized"


class TestParseAddress:
    def test_valid(self):
        assert parse_address("127.0.0.1:8642") == ("127.0.0.1", 8642)
        assert parse_address("host.example:0") == ("host.example", 0)

    @pytest.mark.parametrize(
        "bad", ["", "nohost", ":8642", "host:", "host:notaport", "host:-1", "host:70000"]
    )
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


def _handshake(port: int, token: str = "secret", worker: str = "w", epoch=None):
    """One raw client handshake; returns (sock, answer-dict)."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    _send_json_frame(sock, {"token": token, "worker": worker, "pid": 4242, "epoch": epoch})
    return sock, _recv_json_frame(sock)


class TestCoordinator:
    def test_join_assigns_monotone_epochs(self):
        incidents = []
        coordinator = ShardCoordinator(token="secret", on_incident=incidents.append)
        try:
            first, welcome_a = _handshake(coordinator.port, worker="a")
            second, welcome_b = _handshake(coordinator.port, worker="b")
            assert welcome_a["kind"] == welcome_b["kind"] == "welcome"
            assert welcome_b["epoch"] > welcome_a["epoch"]
            assert coordinator.wait_for_members(2, timeout=5.0) == 2
            assert coordinator.pending_count() == 2
            joined = [i for i in incidents if i["kind"] == "joined"]
            assert {i["worker"] for i in joined} == {"a", "b"}
            assert all(i["pid"] == 4242 for i in joined)
            first.close(), second.close()
        finally:
            coordinator.close()

    def test_attach_observer_replays_unobserved_joins(self):
        # Workers racing a pre-started coordinator can authenticate before
        # the pool attaches its incident sink; their joins must not be lost.
        coordinator = ShardCoordinator(token="secret")
        try:
            first, _ = _handshake(coordinator.port, worker="early-a")
            second, _ = _handshake(coordinator.port, worker="early-b")
            assert coordinator.wait_for_members(2, timeout=5.0) == 2
            incidents = []
            coordinator.attach_observer(incidents.append)
            joined = [i for i in incidents if i["kind"] == "joined"]
            assert {i["worker"] for i in joined} == {"early-a", "early-b"}
            # Later incidents flow straight through the attached sink.
            third, _ = _handshake(coordinator.port, worker="late-c")
            assert coordinator.wait_for_members(3, timeout=5.0) == 3
            assert any(i["worker"] == "late-c" for i in incidents)
            first.close(), second.close(), third.close()
        finally:
            coordinator.close()

    def test_bad_token_rejected(self):
        coordinator = ShardCoordinator(token="secret")
        try:
            sock, answer = _handshake(coordinator.port, token="wrong")
            assert answer == {"kind": "reject", "reason": "bad-token"}
            sock.close()
            assert coordinator.wait_for_members(1, timeout=0.2) == 0
        finally:
            coordinator.close()

    def test_stale_epoch_fenced(self):
        coordinator = ShardCoordinator(token="secret")
        try:
            sock, answer = _handshake(coordinator.port, epoch=3)
            assert answer == {"kind": "reject", "reason": "fenced"}
            assert coordinator.fenced_rejects == 1
            sock.close()
            # A fresh (epoch-less) rejoin of the same worker is welcome.
            sock, answer = _handshake(coordinator.port)
            assert answer["kind"] == "welcome"
            sock.close()
        finally:
            coordinator.close()

    def test_acquire_is_fifo_by_epoch(self, s27_circuit):
        coordinator = ShardCoordinator(token="secret")
        config = EstimationConfig()
        clients = []
        try:
            for name in ("first", "second"):
                sock, _ = _handshake(coordinator.port, worker=name)
                clients.append(sock)
            coordinator.wait_for_members(2, timeout=5.0)
            shard = coordinator.acquire(0, 0, "program-blob", config, "auto", timeout=5.0)
            assert shard.worker == "first"
            # The assign frame shipped the seat spec to the oldest member.
            kind, spec = recv_frame(clients[0])
            assert kind == "assign"
            assert spec["seat"] == 0 and spec["incarnation"] == 0
            assert spec["program"] == "program-blob"
            assert spec["backend"] == "auto"
            assert coordinator.pending_count() == 1
            shard.destroy()
        finally:
            for sock in clients:
                sock.close()
            coordinator.close()

    def test_acquire_times_out_without_members(self):
        coordinator = ShardCoordinator(token="secret")
        try:
            with pytest.raises(RuntimeError, match="no shard worker joined"):
                coordinator.acquire(0, 0, None, EstimationConfig(), "auto", timeout=0.2)
        finally:
            coordinator.close()

    def test_silent_member_pruned(self):
        incidents = []
        coordinator = ShardCoordinator(
            token="secret",
            heartbeat_interval=0.05,
            member_timeout=0.3,
            on_incident=incidents.append,
        )
        try:
            sock, _ = _handshake(coordinator.port, worker="mute")
            coordinator.wait_for_members(1, timeout=5.0)
            deadline = time.monotonic() + 5.0
            while coordinator.pending_count() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert coordinator.pending_count() == 0
            left = [i for i in incidents if i["kind"] == "left"]
            assert left and left[0]["worker"] == "mute"
            assert left[0]["reason"] in ("timed-out", "disconnected")
            sock.close()
        finally:
            coordinator.close()

    def test_disconnected_member_dropped(self):
        incidents = []
        coordinator = ShardCoordinator(token="secret", on_incident=incidents.append)
        try:
            sock, _ = _handshake(coordinator.port, worker="brief")
            coordinator.wait_for_members(1, timeout=5.0)
            sock.close()
            deadline = time.monotonic() + 5.0
            while coordinator.pending_count() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert coordinator.pending_count() == 0
            assert any(i["kind"] == "left" and i["worker"] == "brief" for i in incidents)
        finally:
            coordinator.close()

    def test_close_is_idempotent_and_wakes_waiters(self):
        coordinator = ShardCoordinator(token="secret")
        results = []

        def waiter():
            results.append(coordinator.wait_for_members(1, timeout=10.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        coordinator.close()
        coordinator.close()
        thread.join(timeout=5.0)
        assert results == [0]

    def test_incident_observer_errors_are_swallowed(self):
        def explode(_incident):
            raise RuntimeError("observer bug")

        coordinator = ShardCoordinator(token="secret", on_incident=explode)
        try:
            sock, answer = _handshake(coordinator.port)
            assert answer["kind"] == "welcome"
            assert coordinator.wait_for_members(1, timeout=5.0) == 1
            sock.close()
        finally:
            coordinator.close()


class TestSocketShardFailures:
    def test_peer_close_with_partial_frame_is_truncated(self):
        coordinator = ShardCoordinator(token="secret")
        try:
            sock, _ = _handshake(coordinator.port)
            coordinator.wait_for_members(1, timeout=5.0)
            shard = coordinator.acquire(0, 0, None, EstimationConfig(), "auto", timeout=5.0)
            recv_frame(sock)  # drain the assign
            sock.sendall(_HEADER.pack(1 << 16) + b"cut")
            sock.close()
            deadline = time.monotonic() + 5.0
            while shard.is_alive() and time.monotonic() < deadline:
                shard.poll(0.05)
            with pytest.raises(WorkerDown) as excinfo:
                shard.send_raw(("noop",))
            assert excinfo.value.reason == "truncated"
        finally:
            coordinator.close()

    def test_heartbeats_advance_progress(self):
        coordinator = ShardCoordinator(token="secret")
        try:
            sock, _ = _handshake(coordinator.port)
            coordinator.wait_for_members(1, timeout=5.0)
            shard = coordinator.acquire(0, 0, None, EstimationConfig(), "auto", timeout=5.0)
            recv_frame(sock)  # drain the assign
            assert shard.heartbeat_count() == 0
            send_frame(sock, "heartbeat", {"handled": 1})
            send_frame(sock, "heartbeat", {"handled": 1})  # no new progress
            send_frame(sock, "reply", ("ok", "payload"))
            deadline = time.monotonic() + 5.0
            while not shard.poll(0.05) and time.monotonic() < deadline:
                pass
            assert shard.recv_raw() == ("ok", "payload")
            assert shard.heartbeat_count() == 2  # one beat with progress + one reply
            shard.destroy()
            sock.close()
        finally:
            coordinator.close()


class TestRunShardWorker:
    def test_gives_up_when_coordinator_unreachable(self):
        # A port nothing listens on: the join loop must bound its retries.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        summary = run_shard_worker(
            f"127.0.0.1:{port}",
            "token",
            worker_id="lonely",
            max_reconnects=2,
            reconnect_backoff=0.01,
        )
        assert summary["worker"] == "lonely"
        assert summary["sessions"] == 0
        assert summary["assignments"] == 0
