"""Unit tests for the result dataclasses."""

import pytest

from repro.core.results import IntervalSelectionResult, IntervalTrial, PowerEstimate


def _estimate(**overrides):
    defaults = dict(
        circuit_name="s27",
        method="dipe",
        average_power_w=0.001,
        lower_bound_w=0.00095,
        upper_bound_w=0.00105,
        relative_half_width=0.05,
        sample_size=320,
        independence_interval=2,
        cycles_simulated=1000,
        elapsed_seconds=0.5,
        stopping_criterion="order-statistic",
        accuracy_met=True,
    )
    defaults.update(overrides)
    return PowerEstimate(**defaults)


class TestPowerEstimate:
    def test_milliwatt_conversion(self):
        assert _estimate().average_power_mw == pytest.approx(1.0)

    def test_relative_error_to_reference(self):
        estimate = _estimate(average_power_w=0.0011)
        assert estimate.relative_error_to(0.001) == pytest.approx(0.1)

    def test_relative_error_requires_positive_reference(self):
        with pytest.raises(ValueError):
            _estimate().relative_error_to(0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _estimate().sample_size = 1


class TestIntervalSelectionResult:
    def test_num_trials(self):
        trials = (
            IntervalTrial(interval=0, z_statistic=5.0, accepted=False, sequence_length=320),
            IntervalTrial(interval=1, z_statistic=0.8, accepted=True, sequence_length=320),
        )
        result = IntervalSelectionResult(
            interval=1,
            converged=True,
            trials=trials,
            significance_level=0.2,
            cycles_simulated=960,
        )
        assert result.num_trials == 2
        assert result.trials[-1].accepted
