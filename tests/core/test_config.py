"""Unit tests for the estimation configuration."""

import pytest

from repro.core.config import EstimationConfig


class TestEstimationConfig:
    def test_paper_defaults(self):
        config = EstimationConfig()
        assert config.significance_level == pytest.approx(0.20)
        assert config.randomness_sequence_length == 320
        assert config.max_relative_error == pytest.approx(0.05)
        assert config.confidence == pytest.approx(0.99)
        assert config.stopping_criterion == "order-statistic"
        assert config.power_model.vdd == pytest.approx(5.0)
        assert config.power_model.clock_frequency_hz == pytest.approx(20e6)

    def test_paper_defaults_helper(self):
        custom = EstimationConfig(randomness_sequence_length=64, stopping_criterion="clt")
        restored = custom.paper_defaults()
        assert restored.randomness_sequence_length == 320
        assert restored.stopping_criterion == "order-statistic"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"significance_level": 0.0},
            {"significance_level": 1.0},
            {"randomness_sequence_length": 4},
            {"max_independence_interval": -1},
            {"max_relative_error": 0.0},
            {"confidence": 1.2},
            {"stopping_criterion": "bogus"},
            {"min_samples": 1},
            {"check_interval": 0},
            {"min_samples": 100, "max_samples": 50},
            {"warmup_cycles": -1},
            {"power_simulator": "spice"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EstimationConfig(**kwargs)

    def test_frozen(self):
        config = EstimationConfig()
        with pytest.raises(AttributeError):
            config.confidence = 0.5
