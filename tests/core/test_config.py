"""Unit tests for the estimation configuration."""

import pytest

from repro.core.config import EstimationConfig


class TestEstimationConfig:
    def test_paper_defaults(self):
        config = EstimationConfig()
        assert config.significance_level == pytest.approx(0.20)
        assert config.randomness_sequence_length == 320
        assert config.max_relative_error == pytest.approx(0.05)
        assert config.confidence == pytest.approx(0.99)
        assert config.stopping_criterion == "order-statistic"
        assert config.power_model.vdd == pytest.approx(5.0)
        assert config.power_model.clock_frequency_hz == pytest.approx(20e6)

    def test_paper_defaults_helper(self):
        custom = EstimationConfig(randomness_sequence_length=64, stopping_criterion="clt")
        restored = custom.paper_defaults()
        assert restored.randomness_sequence_length == 320
        assert restored.stopping_criterion == "order-statistic"

    def test_paper_defaults_preserves_execution_and_budget_fields(self):
        """Regression: paper_defaults() used to silently reset these to defaults."""
        custom = EstimationConfig(
            stopping_criterion="clt",
            max_relative_error=0.10,
            num_chains=8,
            simulation_backend="numpy",
            min_samples=32,
            check_interval=8,
            max_samples=500,
            warmup_cycles=4,
        )
        restored = custom.paper_defaults()
        assert restored.stopping_criterion == "order-statistic"
        assert restored.max_relative_error == pytest.approx(0.05)
        assert restored.num_chains == 8
        assert restored.simulation_backend == "numpy"
        assert restored.min_samples == 32
        assert restored.check_interval == 8
        assert restored.max_samples == 500
        assert restored.warmup_cycles == 4

    def test_paper_defaults_preserves_event_driven_simulator(self):
        custom = EstimationConfig(power_simulator="event-driven", confidence=0.9)
        restored = custom.paper_defaults()
        assert restored.power_simulator == "event-driven"
        assert restored.confidence == pytest.approx(0.99)

    def test_dict_round_trip_bit_exact(self):
        import json

        config = EstimationConfig(
            max_relative_error=0.03, num_chains=4, simulation_backend="numpy"
        )
        restored = EstimationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_from_dict_accepts_partial(self):
        config = EstimationConfig.from_dict({"min_samples": 16, "check_interval": 8})
        assert config.min_samples == 16
        assert config.confidence == pytest.approx(0.99)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"significance_level": 0.0},
            {"significance_level": 1.0},
            {"randomness_sequence_length": 4},
            {"max_independence_interval": -1},
            {"max_relative_error": 0.0},
            {"confidence": 1.2},
            {"stopping_criterion": "bogus"},
            {"min_samples": 1},
            {"check_interval": 0},
            {"min_samples": 100, "max_samples": 50},
            {"warmup_cycles": -1},
            {"power_simulator": "spice"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EstimationConfig(**kwargs)

    def test_frozen(self):
        config = EstimationConfig()
        with pytest.raises(AttributeError):
            config.confidence = 0.5

    @pytest.mark.parametrize(
        "hosts", ["nohost", ":8642", "host:", "host:words", "host:70000"]
    )
    def test_invalid_worker_hosts_rejected(self, hosts):
        with pytest.raises(ValueError, match="worker_hosts"):
            EstimationConfig(worker_hosts=hosts)

    def test_invalid_worker_join_timeout_rejected(self):
        with pytest.raises(ValueError):
            EstimationConfig(worker_join_timeout=0.0)

    def test_distributed_fields_round_trip(self):
        import json

        config = EstimationConfig(
            worker_hosts="127.0.0.1:9750",
            worker_auth_token="secret",
            worker_join_timeout=5.0,
            num_workers=3,
        )
        restored = EstimationConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        assert restored.worker_hosts == "127.0.0.1:9750"
        assert restored.worker_auth_token == "secret"
