"""Chaos suite: injected worker faults never change a single merged sample.

Every test here drives :class:`ShardedPowerSampler` with a
:class:`~repro.faults.FaultSchedule` that kills, hangs, slows or garbles
workers at deterministic command positions, and asserts the merged stream is
bit-identical to a fault-free :class:`BatchPowerSampler` with the same seed.
The schedules are seed-deterministic, so a failing case replays exactly.

Command-index guide for the windows used below (every parent→worker message
counts): 0 build, 1 latch feed, 2 warmup pattern feed, 3 prepare, then each
sampling round costs 2 (pattern feed + sample_block).  Test workloads run
four rounds, so indices 2..11 are guaranteed to be reached.
"""

import json

import numpy as np
import pytest

from repro import faults
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sharded_sampler import ShardedPowerSampler, ShardWorkerError
from repro.faults import (
    FaultAction,
    FaultPlan,
    FaultSchedule,
    active_schedule,
    inject,
    schedule_from_env,
)
from repro.stimulus.random_inputs import BernoulliStimulus


def _chaos_config(**overrides):
    """Fast supervision knobs so injected faults recover in milliseconds."""
    defaults = dict(
        warmup_cycles=8,
        worker_retry_backoff=0.01,
        worker_hang_timeout=0.5,
    )
    defaults.update(overrides)
    return EstimationConfig(**defaults)


def _pair(circuit, chains, workers, schedule, config=None, rng=7, start_method="fork"):
    """(fault-free reference, fault-injected sharded) sampler pair."""
    config = config or _chaos_config()
    reference = BatchPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=rng,
        num_chains=chains,
    )
    sharded = ShardedPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=rng,
        num_chains=chains,
        num_workers=workers,
        start_method=start_method,
        fault_schedule=schedule,
    )
    return reference, sharded


def _assert_rounds_identical(reference, sharded, chains, rounds=4):
    """Draw *rounds* sample blocks from both samplers; all must match exactly."""
    for _ in range(rounds):
        assert np.array_equal(
            reference.sample_block(1, 2 * chains), sharded.sample_block(1, 2 * chains)
        )
    assert reference.cycles_simulated == sharded.cycles_simulated


class TestScheduleModel:
    def test_action_validation(self):
        with pytest.raises(ValueError):
            FaultAction(kind="explode")
        with pytest.raises(ValueError):
            FaultAction(kind="kill", point="midair")
        with pytest.raises(ValueError):
            FaultAction(kind="garble", point="handle")  # garble replaces the reply
        with pytest.raises(ValueError):
            FaultAction(kind="kill", command=-1)
        with pytest.raises(ValueError):
            FaultAction(kind="hang", seconds=-0.1)

    def test_seeded_is_deterministic(self):
        a = FaultSchedule.seeded(42, num_workers=3, kills=4, storm=2)
        b = FaultSchedule.seeded(42, num_workers=3, kills=4, storm=2)
        assert a == b
        assert a.total_actions == 6  # 4 kills + 2 storm respawn kills
        assert a != FaultSchedule.seeded(43, num_workers=3, kills=4, storm=2)

    def test_json_roundtrip(self):
        schedule = FaultSchedule.seeded(7, num_workers=4, kills=5, kinds=("kill", "garble"))
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert json.loads(schedule.to_json())["plans"]  # stable wire shape

    def test_single(self):
        schedule = FaultSchedule.single(1, "hang", point="recv", command=5, seconds=0.2)
        plan = schedule.plan_for(1, 0)
        assert plan.at(5, "recv") == FaultAction("hang", "recv", 5, 0.2)
        assert schedule.plan_for(0, 0) is None
        assert schedule.plan_for(1, 1) is None

    def test_env_and_context_activation(self, monkeypatch):
        schedule = FaultSchedule.single(0, "kill", command=3)
        monkeypatch.setenv("REPRO_FAULTS", schedule.to_json())
        assert schedule_from_env() == schedule
        assert active_schedule() == schedule
        override = FaultSchedule.single(1, "slow", command=2)
        with inject(override):
            assert active_schedule() == override
        assert active_schedule() == schedule
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_schedule() is None


class TestKillRecovery:
    """Killed workers are respawned and replayed without changing the stream."""

    @pytest.mark.parametrize("point", ["recv", "handle", "reply"])
    def test_kill_at_each_injection_point(self, s298_circuit, point):
        schedule = FaultSchedule.single(1, "kill", point=point, command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 1

    def test_incidents_are_typed_and_drained(self, s298_circuit):
        schedule = FaultSchedule.single(0, "kill", point="handle", command=4)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128, rounds=1)
            incidents = sharded.take_fault_incidents()
            assert [incident["kind"] for incident in incidents] == ["lost", "recovered"]
            lost, recovered = incidents
            assert lost["worker"] == 0
            assert lost["reason"] == "died"
            assert lost["exitcode"] == faults.KILLED_EXIT_CODE
            assert recovered["worker"] == 0
            assert recovered["respawns"] == 1
            assert recovered["replayed"] >= 1
            assert recovered["seconds"] >= 0.0
            assert recovered["degraded"] is False
            assert sharded.take_fault_incidents() == []  # drained

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_kill_property(self, s298_circuit, seed):
        """Random kills at random points never change the merged stream."""
        schedule = FaultSchedule.seeded(
            seed, num_workers=2, kills=2, window=(2, 12), points=("recv", "handle")
        )
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, rng=seed + 11)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts >= 1

    def test_respawn_storm(self, s298_circuit):
        """Killing the replacements too still converges bit-identically."""
        schedule = FaultSchedule(
            {
                (0, 0): FaultPlan((FaultAction("kill", "handle", 5),)),
                (0, 1): FaultPlan((FaultAction("kill", "recv", 4),)),
                (0, 2): FaultPlan((FaultAction("kill", "recv", 3),)),
            }
        )
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 3
            assert not any(seat.degraded for seat in sharded._handles)

    def test_kill_during_checkpoint_roundtrip(self, s298_circuit):
        """A kill interleaved with get_state still checkpoints bit-identically."""
        schedule = FaultSchedule.single(1, "kill", point="recv", command=7)
        reference, sharded = _pair(s298_circuit, 100, 2, schedule, rng=19)
        with sharded:
            reference.prepare()
            sharded.prepare()
            assert np.array_equal(reference.next_samples(1), sharded.next_samples(1))
            snapshot = sharded.get_state()
            expected = reference.next_samples(1)
            assert np.array_equal(expected, sharded.next_samples(1))
            # The snapshot restores into a fresh in-process sampler exactly.
            target = BatchPowerSampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                _chaos_config(),
                rng=0,
                num_chains=100,
            )
            target.set_state(snapshot)
            assert np.array_equal(target.next_samples(1), expected)


class TestHangAndGarble:
    def test_hang_is_detected_and_recovered(self, s298_circuit):
        schedule = FaultSchedule.single(1, "hang", point="handle", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 1
            reasons = [i["reason"] for i in sharded.take_fault_incidents() if i["kind"] == "lost"]
            assert reasons == ["hung"]

    def test_garbled_reply_triggers_replay(self, s298_circuit):
        schedule = FaultSchedule.single(0, "garble", point="reply", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 1
            reasons = [i["reason"] for i in sharded.take_fault_incidents() if i["kind"] == "lost"]
            assert reasons == ["garbled"]

    def test_slow_worker_is_not_recovered(self, s298_circuit):
        """A slow-but-alive worker must not be declared dead."""
        schedule = FaultSchedule.single(1, "slow", point="handle", command=5, seconds=0.1)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 0
            assert sharded.take_fault_incidents() == []


class TestDegradation:
    def test_exhausted_budget_degrades_then_heals(self, s298_circuit):
        """Past the restart budget the seat degrades; the pool re-partitions."""
        config = _chaos_config(worker_max_restarts=0)
        schedule = FaultSchedule.single(1, "kill", point="handle", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, config=config)
        with sharded:
            # Round with the kill: finishes on the clean in-process fallback.
            assert np.array_equal(
                reference.sample_block(1, 256), sharded.sample_block(1, 256)
            )
            incidents = sharded.take_fault_incidents()
            assert incidents[-1]["kind"] == "recovered"
            assert incidents[-1]["degraded"] is True
            # Next round boundary folds the seat out onto the survivors.
            _assert_rounds_identical(reference, sharded, 128, rounds=2)
            assert sharded.num_workers == 1
            assert len(sharded._handles) == 1
            assert not sharded._handles[0].degraded

    def test_all_seats_degraded_keeps_pool(self, s27_circuit):
        """When every seat degrades there is nowhere to heal to — keep running."""
        config = _chaos_config(worker_max_restarts=0)
        schedule = FaultSchedule(
            {
                (0, 0): FaultPlan((FaultAction("kill", "handle", 4),)),
                (1, 0): FaultPlan((FaultAction("kill", "handle", 4),)),
            }
        )
        reference, sharded = _pair(s27_circuit, 128, 2, schedule, config=config)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.num_workers == 2
            assert all(seat.degraded for seat in sharded._handles)


class TestSerialTransport:
    """The in-process pool exercises the same supervisor via simulated deaths."""

    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_simulated_death_recovers(self, s298_circuit, kind):
        schedule = FaultSchedule.single(1, kind, point="handle", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, start_method="serial")
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 1
            lost = [i for i in sharded.take_fault_incidents() if i["kind"] == "lost"]
            assert lost[0]["pid"] is None  # no process behind the serial seat

    def test_serial_garble(self, s298_circuit):
        schedule = FaultSchedule.single(0, "garble", point="reply", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, start_method="serial")
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 1


class TestShardWorkerError:
    """Deterministic worker errors surface typed, not retried forever."""

    def test_remote_error_fields_process(self, s27_circuit):
        _, sharded = _pair(s27_circuit, 64, 2, None)
        with sharded:
            sharded.sample_block(1, 64)  # drain construction traffic
            seat = sharded._handles[0]
            seat.send("no_such_command")
            with pytest.raises(ShardWorkerError) as excinfo:
                seat.collect()
            error = excinfo.value
            assert error.shard_index == 0
            assert error.pid is not None
            assert error.exitcode is None  # the worker survives its own error
            assert "unknown shard command" in error.remote_traceback
            assert error.reason == "remote-error"
            assert "shard 0" in str(error)

    def test_remote_error_fields_serial(self, s27_circuit):
        _, sharded = _pair(s27_circuit, 64, 2, None, start_method="serial")
        with sharded:
            sharded.sample_block(1, 64)
            seat = sharded._handles[1]
            seat.send("no_such_command")
            with pytest.raises(ShardWorkerError) as excinfo:
                seat.collect()
            assert excinfo.value.shard_index == 1
            assert excinfo.value.pid is None
            assert sharded.worker_restarts == 0  # errors are not respawned


class TestEstimatorIntegration:
    """Faults during a full DIPE run: identical estimate + worker events."""

    def test_dipe_run_with_ambient_kills_emits_events(self, s27_circuit):
        from repro.api.events import WorkerLost, WorkerRecovered

        kwargs = dict(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=2000,
            warmup_cycles=16,
            max_independence_interval=8,
            num_chains=128,  # both shards own lanes, so both kills fire
            worker_retry_backoff=0.01,
        )
        baseline = DipeEstimator(
            s27_circuit, config=EstimationConfig(**kwargs), rng=9
        ).estimate()
        schedule = FaultSchedule(
            {
                (0, 0): FaultPlan((FaultAction("kill", "handle", 5),)),
                (1, 0): FaultPlan((FaultAction("kill", "recv", 8),)),
            }
        )
        with inject(schedule):
            events = list(
                DipeEstimator(
                    s27_circuit, config=EstimationConfig(num_workers=2, **kwargs), rng=9
                ).run()
            )
        lost = [e for e in events if isinstance(e, WorkerLost)]
        recovered = [e for e in events if isinstance(e, WorkerRecovered)]
        assert len(lost) == 2 and len(recovered) == 2
        assert {e.worker for e in lost} == {0, 1}
        for event in recovered:
            assert event.respawns >= 1
            assert event.replayed_commands >= 1
            assert event.recovery_seconds >= 0.0
        estimate = events[-1].estimate
        assert estimate.average_power_w == baseline.average_power_w
        assert (
            estimate.samples_switched_capacitance_f
            == baseline.samples_switched_capacitance_f
        )
        assert estimate.cycles_simulated == baseline.cycles_simulated

    def test_worker_events_serialize(self):
        from repro.api.events import WorkerLost, WorkerRecovered, event_from_dict

        common = dict(circuit="s27", method="dipe", samples_drawn=10, cycles_simulated=100)
        lost = WorkerLost(**common, worker=1, pid=1234, exitcode=87, reason="died")
        assert event_from_dict(lost.to_dict()) == lost
        recovered = WorkerRecovered(**common, worker=1, respawns=2, replayed_commands=7)
        assert event_from_dict(recovered.to_dict()) == recovered


class TestConfigKnobs:
    def test_supervision_knob_validation(self):
        with pytest.raises(ValueError):
            EstimationConfig(worker_max_restarts=-1)
        with pytest.raises(ValueError):
            EstimationConfig(worker_hang_timeout=0.0)
        with pytest.raises(ValueError):
            EstimationConfig(worker_retry_backoff=-0.1)
        with pytest.raises(ValueError):
            EstimationConfig(shard_sync_interval=0)

    def test_knobs_roundtrip_config_dict(self):
        config = EstimationConfig(
            worker_max_restarts=5, worker_hang_timeout=9.0, shard_sync_interval=4
        )
        assert EstimationConfig.from_dict(config.to_dict()) == config


class TestEnvScheduleValidation:
    """Malformed ``REPRO_FAULTS`` fails with a named-field error, not a raw decode."""

    @pytest.mark.parametrize(
        "text",
        [
            "{not json",
            "[]",
            '{"plans": [{"incarnation": 0}]}',
            '{"plans": [{"shard": 0, "actions": [{"kind": "explode"}]}]}',
            '{"plans": [{"shard": 0, "actions": [{"kind": "kill", "command": -3}]}]}',
        ],
    )
    def test_malformed_env_raises_named_value_error(self, monkeypatch, text):
        monkeypatch.setenv("REPRO_FAULTS", text)
        with pytest.raises(ValueError, match="invalid 'REPRO_FAULTS'"):
            schedule_from_env()

    def test_valid_env_still_parses(self, monkeypatch):
        schedule = FaultSchedule.single(0, "drop-connection", command=4)
        monkeypatch.setenv("REPRO_FAULTS", schedule.to_json())
        assert schedule_from_env() == schedule


class TestNetworkKindNormalization:
    """Network fault kinds degrade to process-level analogues off the socket
    transport, so one schedule drives every transport bit-identically."""

    def test_socket_mode_raises_typed_network_fault(self):
        plan = FaultPlan((FaultAction("slow-link", "handle", 0, 0.5),))
        injector = faults.FaultInjector(plan, mode="socket")
        command = injector.begin()
        with pytest.raises(faults.InjectedNetworkFault) as excinfo:
            injector.trip(command, "handle")
        assert excinfo.value.kind == "slow-link"
        assert excinfo.value.seconds == 0.5

    @pytest.mark.parametrize(
        "kind,reason",
        [("drop-connection", "killed"), ("truncated-frame", "killed"), ("partition", "hung")],
    )
    def test_local_mode_normalizes_to_simulated_death(self, kind, reason):
        plan = FaultPlan((FaultAction(kind, "handle", 0),))
        injector = faults.FaultInjector(plan, mode="local")
        command = injector.begin()
        with pytest.raises(faults.SimulatedWorkerDeath) as excinfo:
            injector.trip(command, "handle")
        assert excinfo.value.reason == reason

    @pytest.mark.parametrize("kind", ["drop-connection", "truncated-frame"])
    @pytest.mark.parametrize("start_method", ["fork", "serial"])
    def test_connection_faults_recover_bit_identical(self, s298_circuit, kind, start_method):
        schedule = FaultSchedule.single(0, kind, point="handle", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, start_method=start_method)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts >= 1

    @pytest.mark.parametrize("start_method", ["fork", "serial"])
    def test_partition_recovers_bit_identical(self, s298_circuit, start_method):
        schedule = FaultSchedule.single(0, "partition", point="handle", command=5)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, start_method=start_method)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts >= 1

    @pytest.mark.parametrize("start_method", ["fork", "serial"])
    def test_slow_link_is_not_recovered(self, s298_circuit, start_method):
        schedule = FaultSchedule.single(0, "slow-link", point="handle", command=5, seconds=0.01)
        reference, sharded = _pair(s298_circuit, 128, 2, schedule, start_method=start_method)
        with sharded:
            _assert_rounds_identical(reference, sharded, 128)
            assert sharded.worker_restarts == 0


class TestBackoffJitter:
    """Respawn backoff draws full jitter from a dedicated parent-owned stream."""

    class _DummyTransport:
        kind = "dummy"
        pid = 4242
        exitcode = None

        def heartbeat_count(self):
            return 0

        def is_alive(self):
            return True

        def send_raw(self, message):
            pass

        def poll(self, timeout):
            return False

        def recv_raw(self):
            raise AssertionError("not used")

        def destroy(self):
            pass

        def stop(self):
            pass

    def _seat(self, index, backoff=0.1, max_restarts=50):
        from repro.core.sharded_sampler import _SupervisedShard

        dummy = self._DummyTransport
        return _SupervisedShard(
            lambda incarnation: dummy(),
            index,
            fallback=dummy,
            max_restarts=max_restarts,
            hang_timeout=1.0,
            backoff=backoff,
            on_incident=None,
        )

    def _recorded_sleeps(self, seat, failures, monkeypatch):
        from repro.core.transport import WorkerDown

        sleeps = []
        monkeypatch.setattr("time.sleep", sleeps.append)
        for _ in range(failures):
            seat._recover(WorkerDown("died", pid=4242))
        return sleeps

    def test_sleeps_are_uniform_draws_under_the_exponential_cap(self, monkeypatch):
        seat = self._seat(0, backoff=0.1)
        sleeps = self._recorded_sleeps(seat, 8, monkeypatch)
        assert len(sleeps) == 8
        for attempt, slept in enumerate(sleeps, start=1):
            ceiling = min(0.1 * 2 ** (attempt - 1), 2.0)
            assert 0.0 <= slept <= ceiling
        # Full jitter, not deterministic exponential: the draws must not all
        # sit exactly on their ceilings.
        assert any(
            slept < min(0.1 * 2 ** (attempt - 1), 2.0) * 0.999
            for attempt, slept in enumerate(sleeps, start=1)
        )

    def test_jitter_stream_is_per_seat_and_reproducible(self, monkeypatch):
        first = self._recorded_sleeps(self._seat(0), 4, monkeypatch)
        again = self._recorded_sleeps(self._seat(0), 4, monkeypatch)
        other = self._recorded_sleeps(self._seat(1), 4, monkeypatch)
        assert first == again  # seeded per seat: reproducible
        assert first != other  # but desynchronised across seats

    def test_jitter_never_touches_the_run_rng(self, s298_circuit):
        # Two identical runs, one with a respawn storm: same merged samples,
        # pinned already by the chaos tests — here we pin that the jitter RNG
        # is seeded from the seat index alone (no global state involved).
        seat_a = self._seat(3)
        seat_b = self._seat(3)
        assert seat_a._jitter_rng.uniform() == seat_b._jitter_rng.uniform()
