"""Unit tests for the DIPE estimator."""

import pytest

from repro.circuits.iscas89 import build_circuit
from repro.circuits.library import s27
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator, estimate_average_power
from repro.fsm.exact_power import exact_average_power
from repro.stimulus.random_inputs import BernoulliStimulus


class TestDipeEstimator:
    def test_estimate_matches_exact_power_on_s27(self, s27_circuit, quick_config):
        exact = exact_average_power(s27_circuit, 0.5)
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=1).estimate()
        assert estimate.average_power_w == pytest.approx(exact, rel=0.08)
        assert estimate.accuracy_met

    def test_accepts_netlist_input(self, quick_config):
        estimate = estimate_average_power(s27(), config=quick_config, rng=2)
        assert estimate.circuit_name == "s27"
        assert estimate.average_power_w > 0

    def test_diagnostics_populated(self, s27_circuit, quick_config):
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=3).estimate()
        assert estimate.method == "dipe"
        assert estimate.stopping_criterion == "order-statistic"
        assert estimate.interval_selection is not None
        assert estimate.sample_size == len(estimate.samples_switched_capacitance_f)
        assert estimate.cycles_simulated >= estimate.sample_size
        assert estimate.lower_bound_w <= estimate.average_power_w <= estimate.upper_bound_w

    def test_sample_size_is_multiple_of_check_interval(self, s27_circuit, quick_config):
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=4).estimate()
        assert estimate.sample_size % quick_config.check_interval == 0

    def test_reproducible_for_same_seed(self, s27_circuit, quick_config):
        first = DipeEstimator(s27_circuit, config=quick_config, rng=7).estimate()
        second = DipeEstimator(s27_circuit, config=quick_config, rng=7).estimate()
        assert first.average_power_w == pytest.approx(second.average_power_w)
        assert first.sample_size == second.sample_size
        assert first.independence_interval == second.independence_interval

    def test_max_samples_cap_respected(self, s27_circuit):
        config = EstimationConfig(
            randomness_sequence_length=32,
            min_samples=32,
            check_interval=16,
            max_samples=64,
            warmup_cycles=8,
            max_relative_error=0.001,  # unreachable accuracy
        )
        estimate = DipeEstimator(s27_circuit, config=config, rng=5).estimate()
        assert estimate.sample_size <= config.max_samples
        assert not estimate.accuracy_met

    def test_relative_half_width_meets_specification(self, s27_circuit, quick_config):
        estimate = DipeEstimator(s27_circuit, config=quick_config, rng=6).estimate()
        assert estimate.relative_half_width <= quick_config.max_relative_error

    def test_custom_stimulus_accepted(self, s27_circuit, quick_config):
        stimulus = BernoulliStimulus(4, 0.8)
        estimate = DipeEstimator(
            s27_circuit, stimulus=stimulus, config=quick_config, rng=8
        ).estimate()
        assert estimate.average_power_w > 0

    def test_clt_and_ks_criteria_also_run(self, s27_circuit):
        for criterion in ("clt", "ks"):
            config = EstimationConfig(
                randomness_sequence_length=64,
                min_samples=64,
                check_interval=32,
                max_samples=8000,
                warmup_cycles=16,
                stopping_criterion=criterion,
            )
            estimate = DipeEstimator(s27_circuit, config=config, rng=9).estimate()
            assert estimate.stopping_criterion in ("clt", "kolmogorov-smirnov")
            assert estimate.average_power_w > 0

    def test_benchmark_circuit_estimate_close_to_reference(self, quick_config):
        from repro.power.reference import estimate_reference_power

        circuit = build_circuit("s298")
        reference = estimate_reference_power(
            circuit, BernoulliStimulus(circuit.num_inputs, 0.5), total_cycles=30_000, rng=10
        )
        estimate = DipeEstimator(circuit, config=quick_config, rng=11).estimate()
        assert estimate.relative_error_to(reference.average_power_w) < 0.08
