"""Cross-host distributed sampling over localhost TCP: chaos and bit-identity.

Every test spins up real ``run_shard_worker`` processes against a
:class:`ShardCoordinator` on an ephemeral loopback port and pins the one
contract that matters: the merged sample stream is **draw-for-draw
identical** to the single-process :class:`BatchPowerSampler` for any
topology and any injected network failure — connection drops, partitions,
slow links, truncated frames, stale-epoch reconnects, and elastic
membership changes (workers joining and leaving mid-run).
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import socket
import time

import numpy as np
import pytest

from repro.api.events import EstimateCompleted, WorkerJoined
from repro.core.batch_sampler import BatchPowerSampler, make_sampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sharded_sampler import ShardedPowerSampler
from repro.core.transport import ShardCoordinator
from repro.faults import KILLED_EXIT_CODE, FaultSchedule
from repro.stimulus.random_inputs import BernoulliStimulus

_TOKEN = "test-secret"
_CHAINS = 128
_ROUNDS = 4
_DRAW = 3

#: First sampling-round commands: 0 build, 1 latch feed, 2 warmup feed,
#: 3 prepare, then (feed, sample) per round — 5 is the first sample command.
_MID_RUN_COMMAND = 5


def _worker_main(port: int, token: str) -> None:
    from repro.core.transport import run_shard_worker

    run_shard_worker(
        f"127.0.0.1:{port}",
        token,
        max_reconnects=400,
        reconnect_backoff=0.05,
    )


def _start_workers(port: int, count: int) -> list:
    ctx = mp.get_context("fork")
    workers = [
        ctx.Process(target=_worker_main, args=(port, _TOKEN), daemon=True)
        for _ in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


def _reap(workers: list) -> list:
    """Join every worker (terminating stragglers); return their exit codes."""
    codes = []
    for worker in workers:
        worker.join(timeout=10.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)
        codes.append(worker.exitcode)
    return codes


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _config(**overrides) -> EstimationConfig:
    settings = dict(
        warmup_cycles=8,
        worker_retry_backoff=0.01,
        worker_join_timeout=15.0,
    )
    settings.update(overrides)
    return EstimationConfig(**settings)


def _reference(circuit, config) -> list[np.ndarray]:
    sampler = BatchPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=7,
        num_chains=_CHAINS,
    )
    return [sampler.next_samples(_DRAW) for _ in range(_ROUNDS)]


def _run_distributed(circuit, config, workers=2, schedule=None, rounds=_ROUNDS):
    """One distributed run; returns (blocks, incidents, coordinator-stats)."""
    coordinator = ShardCoordinator(token=_TOKEN)
    procs = _start_workers(coordinator.port, workers)
    stats: dict = {}
    try:
        sampler = ShardedPowerSampler(
            circuit,
            BernoulliStimulus(circuit.num_inputs, 0.5),
            config,
            rng=7,
            num_chains=_CHAINS,
            num_workers=workers,
            fault_schedule=schedule,
            coordinator=coordinator,
        )
        with sampler:
            blocks = [sampler.next_samples(_DRAW) for _ in range(rounds)]
            incidents = sampler.take_fault_incidents()
            stats.update(
                fenced_rejects=coordinator.fenced_rejects,
                num_workers=sampler.num_workers,
                restarts=sampler.worker_restarts,
            )
        return blocks, incidents, stats
    finally:
        coordinator.close()
        stats["exit_codes"] = _reap(procs)


def _assert_identical(expected, got):
    assert len(expected) == len(got)
    for reference_block, merged_block in zip(expected, got):
        np.testing.assert_array_equal(reference_block, merged_block)


class TestDistributedMerge:
    @pytest.mark.parametrize("engine", ["zero-delay", "event-driven"])
    def test_bit_identical_to_in_process(self, s298_circuit, engine):
        config = _config(power_simulator=engine)
        expected = _reference(s298_circuit, config)
        got, incidents, stats = _run_distributed(s298_circuit, config)
        _assert_identical(expected, got)
        assert stats["restarts"] == 0
        joined = [i for i in incidents if i["kind"] == "joined"]
        assert len(joined) >= 2
        assert stats["exit_codes"] == [0, 0]  # released workers exit cleanly

    def test_three_workers_same_stream(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        got, _, stats = _run_distributed(s298_circuit, config, workers=3)
        _assert_identical(expected, got)
        assert stats["num_workers"] == 3


class TestNetworkChaos:
    def test_drop_connection_recovers_and_fences(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        schedule = FaultSchedule.single(
            0, "drop-connection", point="handle", command=_MID_RUN_COMMAND
        )
        got, incidents, stats = _run_distributed(s298_circuit, config, schedule=schedule)
        _assert_identical(expected, got)
        lost = [i for i in incidents if i["kind"] == "lost"]
        assert lost and lost[0]["worker"] == 0
        assert any(i["kind"] == "recovered" and not i["degraded"] for i in incidents)
        # The dropped worker tried to resume with its stale epoch and was
        # fenced before rejoining as a fresh member.
        assert stats["fenced_rejects"] >= 1
        assert stats["num_workers"] == 2

    def test_truncated_frame_detected_and_recovered(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        schedule = FaultSchedule.single(
            0, "truncated-frame", point="handle", command=_MID_RUN_COMMAND
        )
        got, incidents, stats = _run_distributed(s298_circuit, config, schedule=schedule)
        _assert_identical(expected, got)
        lost = [i for i in incidents if i["kind"] == "lost"]
        assert lost and lost[0]["reason"] == "truncated"
        assert stats["restarts"] >= 1

    def test_partition_heals_after_hang_detection(self, s298_circuit):
        config = _config(worker_hang_timeout=0.5)
        expected = _reference(s298_circuit, config)
        schedule = FaultSchedule.single(
            0, "partition", point="handle", command=_MID_RUN_COMMAND, seconds=2.0
        )
        got, incidents, stats = _run_distributed(s298_circuit, config, schedule=schedule)
        _assert_identical(expected, got)
        lost = [i for i in incidents if i["kind"] == "lost"]
        assert lost and lost[0]["reason"] in ("hung", "partitioned")
        assert stats["restarts"] >= 1

    def test_slow_link_degrades_without_recovery(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        schedule = FaultSchedule.single(
            0, "slow-link", point="handle", command=_MID_RUN_COMMAND, seconds=0.01
        )
        got, incidents, stats = _run_distributed(s298_circuit, config, schedule=schedule)
        _assert_identical(expected, got)
        # A slow link is degraded, not dead: the supervisor must NOT respawn.
        assert stats["restarts"] == 0
        assert not any(i["kind"] == "lost" for i in incidents)


class TestElasticMembership:
    def test_mid_run_join_grows_pool(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        coordinator = ShardCoordinator(token=_TOKEN)
        first = _start_workers(coordinator.port, 1)
        late = []
        try:
            sampler = ShardedPowerSampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                config,
                rng=7,
                num_chains=_CHAINS,
                num_workers=1,
                coordinator=coordinator,
            )
            with sampler:
                blocks = [sampler.next_samples(_DRAW)]
                late = _start_workers(coordinator.port, 1)
                deadline = time.monotonic() + 10.0
                while coordinator.pending_count() == 0 and time.monotonic() < deadline:
                    time.sleep(0.05)
                blocks.extend(sampler.next_samples(_DRAW) for _ in range(_ROUNDS - 1))
                incidents = sampler.take_fault_incidents()
                grown = sampler.num_workers
            _assert_identical(expected, blocks)
            assert grown == 2
            assert sum(1 for i in incidents if i["kind"] == "joined") >= 2
        finally:
            coordinator.close()
            assert _reap(first + late) == [0, 0]

    def test_mid_run_leave_shrinks_pool(self, s298_circuit):
        # A socket-mode kill is a permanent host loss: no pending member is
        # left to re-acquire, the seat degrades to a local replica, and the
        # next round boundary folds it off the partition.
        config = _config(worker_join_timeout=0.75)
        expected = _reference(s298_circuit, config)
        schedule = FaultSchedule.single(0, "kill", point="recv", command=_MID_RUN_COMMAND)
        got, incidents, stats = _run_distributed(s298_circuit, config, schedule=schedule)
        _assert_identical(expected, got)
        assert stats["num_workers"] == 1
        assert any(i["kind"] == "recovered" and i["degraded"] for i in incidents)
        left = [i for i in incidents if i["kind"] == "left"]
        assert any(i["reason"] == "exhausted-restarts" for i in left)
        assert KILLED_EXIT_CODE in stats["exit_codes"]

    def test_fewer_members_than_requested_shrinks_at_start(self, s298_circuit):
        config = _config(worker_join_timeout=1.0)
        expected = _reference(s298_circuit, config)
        got, _, stats = _run_distributed(s298_circuit, config, workers=1)
        _assert_identical(expected, got)
        assert stats["num_workers"] == 1

    def test_no_members_is_a_clear_error(self, s298_circuit):
        coordinator = ShardCoordinator(token=_TOKEN)
        try:
            with pytest.raises(RuntimeError, match="repro shard-worker --connect"):
                ShardedPowerSampler(
                    s298_circuit,
                    BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                    _config(worker_join_timeout=0.2),
                    rng=7,
                    num_chains=_CHAINS,
                    num_workers=2,
                    coordinator=coordinator,
                )
        finally:
            coordinator.close()


class TestCheckpointInterchange:
    def test_distributed_checkpoint_resumes_in_process(self, s298_circuit):
        config = _config()
        reference = BatchPowerSampler(
            s298_circuit,
            BernoulliStimulus(s298_circuit.num_inputs, 0.5),
            config,
            rng=7,
            num_chains=_CHAINS,
        )
        expected = [reference.next_samples(_DRAW) for _ in range(_ROUNDS)]

        coordinator = ShardCoordinator(token=_TOKEN)
        procs = _start_workers(coordinator.port, 2)
        try:
            sampler = ShardedPowerSampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                config,
                rng=7,
                num_chains=_CHAINS,
                num_workers=2,
                coordinator=coordinator,
            )
            with sampler:
                first_half = [sampler.next_samples(_DRAW) for _ in range(2)]
                state = sampler.get_state()
        finally:
            coordinator.close()
            _reap(procs)

        resumed = BatchPowerSampler(
            s298_circuit,
            BernoulliStimulus(s298_circuit.num_inputs, 0.5),
            config,
            rng=0,
            num_chains=_CHAINS,
        )
        resumed.set_state(state)
        second_half = [resumed.next_samples(_DRAW) for _ in range(2)]
        _assert_identical(expected, first_half + second_half)


class TestConfigActivation:
    def test_env_hosts_select_distributed_pool(self, s298_circuit, monkeypatch):
        config = _config()
        expected = _reference(s298_circuit, config)
        port = _free_port()
        procs = _start_workers(port, 2)
        try:
            monkeypatch.setenv("REPRO_SHARD_HOSTS", f"127.0.0.1:{port}")
            monkeypatch.setenv("REPRO_SHARD_TOKEN", _TOKEN)
            sampler = make_sampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                _config(num_workers=2, num_chains=_CHAINS),
                rng=7,
            )
            assert isinstance(sampler, ShardedPowerSampler)
            with sampler:
                got = [sampler.next_samples(_DRAW) for _ in range(_ROUNDS)]
                assert all(h.transport.kind == "socket" for h in sampler._handles)
            _assert_identical(expected, got)
        finally:
            assert _reap(procs) == [0, 0]

    def test_worker_hosts_config_field(self, s298_circuit):
        config = _config()
        expected = _reference(s298_circuit, config)
        port = _free_port()
        procs = _start_workers(port, 2)
        try:
            distributed_config = _config(
                num_workers=2,
                num_chains=_CHAINS,
                worker_hosts=f"127.0.0.1:{port}",
                worker_auth_token=_TOKEN,
            )
            sampler = make_sampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                distributed_config,
                rng=7,
            )
            assert isinstance(sampler, ShardedPowerSampler)
            with sampler:
                got = [sampler.next_samples(_DRAW) for _ in range(_ROUNDS)]
            _assert_identical(expected, got)
        finally:
            assert _reap(procs) == [0, 0]


class TestEstimatorIntegration:
    def test_dipe_estimate_and_events_over_tcp(self, s298_circuit):
        config_kw = dict(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=600,
            warmup_cycles=16,
            max_independence_interval=8,
            num_chains=_CHAINS,
        )
        local = DipeEstimator(
            s298_circuit, config=EstimationConfig(**config_kw, num_workers=1), rng=11
        )
        local_events = list(local.run())
        baseline = next(
            e for e in reversed(local_events) if isinstance(e, EstimateCompleted)
        ).estimate

        port = _free_port()
        procs = _start_workers(port, 2)
        try:
            config = _config(
                **config_kw,
                num_workers=2,
                worker_hosts=f"127.0.0.1:{port}",
                worker_auth_token=_TOKEN,
            )
            events = list(DipeEstimator(s298_circuit, config=config, rng=11).run())
            # The estimator's sampler releases its workers (and closes the
            # coordinator it owns) from a weakref finalizer — force it now.
            gc.collect()
        finally:
            assert _reap(procs) == [0, 0]
        estimate = next(
            e for e in reversed(events) if isinstance(e, EstimateCompleted)
        ).estimate
        assert np.array_equal(
            estimate.samples_switched_capacitance_f, baseline.samples_switched_capacitance_f
        )
        assert estimate.average_power_w == baseline.average_power_w
        assert estimate.sample_size == baseline.sample_size
        assert estimate.cycles_simulated == baseline.cycles_simulated
        joins = [e for e in events if isinstance(e, WorkerJoined)]
        assert len(joins) >= 2
        assert all(event.epoch > 0 and event.host for event in joins)


def test_module_guard_for_fork_platform():
    """These tests assume a fork-capable platform (as the suite's CI is)."""
    assert "fork" in mp.get_all_start_methods() or os.name == "nt"
