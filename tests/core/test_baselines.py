"""Unit tests for the baseline estimators."""

import pytest

from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator
from repro.fsm.exact_power import exact_average_power


class TestConsecutiveCycleEstimator:
    def test_estimates_close_to_exact_power(self, s27_circuit, quick_config):
        exact = exact_average_power(s27_circuit, 0.5)
        estimate = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=1).estimate()
        assert estimate.method == "consecutive-mc"
        assert estimate.independence_interval == 0
        assert estimate.average_power_w == pytest.approx(exact, rel=0.10)

    def test_uses_clt_stopping_by_default(self, s27_circuit, quick_config):
        estimate = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=2).estimate()
        assert estimate.stopping_criterion == "clt"

    def test_no_interval_selection_diagnostics(self, s27_circuit, quick_config):
        estimate = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=3).estimate()
        assert estimate.interval_selection is None

    def test_cycles_equal_warmup_plus_samples(self, s27_circuit, quick_config):
        estimate = ConsecutiveCycleEstimator(s27_circuit, config=quick_config, rng=4).estimate()
        assert estimate.cycles_simulated == quick_config.warmup_cycles + estimate.sample_size


class TestFixedWarmupEstimator:
    def test_estimates_close_to_exact_power(self, s27_circuit, quick_config):
        exact = exact_average_power(s27_circuit, 0.5)
        estimate = FixedWarmupEstimator(
            s27_circuit, config=quick_config, rng=5, warmup_period=20
        ).estimate()
        assert estimate.method == "fixed-warmup"
        assert estimate.average_power_w == pytest.approx(exact, rel=0.10)

    def test_interval_reports_warmup_period(self, s27_circuit, quick_config):
        estimate = FixedWarmupEstimator(
            s27_circuit, config=quick_config, rng=6, warmup_period=25
        ).estimate()
        assert estimate.independence_interval == 25

    def test_costs_more_cycles_than_consecutive_sampling(self, s27_circuit, quick_config):
        """The fixed warm-up scheme pays warmup_period cycles per sample."""
        warmup = FixedWarmupEstimator(
            s27_circuit, config=quick_config, rng=7, warmup_period=30
        ).estimate()
        assert warmup.cycles_simulated >= 30 * warmup.sample_size

    def test_negative_warmup_rejected(self, s27_circuit, quick_config):
        with pytest.raises(ValueError):
            FixedWarmupEstimator(s27_circuit, config=quick_config, warmup_period=-1)

    def test_custom_stopping_criterion(self, s27_circuit, quick_config):
        estimate = FixedWarmupEstimator(
            s27_circuit,
            config=quick_config,
            rng=8,
            warmup_period=10,
            stopping_criterion="clt",
        ).estimate()
        assert estimate.stopping_criterion == "clt"
