"""Wall-clock-aware adaptive chain policy (``adaptive_time_aware``)."""

import dataclasses

import pytest

from repro.core.batch_sampler import BatchPowerSampler, draw_sample_block
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.stats.stopping.base import StoppingDecision
from repro.stimulus.random_inputs import BernoulliStimulus


def _config(**overrides):
    defaults = dict(
        randomness_sequence_length=64,
        min_samples=64,
        check_interval=32,
        max_samples=4000,
        warmup_cycles=8,
        max_independence_interval=8,
        num_chains=4,
        adaptive_chains=True,
        max_chains=256,
        max_relative_error=0.05,
    )
    defaults.update(overrides)
    return EstimationConfig(**defaults)


def _sampler(circuit, config, rng=3):
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    return BatchPowerSampler(
        circuit, stimulus, config, rng=rng, num_chains=config.num_chains
    )


FAR = StoppingDecision(
    should_stop=False,
    sample_size=128,
    estimate=1.0,
    lower=0.5,
    upper=1.5,
    relative_half_width=0.5,
)


class TestConfig:
    def test_defaults_off(self):
        config = EstimationConfig()
        assert config.adaptive_time_aware is False
        assert config.adaptive_target_seconds == 2.0

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="adaptive_target_seconds"):
            EstimationConfig(adaptive_target_seconds=0.0)

    def test_roundtrips_through_dict(self):
        config = _config(adaptive_time_aware=True, adaptive_target_seconds=0.5)
        recovered = EstimationConfig.from_dict(config.to_dict())
        assert recovered.adaptive_time_aware is True
        assert recovered.adaptive_target_seconds == 0.5


class TestTimeAwarePlan:
    def test_plan_unchanged_when_flag_off(self, s27_circuit):
        # Even with timings recorded, the disabled policy must ignore them.
        plain = _sampler(s27_circuit, _config())
        timed = _sampler(s27_circuit, _config())
        timed.note_sweep_seconds(10.0, 1)
        assert timed.plan_chain_resize(FAR) == plain.plan_chain_resize(FAR)

    def test_no_timing_recorded_falls_back_to_fixed_horizon(self, s27_circuit):
        flagged = _sampler(s27_circuit, _config(adaptive_time_aware=True))
        plain = _sampler(s27_circuit, _config())
        assert flagged.plan_chain_resize(FAR) == plain.plan_chain_resize(FAR)

    def test_slow_sweeps_widen_the_ensemble(self, s27_circuit):
        # ~12672 samples remain.  Fixed horizon: 12672/4 sweeps -> cap jump
        # either way; use a moderate target where the horizons separate.
        config = _config(adaptive_time_aware=True, adaptive_target_seconds=1.0)
        slow = _sampler(s27_circuit, config)
        slow.note_sweep_seconds(1.0, 1)  # 1 s/sweep -> 1-sweep horizon
        fast = _sampler(s27_circuit, config)
        fast.note_sweep_seconds(0.02, 1)  # 20 ms/sweep -> 50-sweep horizon
        assert slow.plan_chain_resize(FAR) > fast.plan_chain_resize(FAR)

    def test_horizon_is_clamped(self, s27_circuit):
        config = _config(adaptive_time_aware=True, adaptive_target_seconds=1.0)
        sampler = _sampler(s27_circuit, config)
        sampler.note_sweep_seconds(1e-6, 1)  # absurdly fast: horizon capped at 64
        capped = sampler.plan_chain_resize(FAR)
        sampler._seconds_per_sweep = 1.0 / 64.0  # exactly the 64-sweep horizon
        assert sampler.plan_chain_resize(FAR) == capped

    def test_ema_blends_timings(self, s27_circuit):
        sampler = _sampler(s27_circuit, _config(adaptive_time_aware=True))
        sampler.note_sweep_seconds(1.0, 1)
        assert sampler._seconds_per_sweep == pytest.approx(1.0)
        sampler.note_sweep_seconds(0.5, 1)
        assert sampler._seconds_per_sweep == pytest.approx(0.75)
        sampler.note_sweep_seconds(1.5, 2)  # 0.75 s/sweep batch
        assert sampler._seconds_per_sweep == pytest.approx(0.75)


class TestDrawSampleBlock:
    def test_records_timing_only_when_enabled(self, s27_circuit):
        enabled = _sampler(s27_circuit, _config(adaptive_time_aware=True))
        enabled.prepare(8)
        draw_sample_block(enabled, 2, 16)
        assert enabled._seconds_per_sweep is not None

        disabled = _sampler(s27_circuit, _config())
        disabled.prepare(8)
        draw_sample_block(disabled, 2, 16)
        assert disabled._seconds_per_sweep is None

    def test_draws_bit_identical_with_flag_toggled(self, s27_circuit):
        on = _sampler(s27_circuit, _config(adaptive_time_aware=True), rng=11)
        off = _sampler(s27_circuit, _config(), rng=11)
        on.prepare(8)
        off.prepare(8)
        assert draw_sample_block(on, 2, 64) == draw_sample_block(off, 2, 64)


class TestEndToEnd:
    def test_adaptive_run_same_estimate_with_time_awareness(self, s27_circuit):
        # The time-aware policy may resize differently, but the estimate must
        # still be a valid adaptive run; with the flag off the run is
        # bit-identical to a run under a config that never mentions the flag.
        base = _config(max_chains=64)
        flag_off = dataclasses.replace(base, adaptive_time_aware=False)
        a = DipeEstimator(s27_circuit, config=base, rng=21).estimate()
        b = DipeEstimator(s27_circuit, config=flag_off, rng=21).estimate()
        assert a.average_power_w == b.average_power_w
        assert a.samples_switched_capacitance_f == b.samples_switched_capacitance_f

    def test_time_aware_run_completes(self, s27_circuit):
        config = _config(max_chains=64, adaptive_time_aware=True,
                         adaptive_target_seconds=0.05)
        result = DipeEstimator(s27_circuit, config=config, rng=22).estimate()
        assert result.average_power_w > 0
