"""Unit tests for the two-phase power sampler."""

import pytest

from repro.core.config import EstimationConfig
from repro.core.sampler import PowerSampler
from repro.stimulus.random_inputs import BernoulliStimulus


def _sampler(circuit, config=None, rng=0, simulator="zero-delay"):
    config = config or EstimationConfig(
        warmup_cycles=8, randomness_sequence_length=32, power_simulator=simulator
    )
    return PowerSampler(circuit, BernoulliStimulus(circuit.num_inputs, 0.5), config, rng=rng)


class TestPowerSampler:
    def test_stimulus_width_checked(self, s27_circuit):
        with pytest.raises(ValueError, match="stimulus drives"):
            PowerSampler(s27_circuit, BernoulliStimulus(2, 0.5), EstimationConfig())

    def test_collect_sequence_length_and_sign(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        sequence = sampler.collect_sequence(interval=0, length=50)
        assert len(sequence) == 50
        assert all(value >= 0.0 for value in sequence)
        assert any(value > 0.0 for value in sequence)

    def test_cycle_accounting_includes_interval(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        sampler.prepare(warmup_cycles=10)
        before = sampler.cycles_simulated
        sampler.collect_sequence(interval=3, length=20)
        assert sampler.cycles_simulated - before == 20 * 4  # 3 skipped + 1 measured

    def test_next_sample_advances_interval_cycles(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        sampler.prepare(warmup_cycles=0)
        before = sampler.cycles_simulated
        sampler.next_sample(interval=5)
        assert sampler.cycles_simulated - before == 6

    def test_samples_helper(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        values = sampler.samples(interval=1, count=10)
        assert len(values) == 10

    def test_reproducible_given_seed(self, s27_circuit):
        first = _sampler(s27_circuit, rng=42)
        second = _sampler(s27_circuit, rng=42)
        assert first.collect_sequence(0, 30) == second.collect_sequence(0, 30)

    def test_invalid_arguments_rejected(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=-1, length=10)
        with pytest.raises(ValueError):
            sampler.collect_sequence(interval=0, length=0)
        with pytest.raises(ValueError):
            sampler.next_sample(interval=-2)
        with pytest.raises(ValueError):
            sampler.advance(-1)

    def test_event_driven_engine_counts_at_least_functional_power(self, s27_circuit):
        functional = _sampler(s27_circuit, rng=3, simulator="zero-delay")
        glitchy = _sampler(s27_circuit, rng=3, simulator="event-driven")
        functional_mean = sum(functional.collect_sequence(0, 200)) / 200
        glitchy_mean = sum(glitchy.collect_sequence(0, 200)) / 200
        assert glitchy_mean >= functional_mean - 1e-15

    def test_restart_from_random_state(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        sampler.restart_from_random_state()
        value = sampler.measure_cycle()
        assert value >= 0.0

    def test_prepare_is_lazy_but_automatic(self, s27_circuit):
        sampler = _sampler(s27_circuit)
        # next_sample without an explicit prepare() must still work.
        assert sampler.next_sample(interval=0) >= 0.0
