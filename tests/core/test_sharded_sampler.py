"""Process-sharded sampler: bit-identical merge, checkpoints, resizes, wiring.

The contract under test everywhere: :class:`ShardedPowerSampler` with any
worker count produces samples, stopping trajectories, checkpoints and final
estimates draw-for-draw identical to :class:`BatchPowerSampler` with the same
``num_chains`` and seed.  Equality assertions are exact — the sharded engine
is required to reproduce the in-process floating-point results bit for bit.
"""

import numpy as np
import pytest

from repro.api.events import ChainsResized, SampleProgress
from repro.core.batch_sampler import BatchPowerSampler, make_sampler
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.core.sharded_sampler import ShardedPowerSampler, partition_chains
from repro.stimulus.random_inputs import BernoulliStimulus


def _pair(circuit, chains, workers, config=None, rng=7, start_method="fork", backend="auto"):
    """A (reference, sharded) sampler pair with identical seeds."""
    config = config or EstimationConfig(warmup_cycles=8)
    reference = BatchPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=rng,
        num_chains=chains,
        backend=backend,
    )
    sharded = ShardedPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        config,
        rng=rng,
        num_chains=chains,
        backend=backend,
        num_workers=workers,
        start_method=start_method,
    )
    return reference, sharded


class TestPartition:
    def test_word_aligned_partition(self):
        assert partition_chains(256, 2) == [(0, 128), (128, 128)]
        assert partition_chains(100, 2) == [(0, 64), (64, 36)]
        assert partition_chains(192, 3) == [(0, 64), (64, 64), (128, 64)]

    def test_surplus_workers_idle(self):
        assert partition_chains(4, 2) == [(0, 4), (64, 0)]
        shards = partition_chains(65, 4)
        assert [width for _, width in shards] == [64, 1, 0, 0]

    def test_widths_cover_ensemble(self):
        for chains in (1, 63, 64, 65, 128, 200, 1024):
            for workers in (1, 2, 3, 5, 8):
                shards = partition_chains(chains, workers)
                assert sum(width for _, width in shards) == chains
                assert shards[0][1] > 0  # worker 0 always owns chain 0
                for offset, width in shards:
                    assert offset % 64 == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_chains(0, 2)
        with pytest.raises(ValueError):
            partition_chains(8, 0)


class TestMergeEquivalence:
    """Merged streams are bit-identical to the in-process sampler."""

    @pytest.mark.parametrize(
        "chains,workers", [(128, 2), (100, 3), (130, 2), (8, 2), (192, 4)]
    )
    def test_sample_block_bit_identical(self, s298_circuit, chains, workers):
        reference, sharded = _pair(s298_circuit, chains, workers)
        with sharded:
            assert np.array_equal(
                reference.sample_block(2, 3 * chains), sharded.sample_block(2, 3 * chains)
            )
            assert np.array_equal(reference.next_samples(1), sharded.next_samples(1))
            assert reference.cycles_simulated == sharded.cycles_simulated

    def test_serial_pool_matches_processes(self, s298_circuit):
        reference, serial = _pair(s298_circuit, 128, 2, start_method="serial")
        with serial:
            assert np.array_equal(
                reference.sample_block(1, 256), serial.sample_block(1, 256)
            )

    def test_spawn_start_method(self, s298_circuit):
        reference, spawned = _pair(s298_circuit, 128, 2, start_method="spawn")
        with spawned:
            assert np.array_equal(
                reference.sample_block(1, 128), spawned.sample_block(1, 128)
            )

    def test_forced_bigint_backend(self, s27_circuit):
        reference, sharded = _pair(s27_circuit, 96, 2, backend="bigint")
        with sharded:
            assert sharded.backend == "bigint"
            assert np.array_equal(
                reference.sample_block(1, 192), sharded.sample_block(1, 192)
            )

    def test_event_driven_bit_identical(self, s298_circuit):
        config = EstimationConfig(warmup_cycles=8, power_simulator="event-driven")
        reference, sharded = _pair(s298_circuit, 100, 2, config=config, rng=3)
        with sharded:
            assert np.array_equal(
                reference.sample_block(1, 200), sharded.sample_block(1, 200)
            )

    def test_collect_sequence_and_measure(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 128, 2)
        with sharded:
            assert reference.collect_sequence(1, 25) == sharded.collect_sequence(1, 25)
            assert np.array_equal(reference.measure_cycle(), sharded.measure_cycle())
            assert reference.measure_cycle_total() == pytest.approx(
                sharded.measure_cycle_total()
            )

    def test_restart_from_random_state(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 128, 2)
        with sharded:
            reference.prepare()
            sharded.prepare()
            reference.restart_from_random_state()
            sharded.restart_from_random_state()
            assert np.array_equal(reference.next_samples(0), sharded.next_samples(0))

    def test_validation_errors(self, s298_circuit):
        _, sharded = _pair(s298_circuit, 128, 2, start_method="serial")
        with sharded:
            with pytest.raises(ValueError):
                sharded.next_samples(-1)
            with pytest.raises(ValueError):
                sharded.sample_block(0, 0)
            with pytest.raises(ValueError):
                sharded.collect_sequence(-1, 10)
            with pytest.raises(ValueError):
                sharded.advance(-1)
        with pytest.raises(ValueError):
            ShardedPowerSampler(
                s298_circuit,
                BernoulliStimulus(s298_circuit.num_inputs, 0.5),
                EstimationConfig(),
                num_workers=0,
            )


class TestResize:
    """Adaptive resizes re-partition shards with in-process RNG consumption."""

    def test_resize_crosses_shard_boundaries(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 32, 4, rng=5)
        with sharded:
            a = reference.sample_block(1, 64)
            b = sharded.sample_block(1, 64)
            assert np.array_equal(a, b)
            # Grow far past max_chains // num_workers: every worker gets lanes.
            reference.resize(512)
            sharded.resize(512)
            assert [w for _, w in sharded._shards] == [128, 128, 128, 128]
            assert np.array_equal(
                reference.sample_block(1, 512), sharded.sample_block(1, 512)
            )
            # Shrink to fewer chains than workers: surplus workers idle.
            reference.resize(16)
            sharded.resize(16)
            assert [w for _, w in sharded._shards] == [16, 0, 0, 0]
            assert np.array_equal(
                reference.sample_block(1, 32), sharded.sample_block(1, 32)
            )
            assert reference.cycles_simulated == sharded.cycles_simulated

    def test_adaptive_dipe_identical_across_workers(self, s27_circuit):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=3000,
            warmup_cycles=8,
            max_independence_interval=8,
            num_chains=4,
            adaptive_chains=True,
            max_chains=256,
        )
        from dataclasses import replace

        plain = DipeEstimator(s27_circuit, config=config, rng=8)
        sharded = DipeEstimator(s27_circuit, config=replace(config, num_workers=2), rng=8)
        events_plain = list(plain.run())
        events_sharded = list(sharded.run())
        resizes = [e for e in events_sharded if isinstance(e, ChainsResized)]
        assert [e.num_chains for e in resizes] == [
            e.num_chains for e in events_plain if isinstance(e, ChainsResized)
        ]
        assert (
            events_plain[-1].estimate.samples_switched_capacitance_f
            == events_sharded[-1].estimate.samples_switched_capacitance_f
        )

    def test_resize_noop_keeps_stream(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 128, 2)
        with sharded:
            reference.prepare()
            sharded.prepare()
            reference.resize(128)
            sharded.resize(128)
            assert np.array_equal(reference.next_samples(1), sharded.next_samples(1))


class TestCheckpoints:
    """Checkpoints are interchangeable between sharded and in-process engines."""

    def test_state_roundtrip_same_engine(self, s298_circuit):
        _, source = _pair(s298_circuit, 128, 2, rng=19)
        with source:
            source.prepare()
            source.advance(5)
            snapshot = source.get_state()
            expected = source.next_samples(1)
            _, target = _pair(s298_circuit, 128, 2, rng=0)
            with target:
                target.set_state(snapshot)
                assert np.array_equal(target.next_samples(1), expected)

    def test_sharded_state_restores_into_batch_sampler(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 100, 2, rng=19)
        with sharded:
            sharded.prepare()
            snapshot = sharded.get_state()
            expected = sharded.next_samples(1)
        target = BatchPowerSampler(
            s298_circuit,
            BernoulliStimulus(s298_circuit.num_inputs, 0.5),
            EstimationConfig(warmup_cycles=8),
            rng=0,
            num_chains=100,
        )
        target.set_state(snapshot)
        assert np.array_equal(target.next_samples(1), expected)

    def test_batch_state_restores_into_sharded(self, s298_circuit):
        reference, sharded = _pair(s298_circuit, 100, 2, rng=19)
        reference.prepare()
        snapshot = reference.get_state()
        expected = reference.next_samples(1)
        with sharded:
            sharded.set_state(snapshot)
            assert np.array_equal(sharded.next_samples(1), expected)

    def test_state_roundtrip_across_resize(self, s298_circuit):
        _, source = _pair(s298_circuit, 32, 3, rng=23)
        with source:
            source.prepare()
            source.resize(192)
            snapshot = source.get_state()
            expected = source.next_samples(1)
            _, target = _pair(s298_circuit, 32, 3, rng=0)
            with target:
                target.set_state(snapshot)
                assert target.num_chains == 192
                assert np.array_equal(target.next_samples(1), expected)

    def test_dipe_checkpoint_resume_under_sharding(self, s27_circuit):
        from dataclasses import replace

        kwargs = dict(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=2000,
            warmup_cycles=16,
            max_independence_interval=8,
            num_chains=64,
        )
        config_sharded = EstimationConfig(num_workers=2, **kwargs)
        config_plain = EstimationConfig(**kwargs)

        def checkpoint_at(config, samples_at):
            estimator = DipeEstimator(s27_circuit, config=config, rng=21)
            stream = estimator.run()
            for event in stream:
                if isinstance(event, SampleProgress) and event.samples_drawn >= samples_at:
                    checkpoint = estimator.make_checkpoint()
                    stream.close()
                    return checkpoint
            raise AssertionError("run finished before the checkpoint point")

        uninterrupted = DipeEstimator(s27_circuit, config=config_sharded, rng=21).estimate()
        resumed = DipeEstimator(s27_circuit, config=config_sharded, rng=21).estimate_from(
            checkpoint_at(config_sharded, 64)
        )
        assert (
            resumed.samples_switched_capacitance_f
            == uninterrupted.samples_switched_capacitance_f
        )
        assert resumed.average_power_w == uninterrupted.average_power_w

        # Cross-engine resumes: sharded checkpoint -> in-process run and back.
        crossed = DipeEstimator(s27_circuit, config=config_plain, rng=21).estimate_from(
            checkpoint_at(config_sharded, 64)
        )
        assert (
            crossed.samples_switched_capacitance_f
            == uninterrupted.samples_switched_capacitance_f
        )
        crossed_back = DipeEstimator(
            s27_circuit, config=config_sharded, rng=21
        ).estimate_from(checkpoint_at(config_plain, 64))
        assert (
            crossed_back.samples_switched_capacitance_f
            == uninterrupted.samples_switched_capacitance_f
        )
        assert replace(config_sharded, num_workers=1) == config_plain


class TestEstimatorWiring:
    def test_make_sampler_selects_sharded(self, s27_circuit):
        config = EstimationConfig(warmup_cycles=8, num_chains=8, num_workers=2)
        sampler = make_sampler(
            s27_circuit, BernoulliStimulus(s27_circuit.num_inputs, 0.5), config, rng=1
        )
        assert isinstance(sampler, ShardedPowerSampler)
        assert isinstance(sampler, BatchPowerSampler)
        sampler.close()

    def test_dipe_estimates_identical_across_worker_counts(self, s27_circuit):
        kwargs = dict(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=2000,
            warmup_cycles=16,
            max_independence_interval=8,
            num_chains=64,
        )
        baseline = DipeEstimator(
            s27_circuit, config=EstimationConfig(**kwargs), rng=9
        ).estimate()
        for workers in (2, 3):
            sharded = DipeEstimator(
                s27_circuit, config=EstimationConfig(num_workers=workers, **kwargs), rng=9
            ).estimate()
            assert sharded.average_power_w == baseline.average_power_w
            assert sharded.sample_size == baseline.sample_size
            assert (
                sharded.samples_switched_capacitance_f
                == baseline.samples_switched_capacitance_f
            )
            assert sharded.cycles_simulated == baseline.cycles_simulated

    def test_sample_progress_carries_shard_fields(self, s27_circuit):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=1000,
            warmup_cycles=8,
            max_independence_interval=8,
            num_chains=128,
            num_workers=2,
        )
        events = list(DipeEstimator(s27_circuit, config=config, rng=4).run())
        progress = [event for event in events if isinstance(event, SampleProgress)]
        assert progress
        for event in progress:
            assert event.num_workers == 2
            assert [shard.worker for shard in event.shards] == [0, 1]
            assert sum(shard.num_chains for shard in event.shards) == 128
            assert event.shards[0].lane_offset == 0
        payload = progress[0].to_dict()
        assert payload["num_workers"] == 2
        assert "shards" not in payload  # rich payloads stay out of the JSON stream

    def test_in_process_progress_has_no_shards(self, s27_circuit):
        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=1000,
            warmup_cycles=8,
            max_independence_interval=8,
            num_chains=16,
        )
        events = list(DipeEstimator(s27_circuit, config=config, rng=4).run())
        progress = [event for event in events if isinstance(event, SampleProgress)]
        assert all(event.num_workers == 1 and event.shards == () for event in progress)

    def test_baselines_run_sharded(self, s27_circuit):
        from repro.core.baselines import ConsecutiveCycleEstimator, FixedWarmupEstimator

        config = EstimationConfig(
            min_samples=64,
            check_interval=16,
            max_samples=1500,
            warmup_cycles=8,
            num_chains=64,
            num_workers=2,
        )
        plain = EstimationConfig(
            min_samples=64, check_interval=16, max_samples=1500, warmup_cycles=8,
            num_chains=64,
        )
        for estimator_cls, params in (
            (ConsecutiveCycleEstimator, {}),
            (FixedWarmupEstimator, {"warmup_period": 6}),
        ):
            sharded = estimator_cls(s27_circuit, config=config, rng=3, **params).estimate()
            reference = estimator_cls(s27_circuit, config=plain, rng=3, **params).estimate()
            assert (
                sharded.samples_switched_capacitance_f
                == reference.samples_switched_capacitance_f
            )

    def test_close_is_idempotent(self, s27_circuit):
        _, sharded = _pair(s27_circuit, 128, 2)
        sharded.close()
        sharded.close()


class TestTeardown:
    """Pool teardown must be idempotent and silent.

    The same ``stop()`` path runs from a ``weakref.finalize`` callback during
    interpreter shutdown, where pipes may already be closed and stderr noise
    shows up as spurious tracebacks after the program has "finished".
    """

    def test_shard_stop_idempotent_and_silent(self, s27_circuit, capfd):
        _, sharded = _pair(s27_circuit, 128, 2)
        handles = list(sharded._handles)
        sharded.close()
        for handle in handles:  # stop again on already-stopped shards
            handle.stop()
            handle.stop()
        assert capfd.readouterr().err == ""

    def test_stop_with_torn_pipe_is_silent(self, s27_circuit, capfd):
        _, sharded = _pair(s27_circuit, 128, 2)
        for handle in sharded._handles:
            handle.connection.close()  # simulate shutdown-time pipe teardown
        sharded.close()  # must not raise or print despite the dead pipes
        assert capfd.readouterr().err == ""

    def test_shutdown_pool_never_raises(self):
        from repro.core.sharded_sampler import _shutdown_pool

        class ExplodingHandle:
            def stop(self):
                raise RuntimeError("boom")

        _shutdown_pool([ExplodingHandle(), ExplodingHandle()])


class TestPoolComposition:
    """Shard pools compose with the job-level BatchRunner pool."""

    def test_sharded_job_inside_batch_runner(self, tmp_path):
        from repro.api.batch import BatchRunner
        from repro.api.jobs import JobSpec

        config = EstimationConfig(
            randomness_sequence_length=64,
            min_samples=64,
            check_interval=32,
            max_samples=1000,
            warmup_cycles=8,
            max_independence_interval=4,
            num_chains=64,
            num_workers=2,
        )
        spec = JobSpec(circuit="s27", seed=13, config=config, label="nested-pools")
        serial = BatchRunner(workers=1).run([spec])
        parallel = BatchRunner(workers=2).run([spec, spec])
        assert serial.all_ok and parallel.all_ok
        assert (
            parallel.results[0].estimate.average_power_w
            == serial.results[0].estimate.average_power_w
        )
        assert (
            parallel.results[1].estimate.samples_switched_capacitance_f
            == serial.results[0].estimate.samples_switched_capacitance_f
        )


class TestPartitionDegenerateCases:
    """Edge topologies of the word-aligned partition: the elastic-membership
    paths (mid-run joins and folds) re-partition through exactly this
    function, so its degenerate shapes must all stay covering and aligned."""

    def test_single_chain_many_workers(self):
        shards = partition_chains(1, 8)
        assert shards[0] == (0, 1)
        assert all(width == 0 for _, width in shards[1:])
        assert len(shards) == 8

    def test_exactly_one_word_split_many_ways(self):
        # 64 chains is one lane word: indivisible, the first seat owns it all.
        for workers in (2, 3, 64):
            shards = partition_chains(64, workers)
            assert shards[0][1] == 64
            assert all(width == 0 for _, width in shards[1:])

    def test_more_workers_than_words(self):
        # 129 chains span 3 words; 5 workers leave two zero-width seats.
        shards = partition_chains(129, 5)
        assert sum(width for _, width in shards) == 129
        assert sum(1 for _, width in shards if width == 0) == 2
        assert all(offset % 64 == 0 for offset, _ in shards)

    def test_word_multiple_is_balanced(self):
        shards = partition_chains(64 * 6, 3)
        assert [width for _, width in shards] == [128, 128, 128]
        assert [offset for offset, _ in shards] == [0, 128, 256]

    def test_offsets_are_strictly_increasing_for_live_seats(self):
        for chains in (65, 127, 128, 1000):
            for workers in (2, 3, 7):
                live = [s for s in partition_chains(chains, workers) if s[1] > 0]
                offsets = [offset for offset, _ in live]
                assert offsets == sorted(set(offsets))
                # Live seats tile the ensemble without gaps or overlap.
                covered = []
                for offset, width in live:
                    covered.extend(range(offset, offset + width))
                assert covered == list(range(chains))

    def test_degenerate_resize_through_zero_width_seats(self, s298_circuit):
        # Shrink to a single chain (3 of 4 seats go zero-width), sample, then
        # grow back past every word boundary — bit-identical throughout.
        reference, sharded = _pair(s298_circuit, 128, 4, rng=3)
        with sharded:
            assert np.array_equal(
                reference.sample_block(1, 128), sharded.sample_block(1, 128)
            )
            reference.resize(1)
            sharded.resize(1)
            assert [width for _, width in sharded._shards] == [1, 0, 0, 0]
            assert np.array_equal(
                reference.sample_block(1, 4), sharded.sample_block(1, 4)
            )
            reference.resize(256)
            sharded.resize(256)
            assert np.array_equal(
                reference.sample_block(1, 256), sharded.sample_block(1, 256)
            )
            assert reference.cycles_simulated == sharded.cycles_simulated
