"""Unit tests for independence-interval selection."""


from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.interval import select_independence_interval, z_statistic_profile
from repro.core.sampler import PowerSampler
from repro.stimulus.random_inputs import BernoulliStimulus


def _sampler(circuit, config, rng=0):
    return PowerSampler(circuit, BernoulliStimulus(circuit.num_inputs, 0.5), config, rng=rng)


class TestSelectIndependenceInterval:
    def test_small_interval_selected_for_benchmark_circuit(self, quick_config):
        circuit = build_circuit("s298")
        config = EstimationConfig(
            randomness_sequence_length=320, warmup_cycles=32, max_independence_interval=32
        )
        sampler = _sampler(circuit, config, rng=1)
        sampler.prepare()
        selection = select_independence_interval(sampler, config)
        assert selection.converged
        assert 0 <= selection.interval <= 10
        assert selection.trials[-1].accepted

    def test_trials_increment_by_one(self, s27_circuit, quick_config):
        sampler = _sampler(s27_circuit, quick_config, rng=2)
        sampler.prepare()
        selection = select_independence_interval(sampler, quick_config)
        assert [trial.interval for trial in selection.trials] == list(
            range(selection.num_trials)
        )

    def test_cycles_accounted(self, s27_circuit, quick_config):
        sampler = _sampler(s27_circuit, quick_config, rng=3)
        sampler.prepare()
        selection = select_independence_interval(sampler, quick_config)
        expected_minimum = selection.num_trials * quick_config.randomness_sequence_length
        assert selection.cycles_simulated >= expected_minimum

    def test_non_convergence_reported(self, parity_circuit):
        # With a maximum interval of 0 the procedure cannot iterate, so unless
        # interval 0 happens to pass, converged=False must be reported; either
        # way the returned interval is within the allowed range.
        config = EstimationConfig(
            randomness_sequence_length=64, max_independence_interval=0, warmup_cycles=8
        )
        sampler = _sampler(parity_circuit, config, rng=4)
        sampler.prepare()
        selection = select_independence_interval(sampler, config)
        assert selection.interval == 0
        assert selection.num_trials == 1


class TestZStatisticProfile:
    def test_profile_covers_requested_range(self, s27_circuit, quick_config):
        sampler = _sampler(s27_circuit, quick_config, rng=5)
        sampler.prepare()
        profile = z_statistic_profile(sampler, max_interval=5, sequence_length=64)
        assert [interval for interval, _z, _accepted in profile] == list(range(6))

    def test_profile_decays_for_correlated_circuit(self):
        """|z| at interval 0 should exceed |z| at large intervals for a mixing circuit."""
        circuit = build_circuit("s298")
        config = EstimationConfig(randomness_sequence_length=512, warmup_cycles=32)
        sampler = _sampler(circuit, config, rng=6)
        sampler.prepare()
        profile = z_statistic_profile(sampler, max_interval=6, sequence_length=512)
        z_values = [abs(z) for _interval, z, _accepted in profile]
        assert z_values[0] > min(z_values[3:])
