"""Unit tests for STG reachability analysis."""

import pytest

from repro.fsm.reachability import is_strongly_connected, reachable_states, to_networkx
from repro.fsm.stg import extract_stg


class TestReachability:
    def test_counter_reaches_every_state(self, counter_circuit):
        stg = extract_stg(counter_circuit, 0.5)
        assert reachable_states(stg, 0) == set(range(16))

    def test_toggle_cell_reaches_both_states(self, toggle_circuit):
        stg = extract_stg(toggle_circuit, 0.5)
        assert reachable_states(stg, 0) == {0, 1}

    def test_invalid_initial_state_rejected(self, toggle_circuit):
        stg = extract_stg(toggle_circuit, 0.5)
        with pytest.raises(ValueError):
            reachable_states(stg, 5)

    def test_counter_is_strongly_connected(self, counter_circuit):
        stg = extract_stg(counter_circuit, 0.5)
        assert is_strongly_connected(stg)

    def test_s27_reachable_component_connected(self, s27_circuit):
        stg = extract_stg(s27_circuit, 0.5)
        assert is_strongly_connected(stg) in (True, False)  # must not raise
        assert len(reachable_states(stg, 0)) >= 1

    def test_networkx_export_has_probability_weights(self, toggle_circuit):
        stg = extract_stg(toggle_circuit, 0.5)
        graph = to_networkx(stg)
        assert graph.number_of_nodes() == 2
        assert graph[0][1]["probability"] == pytest.approx(0.5)
