"""Unit tests for the Markov-chain utilities."""

import numpy as np
import pytest

from repro.fsm.markov import (
    k_step_distribution,
    mixing_time,
    stationary_distribution,
    total_variation_distance,
)


@pytest.fixture()
def two_state_chain():
    # P(0->1) = 0.3, P(1->0) = 0.6; stationary = (2/3, 1/3)
    return np.array([[0.7, 0.3], [0.6, 0.4]])


class TestStationaryDistribution:
    def test_two_state_chain(self, two_state_chain):
        pi = stationary_distribution(two_state_chain)
        assert pi == pytest.approx([2 / 3, 1 / 3], rel=1e-6)

    def test_stationarity_fixed_point(self, two_state_chain):
        pi = stationary_distribution(two_state_chain)
        assert pi @ two_state_chain == pytest.approx(pi)

    def test_doubly_stochastic_chain_is_uniform(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert stationary_distribution(matrix) == pytest.approx([0.5, 0.5])

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]))


class TestKStepDistribution:
    def test_zero_steps_returns_initial(self, two_state_chain):
        initial = np.array([1.0, 0.0])
        assert k_step_distribution(initial, two_state_chain, 0) == pytest.approx(initial)

    def test_converges_to_stationary(self, two_state_chain):
        initial = np.array([1.0, 0.0])
        pi = stationary_distribution(two_state_chain)
        distribution = k_step_distribution(initial, two_state_chain, 50)
        assert distribution == pytest.approx(pi, abs=1e-6)

    def test_invalid_initial_distribution_rejected(self, two_state_chain):
        with pytest.raises(ValueError):
            k_step_distribution(np.array([0.5, 0.6]), two_state_chain, 1)
        with pytest.raises(ValueError):
            k_step_distribution(np.array([1.0, 0.0]), two_state_chain, -1)


class TestTotalVariation:
    def test_identical_distributions(self):
        p = np.array([0.2, 0.8])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestMixingTime:
    def test_fast_chain_mixes_quickly(self, two_state_chain):
        assert mixing_time(two_state_chain, threshold=0.05) <= 10

    def test_identity_chain_never_mixes(self):
        identity = np.eye(2)
        assert mixing_time(identity, threshold=0.05, max_steps=20) == 20

    def test_threshold_monotonicity(self, two_state_chain):
        loose = mixing_time(two_state_chain, threshold=0.2)
        tight = mixing_time(two_state_chain, threshold=0.01)
        assert tight >= loose
