"""Unit tests for STG extraction."""

import numpy as np
import pytest

from repro.fsm.stg import extract_stg, input_vector_probabilities


class TestInputVectorProbabilities:
    def test_uniform_inputs(self):
        probs = input_vector_probabilities([0.5, 0.5])
        assert probs == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_biased_inputs(self):
        probs = input_vector_probabilities([1.0, 0.0])
        # Only the vector with bit0=1, bit1=0 (value 1) has probability 1.
        assert probs[1] == pytest.approx(1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_sum_to_one(self):
        probs = input_vector_probabilities([0.3, 0.7, 0.2])
        assert probs.sum() == pytest.approx(1.0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            input_vector_probabilities([1.2])


class TestExtractStg:
    def test_toggle_cell_stg(self, toggle_circuit):
        stg = extract_stg(toggle_circuit, 0.5)
        assert stg.num_states == 2
        # With EN ~ Bernoulli(0.5) each state stays or toggles with prob 0.5.
        assert stg.transition_matrix == pytest.approx(np.full((2, 2), 0.5))

    def test_counter_next_state_table(self, counter_circuit):
        stg = extract_stg(counter_circuit, 0.5)
        # With EN=1 (input vector 1) the counter increments modulo 16.
        for state in range(16):
            assert stg.next_state[state, 1] == (state + 1) % 16
            assert stg.next_state[state, 0] == state

    def test_rows_are_stochastic(self, s27_circuit):
        stg = extract_stg(s27_circuit, 0.5)
        assert stg.transition_matrix.sum(axis=1) == pytest.approx(np.ones(stg.num_states))

    def test_biased_inputs_change_transition_probabilities(self, toggle_circuit):
        stg = extract_stg(toggle_circuit, 0.9)
        assert stg.transition_matrix[0, 1] == pytest.approx(0.9)
        assert stg.transition_matrix[0, 0] == pytest.approx(0.1)

    def test_successors_and_edges(self, counter_circuit):
        stg = extract_stg(counter_circuit, 0.5)
        assert stg.successors(3) == [3, 4]
        edges = stg.edge_list()
        assert (3, 4, 0.5) in [(s, d, pytest.approx(p)) for s, d, p in edges] or any(
            s == 3 and d == 4 for s, d, _p in edges
        )

    def test_work_limit_enforced(self, s27_circuit):
        with pytest.raises(ValueError, match="exponential"):
            extract_stg(s27_circuit, 0.5, max_evaluations=10)

    def test_per_input_probability_length_checked(self, s27_circuit):
        with pytest.raises(ValueError):
            extract_stg(s27_circuit, [0.5, 0.5])
