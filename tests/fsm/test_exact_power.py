"""Unit tests for the exact (enumerated) average power baseline."""

import pytest

from repro.circuits.library import toggle_cell
from repro.fsm.exact_power import exact_average_power
from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.simulation.compiled import CompiledCircuit


class TestExactPower:
    def test_toggle_cell_closed_form(self):
        """The toggle cell's expected switched capacitance can be written by hand.

        Nets: EN (PI), Q (latch out), D = EN xor Q.  With EN ~ Bernoulli(p),
        stationary P(Q=1) = 0.5, and per cycle:
          * EN toggles with probability 2 p (1-p),
          * Q toggles with probability 0.5 (it captures EN's previous value
            xor'd in), and
          * D = EN xor Q toggles when exactly one of EN, Q toggles.
        With p = 0.5 every one of the three nets toggles with probability 0.5.
        """
        circuit = CompiledCircuit.from_netlist(toggle_cell())
        capacitance_model = CapacitanceModel(overhead_factor=1.0)
        power_model = PowerModel()
        caps = capacitance_model.node_capacitances(circuit)
        expected_switched = 0.5 * sum(caps)
        power = exact_average_power(
            circuit, 0.5, power_model=power_model, capacitance_model=capacitance_model
        )
        assert power == pytest.approx(power_model.cycle_power(expected_switched), rel=1e-9)

    def test_zero_activity_inputs_give_low_power(self, s27_circuit):
        """With constant inputs the only switching left is internal state churn."""
        busy = exact_average_power(s27_circuit, 0.5)
        quiet = exact_average_power(s27_circuit, 0.0)
        assert quiet < busy

    def test_power_positive_for_s27(self, s27_circuit):
        assert exact_average_power(s27_circuit, 0.5) > 0.0

    def test_work_limit_enforced(self, s27_circuit):
        with pytest.raises(ValueError, match="statistical estimator"):
            exact_average_power(s27_circuit, 0.5, max_evaluations=100)

    def test_probability_vector_length_checked(self, s27_circuit):
        with pytest.raises(ValueError):
            exact_average_power(s27_circuit, [0.5, 0.5])

    def test_scales_with_vdd_squared(self, toggle_circuit):
        low = exact_average_power(toggle_circuit, 0.5, power_model=PowerModel(vdd=2.5))
        high = exact_average_power(toggle_circuit, 0.5, power_model=PowerModel(vdd=5.0))
        assert high == pytest.approx(4.0 * low, rel=1e-9)
