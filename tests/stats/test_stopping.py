"""Unit tests for the three stopping criteria."""

import numpy as np
import pytest

from repro.stats.stopping import (
    CltStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
    OrderStatisticStoppingCriterion,
    make_stopping_criterion,
)

CRITERION_CLASSES = [
    CltStoppingCriterion,
    OrderStatisticStoppingCriterion,
    KolmogorovSmirnovStoppingCriterion,
]


@pytest.fixture(params=CRITERION_CLASSES, ids=lambda cls: cls.name)
def criterion(request):
    return request.param(max_relative_error=0.05, confidence=0.99, min_samples=64)


class TestCommonBehaviour:
    def test_empty_sample_never_stops(self, criterion):
        decision = criterion.evaluate([])
        assert not decision.should_stop
        assert decision.relative_half_width == float("inf")

    def test_small_sample_never_stops(self, criterion):
        rng = np.random.default_rng(0)
        decision = criterion.evaluate(rng.normal(100.0, 1.0, size=16).tolist())
        assert not decision.should_stop

    def test_large_low_variance_sample_stops(self, criterion):
        rng = np.random.default_rng(1)
        sample = rng.normal(100.0, 2.0, size=5000).tolist()
        decision = criterion.evaluate(sample)
        assert decision.should_stop
        assert decision.relative_half_width <= 0.05
        assert decision.estimate == pytest.approx(100.0, rel=0.01)

    def test_interval_brackets_estimate(self, criterion):
        rng = np.random.default_rng(2)
        sample = rng.exponential(5.0, size=2000).tolist()
        decision = criterion.evaluate(sample)
        assert decision.lower <= decision.estimate <= decision.upper

    def test_high_variance_sample_keeps_sampling(self, criterion):
        rng = np.random.default_rng(3)
        sample = rng.exponential(1.0, size=100).tolist()
        assert not criterion.evaluate(sample).should_stop

    def test_interval_shrinks_with_sample_size(self, criterion):
        rng = np.random.default_rng(4)
        population = rng.normal(50.0, 10.0, size=20_000)
        small = criterion.evaluate(population[:200].tolist())
        large = criterion.evaluate(population.tolist())
        assert large.relative_half_width < small.relative_half_width

    def test_invalid_parameters_rejected(self, criterion):
        cls = type(criterion)
        with pytest.raises(ValueError):
            cls(max_relative_error=0.0)
        with pytest.raises(ValueError):
            cls(confidence=1.5)
        with pytest.raises(ValueError):
            cls(min_samples=1)


class TestCoverage:
    """Each criterion's interval must cover the true mean at least as often as
    its nominal confidence (within Monte-Carlo noise) for i.i.d. samples."""

    @pytest.mark.parametrize("criterion_class", CRITERION_CLASSES, ids=lambda c: c.name)
    def test_empirical_coverage(self, criterion_class):
        criterion = criterion_class(max_relative_error=0.05, confidence=0.90, min_samples=64)
        rng = np.random.default_rng(5)
        true_mean = 10.0
        covered = 0
        trials = 200
        for _ in range(trials):
            sample = rng.gamma(shape=4.0, scale=true_mean / 4.0, size=512).tolist()
            decision = criterion.evaluate(sample)
            if decision.lower <= true_mean <= decision.upper:
                covered += 1
        assert covered / trials >= 0.85


class TestOrderStatisticSpecifics:
    def test_batch_means_fold_remainder(self):
        criterion = OrderStatisticStoppingCriterion(num_batches=8)
        means = criterion.batch_means(list(range(20)))
        assert len(means) == 8

    def test_small_sample_returns_raw_values(self):
        criterion = OrderStatisticStoppingCriterion(num_batches=16)
        assert len(criterion.batch_means([1.0, 2.0, 3.0])) == 3

    def test_rank_reaches_confidence(self):
        criterion = OrderStatisticStoppingCriterion(confidence=0.99, num_batches=16)
        rank = criterion.order_statistic_rank(16)
        assert rank is not None and 1 <= rank <= 8

    def test_rank_none_when_too_few_batches(self):
        criterion = OrderStatisticStoppingCriterion(confidence=0.99)
        assert criterion.order_statistic_rank(4) is None

    def test_too_few_batches_configuration_rejected(self):
        with pytest.raises(ValueError):
            OrderStatisticStoppingCriterion(num_batches=4)


class TestKolmogorovSmirnovSpecifics:
    def test_dkw_epsilon_shrinks_with_sample_size(self):
        criterion = KolmogorovSmirnovStoppingCriterion()
        assert criterion.dkw_epsilon(1000) < criterion.dkw_epsilon(100)

    def test_bounds_within_observed_support(self):
        criterion = KolmogorovSmirnovStoppingCriterion()
        rng = np.random.default_rng(6)
        sample = rng.uniform(2.0, 8.0, size=1000).tolist()
        _estimate, lower, upper = criterion.interval(sample)
        assert lower >= 2.0 - 1e-9
        assert upper <= 8.0 + 1e-9

    def test_more_conservative_than_clt(self):
        rng = np.random.default_rng(7)
        sample = rng.normal(100.0, 5.0, size=2000).tolist()
        ks = KolmogorovSmirnovStoppingCriterion().evaluate(sample)
        clt = CltStoppingCriterion().evaluate(sample)
        assert ks.relative_half_width >= clt.relative_half_width


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_stopping_criterion("clt"), CltStoppingCriterion)
        assert isinstance(
            make_stopping_criterion("order-statistic"), OrderStatisticStoppingCriterion
        )
        assert isinstance(make_stopping_criterion("ks"), KolmogorovSmirnovStoppingCriterion)

    def test_parameters_forwarded(self):
        criterion = make_stopping_criterion("clt", max_relative_error=0.1, confidence=0.9)
        assert criterion.max_relative_error == 0.1
        assert criterion.confidence == 0.9

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stopping criterion"):
            make_stopping_criterion("magic")

    def test_describe_mentions_accuracy(self):
        text = make_stopping_criterion("clt", max_relative_error=0.05).describe()
        assert "5.0%" in text
