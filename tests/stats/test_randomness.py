"""Unit tests for dichotomisation and randomness testing of real sequences."""

import numpy as np
import pytest

from repro.stats.randomness import (
    dichotomize,
    lag_autocorrelation,
    runs_test_on_values,
    thin_sequence,
)


class TestDichotomize:
    def test_values_split_about_median(self):
        symbols = dichotomize([1.0, 2.0, 3.0, 4.0])
        # median 2.5: 1,2 -> 0 and 3,4 -> 1
        assert symbols == [0, 0, 1, 1]

    def test_median_ties_dropped(self):
        symbols = dichotomize([1.0, 2.0, 2.0, 3.0])
        # median is 2.0; both 2.0 values are dropped
        assert symbols == [0, 1]

    def test_constant_sequence_empty(self):
        assert dichotomize([5.0] * 10) == []

    def test_empty_input(self):
        assert dichotomize([]) == []

    def test_order_preserved(self):
        symbols = dichotomize([10.0, 1.0, 9.0, 2.0])
        assert symbols == [1, 0, 1, 0]


class TestRunsTestOnValues:
    def test_iid_values_accepted(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        assert runs_test_on_values(values, 0.20).accepted

    def test_strongly_autocorrelated_values_rejected(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=1000)
        values = np.cumsum(noise)  # random walk: heavily serially dependent
        assert not runs_test_on_values(values, 0.20).accepted

    def test_constant_values_degenerate(self):
        result = runs_test_on_values([3.0] * 64)
        assert result.degenerate
        assert result.accepted


class TestThinSequence:
    def test_interval_zero_keeps_everything(self):
        assert thin_sequence([1, 2, 3, 4], 0) == [1, 2, 3, 4]

    def test_interval_one_keeps_every_other(self):
        assert thin_sequence([1, 2, 3, 4, 5], 1) == [1, 3, 5]

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            thin_sequence([1, 2], -1)


class TestLagAutocorrelation:
    def test_iid_near_zero(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=5000)
        assert abs(lag_autocorrelation(values, 1)) < 0.05

    def test_positive_dependence_detected(self):
        rng = np.random.default_rng(3)
        noise = rng.normal(size=5000)
        values = np.convolve(noise, np.ones(5) / 5, mode="valid")  # moving average
        assert lag_autocorrelation(values, 1) > 0.5

    def test_thinning_reduces_autocorrelation(self):
        rng = np.random.default_rng(4)
        noise = rng.normal(size=20_000)
        values = np.convolve(noise, np.ones(3) / 3, mode="valid")
        original = lag_autocorrelation(values, 1)
        thinned = lag_autocorrelation(thin_sequence(list(values), 3), 1)
        assert abs(thinned) < abs(original)

    def test_degenerate_inputs_return_zero(self):
        assert lag_autocorrelation([1.0, 1.0, 1.0], 1) == 0.0
        assert lag_autocorrelation([1.0], 1) == 0.0

    def test_invalid_lag_rejected(self):
        with pytest.raises(ValueError):
            lag_autocorrelation([1.0, 2.0], 0)
