"""Unit tests for the sweep-grouped stopping-criterion wrapper."""

import numpy as np
import pytest

from repro.stats.stopping import (
    GroupedStoppingCriterion,
    OrderStatisticStoppingCriterion,
    make_stopping_criterion,
)


def _inner(min_samples=4):
    return OrderStatisticStoppingCriterion(
        max_relative_error=0.05, confidence=0.95, min_samples=min_samples
    )


class TestGroupedStoppingCriterion:
    def test_group_width_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            GroupedStoppingCriterion(_inner(), 0)

    def test_name_and_describe(self):
        grouped = GroupedStoppingCriterion(_inner(), 8)
        assert grouped.name == "grouped-order-statistic"
        assert "sweep means of 8" in grouped.describe()

    def test_evaluates_on_group_means(self):
        grouped = GroupedStoppingCriterion(_inner(), 4)
        rng = np.random.default_rng(0)
        sample = rng.normal(loc=10.0, scale=1.0, size=400).tolist()
        decision = grouped.evaluate(sample)
        means = np.asarray(sample).reshape(100, 4).mean(axis=1)
        inner_decision = _inner().evaluate(means.tolist())
        assert decision.estimate == inner_decision.estimate
        assert decision.lower == inner_decision.lower
        assert decision.upper == inner_decision.upper
        # ...but the reported size stays in raw-sample units.
        assert decision.sample_size == 400

    def test_trailing_partial_group_is_ignored(self):
        grouped = GroupedStoppingCriterion(_inner(), 4)
        sample = [1.0, 2.0, 3.0, 4.0, 99.0]
        decision = grouped.evaluate(sample)
        assert decision.estimate == pytest.approx(2.5)
        assert decision.sample_size == 5

    def test_empty_sample(self):
        decision = GroupedStoppingCriterion(_inner(), 4).evaluate([])
        assert not decision.should_stop
        assert decision.sample_size == 0

    def test_interval_delegates_to_inner(self):
        grouped = GroupedStoppingCriterion(_inner(), 2)
        rng = np.random.default_rng(1)
        sample = rng.normal(loc=5.0, size=200).tolist()
        means = np.asarray(sample).reshape(100, 2).mean(axis=1)
        assert grouped.interval(sample) == _inner().interval(means.tolist())

    def test_anticorrelated_groups_stop_earlier_than_flat(self):
        # Perfect pairing: (x, 2m - x) pairs make every group mean exactly m,
        # so the grouped CLT interval collapses immediately while the flat
        # CLT interval on the same raw draws is still wide.  (The flat
        # order-statistic criterion would also collapse here — symmetric
        # pairs pin the median — hence CLT for the flat comparison.)
        rng = np.random.default_rng(2)
        x = rng.normal(loc=10.0, scale=5.0, size=64)
        sample = np.stack([x, 20.0 - x], axis=1).reshape(-1).tolist()
        grouped = GroupedStoppingCriterion(
            make_stopping_criterion("clt", min_samples=16), 2
        )
        flat = make_stopping_criterion("clt", min_samples=32)
        assert grouped.evaluate(sample).should_stop
        assert not flat.evaluate(sample).should_stop

    def test_composes_with_factory_criteria(self):
        for name in ("order-statistic", "clt", "ks"):
            inner = make_stopping_criterion(name, min_samples=4)
            grouped = GroupedStoppingCriterion(inner, 4)
            decision = grouped.evaluate([1.0, 2.0, 1.0, 2.0] * 20)
            assert decision.sample_size == 80
