"""Unit tests for the ordinary runs test."""

import numpy as np
import pytest

from repro.stats.runs_test import count_runs, critical_value, runs_test


class TestCountRuns:
    def test_empty_sequence(self):
        assert count_runs([]) == 0

    def test_single_run(self):
        assert count_runs([1, 1, 1, 1]) == 1

    def test_alternating(self):
        assert count_runs([0, 1, 0, 1, 0]) == 5

    def test_mixed(self):
        assert count_runs([0, 0, 1, 1, 1, 0, 1]) == 4


class TestCriticalValue:
    def test_paper_significance_level(self):
        # alpha = 0.20 -> c = Phi^{-1}(0.90) ~= 1.2816
        assert critical_value(0.20) == pytest.approx(1.2816, abs=1e-3)

    def test_tighter_level_gives_larger_threshold(self):
        assert critical_value(0.01) > critical_value(0.20)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            critical_value(0.0)
        with pytest.raises(ValueError):
            critical_value(1.0)


class TestRunsTest:
    def test_random_sequence_accepted(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 2, size=2000).tolist()
        result = runs_test(symbols, significance_level=0.20)
        assert result.accepted
        assert abs(result.z_statistic) <= result.critical_value

    def test_clustered_sequence_rejected(self):
        symbols = [0] * 100 + [1] * 100
        result = runs_test(symbols, significance_level=0.20)
        assert not result.accepted
        assert result.z_statistic < 0  # far too few runs

    def test_alternating_sequence_rejected(self):
        symbols = [0, 1] * 100
        result = runs_test(symbols, significance_level=0.20)
        assert not result.accepted
        assert result.z_statistic > 0  # far too many runs

    def test_mean_number_of_runs_gives_zero_statistic(self):
        # Construct a sequence whose number of runs is close to 1 + 2mn/N.
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 2, size=501).tolist()
        result = runs_test(symbols)
        assert abs(result.z_statistic) < 3.0

    def test_counts_reported(self):
        result = runs_test([0, 0, 1, 1, 1, 0])
        assert result.num_first == 3
        assert result.num_second == 3
        assert result.num_runs == 3
        assert result.sequence_length == 6

    def test_constant_sequence_is_degenerate_but_accepted(self):
        result = runs_test([1] * 50)
        assert result.degenerate
        assert result.accepted
        assert result.z_statistic == 0.0

    def test_p_value_consistent_with_decision(self):
        rng = np.random.default_rng(4)
        symbols = rng.integers(0, 2, size=400).tolist()
        result = runs_test(symbols, significance_level=0.20)
        assert result.accepted == (result.p_value >= 0.20 - 1e-9)

    def test_continuity_correction_shrinks_statistic(self):
        """The corrected |z| must never exceed the uncorrected value."""
        symbols = [0, 0, 1, 0, 1, 1, 0, 1, 1, 0, 0, 1]
        result = runs_test(symbols)
        m, n = result.num_first, result.num_second
        total = m + n
        mean_runs = 1 + 2 * m * n / total
        variance = 2 * m * n * (2 * m * n - total) / (total**2 * (total - 1))
        uncorrected = abs(result.num_runs - mean_runs) / variance**0.5
        assert abs(result.z_statistic) <= uncorrected + 1e-12

    def test_symbols_must_be_binary(self):
        with pytest.raises(ValueError):
            runs_test([0, 1, 2, 1])

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            runs_test([1])

    def test_false_rejection_rate_close_to_significance_level(self):
        """Under H0 the rejection rate should be near alpha (the paper's Eq. (6))."""
        rng = np.random.default_rng(5)
        alpha = 0.20
        rejections = 0
        trials = 400
        for _ in range(trials):
            symbols = rng.integers(0, 2, size=320).tolist()
            if not runs_test(symbols, significance_level=alpha).accepted:
                rejections += 1
        rate = rejections / trials
        assert rate == pytest.approx(alpha, abs=0.07)
