"""Unit tests for descriptive sample statistics."""

import pytest

from repro.stats.descriptive import summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.standard_deviation == pytest.approx(1.29099, abs=1e-4)

    def test_standard_error(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.standard_error == pytest.approx(summary.standard_deviation / 2.0)

    def test_singleton_sample(self):
        summary = summarize([7.0])
        assert summary.standard_deviation == 0.0
        assert summary.standard_error == 0.0

    def test_coefficient_of_variation(self):
        summary = summarize([2.0, 4.0])
        assert summary.coefficient_of_variation == pytest.approx(
            summary.standard_deviation / 3.0
        )

    def test_zero_mean_cv_is_zero(self):
        assert summarize([-1.0, 1.0]).coefficient_of_variation == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
