"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one of the
repository's ablations) and writes the formatted report to
``benchmarks/results/<name>.txt`` so the numbers can be inspected and pasted
into EXPERIMENTS.md.  Next to each text report, :func:`write_bench_json`
drops a machine-readable ``BENCH_<name>.json`` (cycles/sec, speed-ups,
circuit, width, elapsed seconds — whatever the benchmark measures) so the
performance trajectory can be tracked across commits; CI uploads these as
artifacts.

Two scales are supported:

* the default "quick" scale runs a representative subset of circuits with a
  reduced reference budget and few repeated runs — it finishes in a couple of
  minutes and already shows the paper's qualitative results;
* setting the environment variable ``REPRO_FULL_SCALE=1`` switches to the
  full circuit list of the paper's tables and larger budgets.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any

import pytest

from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, TABLE_CIRCUIT_NAMES
from repro.core.config import EstimationConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick-scale circuit subset: spans small to mid-size benchmarks.
QUICK_CIRCUITS = ("s27", "s208", "s298", "s344", "s386", "s420", "s832", "s1238", "s1494")


def full_scale() -> bool:
    """True when the harness should run at the paper's full scale."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "no")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_circuits() -> tuple[str, ...]:
    """Circuits included in the table benchmarks at the current scale."""
    if full_scale():
        return TABLE_CIRCUIT_NAMES
    return QUICK_CIRCUITS


@pytest.fixture(scope="session")
def small_bench_circuits() -> tuple[str, ...]:
    """Circuits used for the repeated-run (Table 2 / ablation) benchmarks."""
    if full_scale():
        return SMALL_CIRCUIT_NAMES
    return ("s27", "s298", "s344", "s386", "s832")


@pytest.fixture(scope="session")
def reference_cycles() -> int:
    """Budget of the long-simulation reference estimate."""
    return 200_000 if full_scale() else 40_000


@pytest.fixture(scope="session")
def repeated_runs() -> int:
    """Number of repeated estimation runs per circuit (paper: 1,000)."""
    return 100 if full_scale() else 15


@pytest.fixture(scope="session")
def paper_config() -> EstimationConfig:
    """The paper's estimation settings (Section V)."""
    return EstimationConfig()


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a formatted report alongside the benchmark run."""
    (results_dir / f"{name}.txt").write_text(text + "\n")


def timed_pedantic(benchmark, run):
    """One pedantic benchmark round, returning ``(result, elapsed_seconds)``.

    The wall-clock elapsed time feeds the ``BENCH_<name>.json`` metrics; it
    wraps the whole pedantic call, which is what a CI-trajectory reader
    experiences for these single-round experiment regenerations.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    return result, time.perf_counter() - start


def write_bench_json(results_dir: Path, name: str, payload: dict[str, Any]) -> Path:
    """Persist machine-readable benchmark metrics as ``BENCH_<name>.json``.

    The payload is wrapped with the benchmark name, the harness scale and the
    Python/platform fingerprint so a downloaded artifact is self-describing;
    per-commit trajectories come from diffing these files across CI runs.
    """
    document = {
        "benchmark": name,
        "full_scale": full_scale(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
