"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (or one of the
repository's ablations) and writes the formatted report to
``benchmarks/results/<name>.txt`` so the numbers can be inspected and pasted
into EXPERIMENTS.md.

Two scales are supported:

* the default "quick" scale runs a representative subset of circuits with a
  reduced reference budget and few repeated runs — it finishes in a couple of
  minutes and already shows the paper's qualitative results;
* setting the environment variable ``REPRO_FULL_SCALE=1`` switches to the
  full circuit list of the paper's tables and larger budgets.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.circuits.iscas89 import SMALL_CIRCUIT_NAMES, TABLE_CIRCUIT_NAMES
from repro.core.config import EstimationConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick-scale circuit subset: spans small to mid-size benchmarks.
QUICK_CIRCUITS = ("s27", "s208", "s298", "s344", "s386", "s420", "s832", "s1238", "s1494")


def full_scale() -> bool:
    """True when the harness should run at the paper's full scale."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "no")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_circuits() -> tuple[str, ...]:
    """Circuits included in the table benchmarks at the current scale."""
    if full_scale():
        return TABLE_CIRCUIT_NAMES
    return QUICK_CIRCUITS


@pytest.fixture(scope="session")
def small_bench_circuits() -> tuple[str, ...]:
    """Circuits used for the repeated-run (Table 2 / ablation) benchmarks."""
    if full_scale():
        return SMALL_CIRCUIT_NAMES
    return ("s27", "s298", "s344", "s386", "s832")


@pytest.fixture(scope="session")
def reference_cycles() -> int:
    """Budget of the long-simulation reference estimate."""
    return 200_000 if full_scale() else 40_000


@pytest.fixture(scope="session")
def repeated_runs() -> int:
    """Number of repeated estimation runs per circuit (paper: 1,000)."""
    return 100 if full_scale() else 15


@pytest.fixture(scope="session")
def paper_config() -> EstimationConfig:
    """The paper's estimation settings (Section V)."""
    return EstimationConfig()


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a formatted report alongside the benchmark run."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
