"""Throughput benchmark: vectorized vs. scalar event-driven (glitch) engine.

The glitch-aware power workloads rest on the claim that one time-wheel sweep
of the vectorized event-driven engine over a wide lane ensemble is much
cheaper than simulating the same chains one at a time through the scalar
Python event loop.  This benchmark pins that claim down: it measures
chain-cycles/second of both backends at an ensemble width of 256 on mid-size
and large ISCAS'89-style circuits under the default :class:`FanoutDelay`
model and asserts the speed-up (>= 10x on the asserted circuits; the small
s298 row doubles as the CI perf-smoke gate, which only requires the numpy
backend to beat the scalar one).

Because these are wall-clock assertions on shared machines, a failing ratio
is re-measured once before the benchmark actually fails; set
``REPRO_BENCH_STRICT=0`` to relax the 10x floor to a no-regression floor.

The formatted comparison is written to ``benchmarks/results/event_driven.txt``
and the machine-readable metrics to ``benchmarks/results/BENCH_event_driven.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import write_bench_json, write_report
from repro.circuits.iscas89 import build_circuit
from repro.power.capacitance import CapacitanceModel
from repro.simulation.event_driven import EventDrivenSimulator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable

#: Ensemble width of the comparison (the acceptance point of the claim).
_WIDTH = 256

#: Circuits the >=10x assertion is evaluated on (mid-size and large).
_ASSERTED_CIRCUITS = ("s1494", "s5378")

#: Small circuit rows: no 10x assertion, but the numpy engine must not lose
#: to the scalar one (the CI perf-smoke gate runs exactly this check).
_SMOKE_CIRCUITS = ("s298",)


def _strict() -> bool:
    """False relaxes the 10x assertion to a no-regression floor (noisy machines)."""
    return os.environ.get("REPRO_BENCH_STRICT", "1") not in ("", "0", "false", "no")


def _scalar_rate(circuit, cycles: int, repeats: int = 3) -> float:
    """Best-of-*repeats* scalar event-engine throughput in cycles/second."""
    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = EventDrivenSimulator(circuit, node_capacitance=caps, backend="scalar")
    simulator.randomize_state(rng)
    patterns = [stimulus.next_pattern(rng, width=1) for _ in range(cycles)]
    simulator.settle(patterns[0])
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for pattern in patterns:
            simulator.cycle(pattern)
        best = min(best, time.perf_counter() - start)
    return cycles / best


def _vectorized_rate(circuit, sweeps: int, repeats: int = 3) -> float:
    """Best-of-*repeats* vectorized engine throughput in chain-cycles/second."""
    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = EventDrivenSimulator(
        circuit, node_capacitance=caps, width=_WIDTH, backend="numpy"
    )
    simulator.randomize_state(rng)
    patterns = [stimulus.next_pattern_words(rng, width=_WIDTH) for _ in range(sweeps)]
    simulator.settle(patterns[0])
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for pattern in patterns:
            simulator.cycle_lanes(pattern)
        best = min(best, time.perf_counter() - start)
    return sweeps * _WIDTH / best


def _measure(circuit) -> tuple[float, float]:
    small = circuit.num_gates < 1000
    scalar = _scalar_rate(circuit, 60 if small else 16)
    vectorized = _vectorized_rate(circuit, 40 if small else 10)
    return scalar, vectorized


#: Wavefront compaction only arms on ensembles of >= 8 value words (512+
#: lanes), so its measurement runs wider than the backend comparison above.
_COMPACTION_WIDTH = 512


def _compaction_rate(circuit, compact: bool, sweeps: int = 8) -> float:
    """Vectorized-engine throughput with wavefront compaction on or off."""
    from repro.simulation.vectorized_timing import VectorizedEventDrivenSimulator

    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = VectorizedEventDrivenSimulator(
        circuit,
        node_capacitance=caps,
        width=_COMPACTION_WIDTH,
        wavefront_compaction=compact,
    )
    simulator.randomize_state(rng)
    patterns = [
        stimulus.next_pattern_words(rng, width=_COMPACTION_WIDTH) for _ in range(sweeps)
    ]
    simulator.settle(patterns[0])
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for pattern in patterns:
            simulator.cycle_lanes(pattern)
        best = min(best, time.perf_counter() - start)
    return sweeps / best


def _measure_compaction() -> dict:
    """On/off comparison of the wavefront-compacted event frontier.

    Compaction is tightly gated (it arms only when whole 64-lane words go
    quiescent), so on dense workloads the ratio sits at ~1.0 — the JSON
    records the measured value either way, and the sanity assertion only
    rejects a real regression.
    """
    circuit = build_circuit("s1494")
    on = _compaction_rate(circuit, True)
    off = _compaction_rate(circuit, False)
    ratio = on / off
    if ratio < 0.9:  # one clean retry for a noisy-machine reading
        on = _compaction_rate(circuit, True)
        off = _compaction_rate(circuit, False)
        ratio = on / off
    return {
        "circuit": "s1494",
        "width": _COMPACTION_WIDTH,
        "on_cycles_per_second": on,
        "off_cycles_per_second": off,
        "compaction_speedup": ratio,
    }


def test_bench_event_driven_speedup(results_dir):
    """The numpy event engine sustains >=10x scalar chain-cycle throughput at width 256."""
    table = TextTable(
        headers=["Circuit", "Gates", "scalar cyc/s", "numpy chain-cyc/s", "Speed-up"],
        precision=1,
    )
    metrics: dict[str, dict] = {}
    ratios: dict[str, float] = {}
    for name in _SMOKE_CIRCUITS + _ASSERTED_CIRCUITS:
        circuit = build_circuit(name)
        scalar, vectorized = _measure(circuit)
        floor = 10.0 if name in _ASSERTED_CIRCUITS and _strict() else 1.0
        if vectorized < floor * scalar:
            # Timing assertions on shared machines deserve one clean retry.
            scalar, vectorized = _measure(circuit)
        ratios[name] = vectorized / scalar
        metrics[name] = {
            "circuit": name,
            "gates": circuit.num_gates,
            "width": _WIDTH,
            "scalar_cycles_per_second": scalar,
            "numpy_chain_cycles_per_second": vectorized,
            "speedup": ratios[name],
        }
        table.add_row([name, circuit.num_gates, scalar, vectorized, ratios[name]])

    compaction = _measure_compaction()
    lines = [
        f"Event-driven simulator backend comparison at width {_WIDTH} "
        f"(256 independent chains per time-wheel sweep, FanoutDelay model)",
        "",
        table.render(),
        "",
        f"Wavefront compaction at width {compaction['width']} on "
        f"{compaction['circuit']}: {compaction['compaction_speedup']:.2f}x "
        f"(on {compaction['on_cycles_per_second']:.1f} cyc/s, "
        f"off {compaction['off_cycles_per_second']:.1f} cyc/s)",
    ]
    write_report(results_dir, "event_driven", "\n".join(lines))
    write_bench_json(
        results_dir,
        "event_driven",
        {"width": _WIDTH, "circuits": metrics, "wavefront_compaction": compaction},
    )

    for name in _SMOKE_CIRCUITS:
        assert ratios[name] >= 1.0, (
            f"{name}: the numpy event-driven backend fell behind the scalar engine "
            f"({ratios[name]:.2f}x)"
        )
    for name in _ASSERTED_CIRCUITS:
        if _strict():
            assert ratios[name] >= 10.0, (
                f"{name}: numpy event engine only {ratios[name]:.1f}x the scalar rate "
                f"at width {_WIDTH} (expected >= 10x; set REPRO_BENCH_STRICT=0 on "
                f"machines too noisy for timing assertions)"
            )
        else:
            assert ratios[name] >= 1.0, (
                f"{name}: numpy event engine regressed below the scalar one "
                f"({ratios[name]:.2f}x)"
            )
    assert compaction["compaction_speedup"] >= 0.8, (
        f"wavefront compaction slowed the event engine to "
        f"{compaction['compaction_speedup']:.2f}x at width {_COMPACTION_WIDTH}"
    )


def test_bench_event_driven_equivalence_spot_check():
    """The two backends count identical energy on the benchmark circuit.

    A cheap non-timing guard: a wrong-but-fast engine must not pass the
    throughput assertion above.
    """
    circuit = build_circuit("s298")
    caps = CapacitanceModel().node_capacitances(circuit)
    width = 64
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, size=(6, circuit.num_inputs, width), dtype=np.uint8)
    from repro.stimulus.base import pack_bit_matrix

    vector = EventDrivenSimulator(circuit, node_capacitance=caps, width=width)
    vector.reset(latch_state=0)
    vector.settle(pack_bit_matrix(bits[0]))
    scalars = []
    for lane in range(width):
        scalar = EventDrivenSimulator(circuit, node_capacitance=caps, backend="scalar")
        scalar.reset(latch_state=0)
        scalar.settle(bits[0][:, lane].tolist())
        scalars.append(scalar)
    for step in range(1, 6):
        lanes = vector.cycle_lanes(pack_bit_matrix(bits[step]))
        expected = [s.cycle(bits[step][:, lane].tolist()) for lane, s in enumerate(scalars)]
        np.testing.assert_allclose(lanes, expected)
