"""Distributed chaos benchmark: network faults must not change the estimate.

The cross-host contract is the same absolute gate as the in-process chaos
benchmark, now over real TCP: a :class:`DipeEstimator` run whose shard pool
lives behind a :class:`~repro.core.transport.ShardCoordinator` with real
``run_shard_worker`` processes on localhost must produce an estimate
draw-for-draw identical to the fault-free single-process run — samples,
sample size, cycles, power — for every network failure mode in the matrix
(connection drops, partitions, slow links, truncated frames, stale-epoch
reconnects) and for elastic membership changes (a worker joining and a
worker leaving mid-run), on **both** power engines.  There is no timing
floor to soften; the measured recovery cost per scenario is recorded to
``benchmarks/results/BENCH_distributed.json`` and ``distributed.txt`` so
the overhead of distribution can be tracked across commits.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import socket
import time

import numpy as np

from benchmarks.conftest import write_bench_json, write_report
from repro.api.events import (
    EstimateCompleted,
    WorkerJoined,
    WorkerLeft,
    WorkerLost,
    WorkerRecovered,
)
from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.faults import KILLED_EXIT_CODE, FaultSchedule, inject
from repro.utils.tables import TextTable

_CIRCUIT = "s298"
_TOKEN = "bench-secret"

#: First sampling-round commands: 0 build, 1 latch feed, 2 warmup feed,
#: 3 prepare, then (feed, sample) per round — 5 is the first sample command.
_MID_RUN_COMMAND = 5

_CONFIG_KW = dict(
    randomness_sequence_length=64,
    min_samples=64,
    check_interval=32,
    max_samples=600,
    warmup_cycles=16,
    max_independence_interval=8,
    num_chains=128,
    worker_retry_backoff=0.01,
)


def _worker_main(port: int, token: str) -> None:
    from repro.core.transport import run_shard_worker

    run_shard_worker(
        f"127.0.0.1:{port}", token, max_reconnects=400, reconnect_backoff=0.05
    )


def _start_workers(port: int, count: int) -> list:
    ctx = mp.get_context("fork")
    workers = [
        ctx.Process(target=_worker_main, args=(port, _TOKEN), daemon=True)
        for _ in range(count)
    ]
    for worker in workers:
        worker.start()
    return workers


def _reap(workers: list) -> list:
    codes = []
    for worker in workers:
        worker.join(timeout=15.0)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)
        codes.append(worker.exitcode)
    return codes


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


#: The network failure matrix.  Each scenario runs a two-worker (one-worker
#: for the elastic join) TCP pool against the fault-free workers=1 baseline.
_SCENARIOS = [
    {
        "name": "drop-connection",
        "schedule": lambda: FaultSchedule.single(
            0, "drop-connection", point="handle", command=_MID_RUN_COMMAND
        ),
    },
    {
        "name": "partition",
        "schedule": lambda: FaultSchedule.single(
            0, "partition", point="handle", command=_MID_RUN_COMMAND, seconds=2.0
        ),
        "config": {"worker_hang_timeout": 0.5},
    },
    {
        "name": "slow-link",
        "schedule": lambda: FaultSchedule.single(
            0, "slow-link", point="handle", command=_MID_RUN_COMMAND, seconds=0.01
        ),
    },
    {
        "name": "truncated-frame",
        "schedule": lambda: FaultSchedule.single(
            0, "truncated-frame", point="handle", command=_MID_RUN_COMMAND
        ),
    },
    # A dropped worker resumes with its stale epoch, is fenced, and rejoins
    # fresh — the later recv-point drop exercises the reconnect race after
    # the coordinator has already reassigned the seat.
    {
        "name": "stale-reconnect",
        "schedule": lambda: FaultSchedule.single(
            0, "drop-connection", point="recv", command=_MID_RUN_COMMAND + 2
        ),
    },
    {"name": "mid-run-join", "workers": 1, "late_join": True},
    {
        "name": "mid-run-leave",
        "schedule": lambda: FaultSchedule.single(
            0, "kill", point="recv", command=_MID_RUN_COMMAND
        ),
        "config": {"worker_join_timeout": 0.75},
    },
]


def _run_baseline(circuit, engine: str):
    config = EstimationConfig(power_simulator=engine, num_workers=1, **_CONFIG_KW)
    start = time.perf_counter()
    events = list(DipeEstimator(circuit, config=config, rng=11).run())
    elapsed = time.perf_counter() - start
    estimate = next(
        e for e in reversed(events) if isinstance(e, EstimateCompleted)
    ).estimate
    return estimate, elapsed


def _run_scenario(circuit, engine: str, scenario: dict):
    """One distributed run; returns (estimate, events, elapsed, exit_codes)."""
    workers = scenario.get("workers", 2)
    port = _free_port()
    procs = _start_workers(port, workers)
    late: list = []
    try:
        settings = dict(_CONFIG_KW, worker_join_timeout=15.0)
        settings.update(scenario.get("config", {}))
        config = EstimationConfig(
            power_simulator=engine,
            num_workers=workers,
            worker_hosts=f"127.0.0.1:{port}",
            worker_auth_token=_TOKEN,
            **settings,
        )
        schedule = scenario["schedule"]() if "schedule" in scenario else None
        events: list = []
        start = time.perf_counter()
        # The estimator builds its shard pool at construction, so the schedule
        # must be ambient before DipeEstimator() runs, not just around run().
        if schedule is not None:
            with inject(schedule):
                events = list(DipeEstimator(circuit, config=config, rng=11).run())
        else:
            stream = DipeEstimator(circuit, config=config, rng=11).run()
            for event in stream:
                events.append(event)
                if scenario.get("late_join") and not late:
                    late = _start_workers(port, 1)
                    time.sleep(0.5)  # let the late member authenticate
        # The estimator's sampler releases its workers (and closes the
        # coordinator it owns) from a weakref finalizer — force it now so
        # the released workers exit instead of waiting on a dead socket.
        gc.collect()
        elapsed = time.perf_counter() - start
    finally:
        exit_codes = _reap(procs + late)
    estimate = next(
        e for e in reversed(events) if isinstance(e, EstimateCompleted)
    ).estimate
    return estimate, events, elapsed, exit_codes


def _check_scenario(name: str, events: list, exit_codes: list) -> None:
    """Every scenario must actually exercise its advertised failure mode."""
    lost = [e for e in events if isinstance(e, WorkerLost)]
    recovered = [e for e in events if isinstance(e, WorkerRecovered)]
    joined = [e for e in events if isinstance(e, WorkerJoined)]
    if name in ("drop-connection", "partition", "truncated-frame"):
        assert lost, f"{name}: the injected fault was never observed"
        assert recovered, f"{name}: the lost seat never recovered"
    if name == "truncated-frame":
        assert any(e.reason == "truncated" for e in lost)
    if name == "partition":
        assert any(e.reason in ("hung", "partitioned") for e in lost)
    if name == "slow-link":
        # A slow link is degraded, not dead: supervision must NOT respawn.
        assert not lost, "slow-link: a slow reply was misdiagnosed as a death"
    if name == "stale-reconnect":
        # The dropped worker was fenced on its stale epoch and rejoined as a
        # fresh member: strictly more joins than the two initial seats.
        assert lost and recovered
        assert len(joined) >= 3, "stale-reconnect: no fresh rejoin observed"
    if name == "mid-run-join":
        assert len(joined) >= 2, "mid-run-join: the late worker never joined"
        assert not lost
    if name == "mid-run-leave":
        assert any(e.degraded for e in recovered)
        assert any(
            isinstance(e, WorkerLeft) and e.reason == "exhausted-restarts"
            for e in events
        )
        assert KILLED_EXIT_CODE in exit_codes
    if name != "mid-run-leave":
        assert all(code == 0 for code in exit_codes), (
            f"{name}: released workers must exit cleanly, got {exit_codes}"
        )


def test_bench_distributed_chaos(results_dir):
    """Network failure matrix over real TCP: bit-identical on both engines."""
    circuit = build_circuit(_CIRCUIT)
    table = TextTable(
        headers=["Scenario", "Engine", "Lost", "Recovered", "Joined", "Overhead s"],
        precision=3,
    )
    scenarios_out: dict[str, dict] = {}

    for engine in ("zero-delay", "event-driven"):
        baseline, baseline_elapsed = _run_baseline(circuit, engine)
        for scenario in _SCENARIOS:
            name = scenario["name"]
            estimate, events, elapsed, exit_codes = _run_scenario(
                circuit, engine, scenario
            )
            # The hard gate: no network fault may perturb a single drawn sample.
            assert np.array_equal(
                estimate.samples_switched_capacitance_f,
                baseline.samples_switched_capacitance_f,
            ), f"{name}/{engine}: sample stream diverged over TCP"
            assert estimate.average_power_w == baseline.average_power_w
            assert estimate.sample_size == baseline.sample_size
            assert estimate.cycles_simulated == baseline.cycles_simulated
            _check_scenario(name, events, exit_codes)

            lost = [e for e in events if isinstance(e, WorkerLost)]
            recovered = [e for e in events if isinstance(e, WorkerRecovered)]
            joined = [e for e in events if isinstance(e, WorkerJoined)]
            overhead = elapsed - baseline_elapsed
            table.add_row(
                [name, engine, len(lost), len(recovered), len(joined), overhead]
            )
            scenarios_out.setdefault(name, {})[engine] = {
                "workers_lost": len(lost),
                "workers_recovered": len(recovered),
                "workers_joined": len(joined),
                "replayed_commands": sum(e.replayed_commands for e in recovered),
                "degraded_seats": sum(1 for e in recovered if e.degraded),
                "worker_exit_codes": exit_codes,
                "baseline_elapsed_seconds": baseline_elapsed,
                "distributed_elapsed_seconds": elapsed,
                "overhead_seconds": overhead,
                "estimate_bit_identical": True,
            }

    lines = [
        f"Cross-host distributed sampling on {_CIRCUIT} over localhost TCP "
        f"({len(_SCENARIOS)} network-fault scenarios, both power engines)",
        "Estimates are bit-identical to the fault-free single-process run.",
        "",
        table.render(),
    ]
    write_report(results_dir, "distributed", "\n".join(lines))
    write_bench_json(
        results_dir,
        "distributed",
        {
            "circuit": _CIRCUIT,
            "transport": "tcp",
            "scenarios": scenarios_out,
        },
    )
