"""Throughput benchmark: per-circuit codegen kernel vs. the numpy sweeps.

The codegen backend (PR 10) specializes the lowered :class:`CircuitProgram`
into a straight-line C translation unit — one literal expression per gate
over named row slots — and compiles it once per circuit.  This benchmark
pins the claim the backend was built on: on s5378 at an ensemble width of
256 lanes the compiled sweep sustains at least 5x the chain-cycles/second
of the numpy backend's portable grouped sweep, while remaining bit-identical
to both the numpy and big-int backends.  It also proves the operational
half of the claim: a warm process finds the shared object in the
``REPRO_PROGRAM_CACHE`` directory and performs **zero** compiler
invocations, so shard workers and repeated CI runs never pay gcc twice.

The formatted comparison is written to ``benchmarks/results/codegen.txt``
and ``BENCH_codegen.json`` carries the machine-readable rates per commit.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np

from benchmarks.conftest import write_bench_json, write_report
from repro.circuits.iscas89 import build_circuit
from repro.circuits.program import CircuitProgram
from repro.power.capacitance import CapacitanceModel
from repro.simulation import _native
from repro.simulation.vectorized import VectorizedZeroDelaySimulator
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable

#: Ensemble width of the comparison (the acceptance point of the claim).
_WIDTH = 256

#: Circuit the >=5x assertion is evaluated on (the paper's large benchmark).
_CIRCUIT = "s5378"

#: Required compiled-vs-numpy speed-up at ``_WIDTH`` lanes.
_FLOOR = 5.0

needs_compiler = _native.find_compiler() is not None


def _strict() -> bool:
    """False relaxes the 5x assertion to a regression floor (noisy machines)."""
    return os.environ.get("REPRO_BENCH_STRICT", "1") not in ("", "0", "false", "no")


def _sweep_rate(circuit, sweep: str, cycles: int, repeats: int = 3) -> float:
    """Best-of-*repeats* ``step_and_measure`` cycles/second for one strategy."""
    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = VectorizedZeroDelaySimulator(
        circuit, width=_WIDTH, node_capacitance=caps, sweep=sweep
    )
    assert simulator.sweep == sweep, (
        f"requested sweep {sweep!r} degraded to {simulator.sweep!r}"
    )
    simulator.randomize_state(rng)
    patterns = [stimulus.next_pattern_words(rng, width=_WIDTH) for _ in range(cycles)]
    simulator.settle(patterns[0])

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for pattern in patterns:
            simulator.step_and_measure(pattern)
        best = min(best, time.perf_counter() - start)
    return cycles / best


def _bit_identity(circuit) -> None:
    """Compiled outputs are pinned to the numpy and big-int backends."""
    cycles = 30
    rng = np.random.default_rng(7)
    patterns = [
        [int(v) for v in rng.integers(0, 2, size=circuit.num_inputs)]
        for _ in range(cycles)
    ]
    results = {}
    for backend in ("compiled", "numpy", "bigint"):
        simulator = ZeroDelaySimulator(circuit, width=64, backend=backend)
        simulator.randomize_state(np.random.default_rng(13))
        energies = [simulator.step_and_measure(p) for p in patterns]
        results[backend] = (energies, simulator.latch_state())
    # same word-sliced float reduction: exact equality against numpy
    assert results["compiled"][0] == results["numpy"][0]
    assert results["compiled"][1] == results["numpy"][1]
    # big-int reduces per lane; values agree to float64 resolution
    assert results["compiled"][1] == results["bigint"][1]
    np.testing.assert_allclose(results["compiled"][0], results["bigint"][0], rtol=1e-12)


def _warm_start_invocations(cache_dir: str) -> tuple[int, int]:
    """(cold, warm) gcc invocation counts of two fresh processes sharing a cache."""
    script = (
        "from repro.circuits.iscas89 import build_circuit\n"
        "from repro.circuits.program import CircuitProgram\n"
        "from repro.simulation import _native, codegen\n"
        f"program = CircuitProgram.of(build_circuit({_CIRCUIT!r}))\n"
        "assert codegen.load_program_kernel(program) is not None\n"
        "print(_native.compiler_invocations())\n"
    )
    env = {
        **os.environ,
        "REPRO_PROGRAM_CACHE": cache_dir,
        "PYTHONPATH": os.pathsep.join(sys.path),
    }
    env.pop("REPRO_NATIVE", None)
    counts = []
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        counts.append(int(result.stdout.strip()))
    return counts[0], counts[1]


def test_bench_codegen_speedup(results_dir, tmp_path):
    """The codegen sweep sustains >=5x the numpy-backend cycle rate at width 256."""
    if not needs_compiler:
        import pytest

        pytest.skip("no C compiler available; codegen backend cannot build")

    circuit = build_circuit(_CIRCUIT)
    program = CircuitProgram.of(circuit)

    _bit_identity(circuit)

    cycles = 150
    groups_rate = _sweep_rate(circuit, "groups", 30)
    native_rate = _sweep_rate(circuit, "native", cycles)
    codegen_rate = _sweep_rate(circuit, "codegen", cycles)
    floor = _FLOOR if _strict() else 0.8
    if codegen_rate < floor * groups_rate:
        # Timing assertions on shared machines deserve one clean retry
        # before they fail the suite.
        groups_rate = _sweep_rate(circuit, "groups", 30)
        codegen_rate = _sweep_rate(circuit, "codegen", cycles)
    speedup = codegen_rate / groups_rate

    cold, warm = _warm_start_invocations(str(tmp_path))

    table = TextTable(
        headers=["Sweep", "cyc/s", "chain-cyc/s", "vs numpy groups"],
        precision=1,
    )
    for label, rate in (
        ("numpy groups", groups_rate),
        ("generic native", native_rate),
        ("codegen", codegen_rate),
    ):
        table.add_row([label, rate, rate * _WIDTH, rate / groups_rate])

    lines = [
        f"Per-circuit codegen sweep vs. numpy backend on {_CIRCUIT} "
        f"({circuit.num_gates} gates) at width {_WIDTH}",
        "",
        table.render(),
        "",
        f"codegen / numpy-groups speed-up: {speedup:.1f}x (floor {_FLOOR}x)",
        f"warm-start gcc invocations: cold={cold} warm={warm} "
        "(shared-object cache hit => no compiler)",
    ]
    write_report(results_dir, "codegen", "\n".join(lines))
    write_bench_json(
        results_dir,
        "codegen",
        {
            "circuit": _CIRCUIT,
            "gates": circuit.num_gates,
            "width": _WIDTH,
            "program_key": program.key,
            "groups_cycles_per_second": groups_rate,
            "native_cycles_per_second": native_rate,
            "codegen_cycles_per_second": codegen_rate,
            "codegen_chain_cycles_per_second": codegen_rate * _WIDTH,
            "groups_chain_cycles_per_second": groups_rate * _WIDTH,
            "speedup_vs_groups": speedup,
            "speedup_vs_native": codegen_rate / native_rate,
            "speedup_floor": _FLOOR,
            "cold_compiler_invocations": cold,
            "warm_compiler_invocations": warm,
            "bit_identical_to": ["numpy", "bigint"],
        },
    )

    assert warm == 0, "warm process re-invoked the compiler despite the disk cache"
    assert cold >= 1
    assert speedup >= floor, (
        f"codegen sweep only {speedup:.1f}x the numpy grouped sweep "
        f"({codegen_rate:.0f} vs {groups_rate:.0f} cyc/s at width {_WIDTH})"
    )
