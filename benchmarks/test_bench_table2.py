"""Benchmark: regenerate Table 2 (repeated-run simulation summary).

Paper reference (Table 2): over 1,000 runs per circuit, the min/max/average
independence interval, the average sample size, the average percentage
deviation from the reference (around 1 %) and the fraction of runs violating
the specification (near zero).  The run count is reduced at quick scale.
"""

from __future__ import annotations

from benchmarks.conftest import timed_pedantic, write_bench_json, write_report
from repro.experiments.table2 import format_table2, run_table2


def test_bench_table2(
    benchmark, small_bench_circuits, repeated_runs, reference_cycles, paper_config, results_dir
):
    """Regenerate Table 2 and check the repeated-run accuracy claims."""

    def run():
        return run_table2(
            circuit_names=small_bench_circuits,
            runs_per_circuit=repeated_runs,
            config=paper_config,
            reference_cycles=reference_cycles,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_table2(result)
    write_report(results_dir, "table2", report)
    write_bench_json(
        results_dir,
        "table2",
        {
            "elapsed_seconds": elapsed,
            "runs_per_circuit": repeated_runs,
            "reference_cycles": reference_cycles,
            "circuits": list(small_bench_circuits),
            "result": result.to_dict(),
        },
    )
    print("\n" + report)

    for row in result.rows:
        # Average deviation stays well below the 5 % specification (paper: ~1 %).
        assert row.deviation_avg_pct < 5.0, row
        # Interval statistics behave like the paper's: small, with modest spread.
        assert row.interval_min <= row.interval_avg <= row.interval_max <= 12, row
        # Violations of the specification are rare.
        assert row.violation_pct <= 20.0, row
