"""Micro-benchmarks of the statistical kernels (runs test, stopping criteria).

These quantify the (negligible) analysis overhead that the paper's flow adds
on top of circuit simulation: a runs test on a 320-sample sequence and one
stopping-criterion evaluation per 32 new samples.
"""

from __future__ import annotations

import numpy as np

from repro.stats.randomness import runs_test_on_values
from repro.stats.stopping import make_stopping_criterion


def test_bench_runs_test_paper_length(benchmark):
    """Runs test on the paper's sequence length of 320."""
    rng = np.random.default_rng(0)
    sequence = rng.gamma(4.0, 1.0, size=320).tolist()
    result = benchmark(runs_test_on_values, sequence, 0.20)
    assert result.sequence_length > 0


def test_bench_runs_test_figure3_length(benchmark):
    """Runs test on the Figure 3 sequence length of 10,000."""
    rng = np.random.default_rng(1)
    sequence = rng.gamma(4.0, 1.0, size=10_000).tolist()
    result = benchmark(runs_test_on_values, sequence, 0.20)
    assert result.sequence_length > 0


def test_bench_order_statistic_criterion(benchmark):
    """One evaluation of the paper's stopping criterion on a 4,000-point sample."""
    rng = np.random.default_rng(2)
    sample = rng.gamma(4.0, 1.0, size=4_000).tolist()
    criterion = make_stopping_criterion("order-statistic")
    decision = benchmark(criterion.evaluate, sample)
    assert decision.sample_size == 4_000


def test_bench_ks_criterion(benchmark):
    """One evaluation of the Kolmogorov-Smirnov criterion on a 4,000-point sample."""
    rng = np.random.default_rng(3)
    sample = rng.gamma(4.0, 1.0, size=4_000).tolist()
    criterion = make_stopping_criterion("ks")
    decision = benchmark(criterion.evaluate, sample)
    assert decision.sample_size == 4_000


def test_bench_stats_json_snapshot(results_dir):
    """Machine-readable evaluations/sec snapshot of the statistical kernels."""
    import time

    from benchmarks.conftest import write_bench_json

    rng = np.random.default_rng(7)
    sequence = rng.gamma(4.0, 1.0, size=320).tolist()
    sample = rng.gamma(4.0, 1.0, size=4_000).tolist()
    criterion = make_stopping_criterion("order-statistic")

    kernels = {
        "runs_test_320": (lambda: runs_test_on_values(sequence, 0.20), 50),
        "order_statistic_4000": (lambda: criterion.evaluate(sample), 50),
    }
    metrics = {}
    for key, (runner, repeats) in kernels.items():
        start = time.perf_counter()
        for _ in range(repeats):
            runner()
        elapsed = time.perf_counter() - start
        metrics[key] = {"evaluations_per_second": repeats / elapsed}
    write_bench_json(results_dir, "stats", {"kernels": metrics})
