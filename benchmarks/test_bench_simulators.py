"""Micro-benchmarks of the simulation substrates.

These do not correspond to a table in the paper; they document the raw
simulation throughput that the CPU-time column of Table 1 is built on, and
the cost ratio between the cheap zero-delay phase and the general-delay
(event-driven) power measurement that motivates the two-phase sampling
scheme of Section IV.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_bench_json
from repro.circuits.iscas89 import build_circuit
from repro.power.capacitance import CapacitanceModel
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus

_CYCLES = 200


def _run_zero_delay(circuit, width, cycles=_CYCLES):
    caps = CapacitanceModel().node_capacitances(circuit)
    simulator = ZeroDelaySimulator(circuit, width=width, node_capacitance=caps)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator.randomize_state(rng)
    simulator.settle(stimulus.next_pattern(rng, width=width))
    total = 0.0
    for _ in range(cycles):
        total += simulator.step_and_measure(stimulus.next_pattern(rng, width=width))
    return total


def _run_event_driven(circuit, cycles=_CYCLES):
    caps = CapacitanceModel().node_capacitances(circuit)
    simulator = EventDrivenSimulator(circuit, node_capacitance=caps)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator.randomize_state(rng)
    simulator.settle(stimulus.next_pattern(rng, width=1))
    total = 0.0
    for _ in range(cycles):
        total += simulator.cycle(stimulus.next_pattern(rng, width=1))
    return total


def test_bench_zero_delay_single_lane_s1494(benchmark):
    """Single-chain zero-delay throughput on a mid-size circuit."""
    circuit = build_circuit("s1494")
    total = benchmark(_run_zero_delay, circuit, 1)
    assert total > 0


def test_bench_zero_delay_64_lanes_s1494(benchmark):
    """64-lane bit-parallel throughput (the reference-estimator configuration)."""
    circuit = build_circuit("s1494")
    total = benchmark(_run_zero_delay, circuit, 64)
    assert total > 0


def test_bench_event_driven_s1494(benchmark):
    """General-delay event-driven throughput (the glitch-aware power engine)."""
    circuit = build_circuit("s1494")
    total = benchmark(_run_event_driven, circuit)
    assert total > 0


def test_bench_zero_delay_large_circuit_s5378(benchmark):
    """Single-chain zero-delay throughput on the smallest 'large' benchmark."""
    circuit = build_circuit("s5378")
    total = benchmark.pedantic(_run_zero_delay, args=(circuit, 1, 100), rounds=1, iterations=1)
    assert total > 0


def _run_event_driven_vectorized(circuit, width, cycles=_CYCLES):
    caps = CapacitanceModel().node_capacitances(circuit)
    simulator = EventDrivenSimulator(circuit, node_capacitance=caps, width=width)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator.randomize_state(rng)
    simulator.settle(stimulus.next_pattern_words(rng, width=width))
    total = 0.0
    for _ in range(cycles):
        total += simulator.cycle(stimulus.next_pattern_words(rng, width=width))
    return total


def test_bench_simulators_json_snapshot(results_dir):
    """Machine-readable cycles/sec snapshot of every simulation substrate."""
    circuit = build_circuit("s1494")
    configurations = {
        "zero_delay_width1": (lambda: _run_zero_delay(circuit, 1, 100), 100, 1),
        "zero_delay_width64": (lambda: _run_zero_delay(circuit, 64, 100), 100, 64),
        "event_driven_scalar": (lambda: _run_event_driven(circuit, 40), 40, 1),
        "event_driven_numpy_width64": (
            lambda: _run_event_driven_vectorized(circuit, 64, 40),
            40,
            64,
        ),
    }
    metrics = {}
    for key, (runner, cycles, width) in configurations.items():
        start = time.perf_counter()
        assert runner() > 0
        elapsed = time.perf_counter() - start
        metrics[key] = {
            "circuit": "s1494",
            "width": width,
            "cycles_per_second": cycles / elapsed,
            "chain_cycles_per_second": cycles * width / elapsed,
        }
    write_bench_json(results_dir, "simulators", {"configurations": metrics})
