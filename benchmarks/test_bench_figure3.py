"""Benchmark: regenerate Figure 3 (runs-test z statistic vs trial interval).

Paper reference (Figure 3): for circuit s1494 and a power sequence of length
10,000, the z statistic starts large (around 30-40 at interval 0, i.e. strong
serial correlation) and falls below the acceptance threshold within a few
clock cycles.  The expected *shape* is the fast decay; absolute z values
depend on the circuit analogue.
"""

from __future__ import annotations

from benchmarks.conftest import full_scale, timed_pedantic, write_bench_json, write_report
from repro.experiments.figure3 import format_figure3, run_figure3


def test_bench_figure3(benchmark, results_dir):
    """Regenerate the Figure 3 sweep on the s1494 analogue."""
    sequence_length = 10_000 if full_scale() else 1_200
    max_interval = 30 if full_scale() else 16

    def run():
        return run_figure3(
            circuit_name="s1494",
            max_interval=max_interval,
            sequence_length=sequence_length,
            significance_level=0.20,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_figure3(result)
    write_report(results_dir, "figure3", report)
    write_bench_json(
        results_dir,
        "figure3",
        {
            "elapsed_seconds": elapsed,
            "circuit": "s1494",
            "sequence_length": sequence_length,
            "max_interval": max_interval,
            "result": result.to_dict(),
        },
    )
    print("\n" + report)

    z_values = [point.z_statistic for point in result.points]
    # Shape check 1: strong correlation at interval 0.
    assert z_values[0] > result.acceptance_threshold
    # Shape check 2: the statistic decays and the hypothesis is eventually accepted.
    accepted_at = result.first_accepted_interval()
    assert accepted_at is not None and accepted_at <= 12
    # Shape check 3: the tail of the curve sits well below the starting value.
    tail_average = sum(z_values[-10:]) / 10
    assert tail_average < z_values[0]
