"""Variance-reduction benchmark: samples-to-target-CI vs. iid Bernoulli.

The ``repro.variance`` subsystem claims *sample efficiency*: the same
confidence interval from fewer Monte-Carlo samples.  This benchmark pins
that claim as a hard gate:

* every technique runs the full estimator stack to the same relative-error
  target as an iid-Bernoulli baseline, over a fixed seed set, and the ratio
  ``mean(iid samples-to-stop) / mean(technique samples-to-stop)`` is the
  measured sample-efficiency gain;
* at least **two** of {antithetic, sobol, control-variate} must reach a
  **>= 2x** gain on at least **two** ISCAS circuits (the gate is never
  softened by ``REPRO_BENCH_STRICT`` — seeds are fixed, so the measured
  ratios are deterministic, not timing-noisy);
* every technique/circuit cell is also pinned for unbiasedness: the mean
  estimate must agree with the iid baseline within the combined CI
  half-widths.

Lane-coupled stimuli (antithetic, sobol) gate on the zero-delay simulator
where the per-sample dispersion dominates (s27, s386 — the circuits where
iid sampling genuinely struggles); the control-variate estimator gates on
the event-driven simulator (s27, s208), regressing out the zero-delay
toggle component.  All arms stop on the CLT criterion, which targets the
mean — the estimand the variance techniques improve.

The formatted comparison goes to ``benchmarks/results/variance.txt`` and
machine-readable metrics to ``benchmarks/results/BENCH_variance.json``
(schema documented in ``docs/benchmarks.md``).
"""

from __future__ import annotations

import time

from benchmarks.conftest import full_scale, write_bench_json, write_report
from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable
from repro.variance import AntitheticStimulus, ControlVariateEstimator, SobolStimulus

#: Gain every gated technique must reach on >= _MIN_CIRCUITS circuits.
_FLOOR = 2.0
_MIN_CIRCUITS = 2
_MIN_TECHNIQUES = 2

#: Circuits with high per-sample dispersion: the lane-coupled stimuli gate
#: here, where the iid baseline needs thousands of samples.
_LANE_CIRCUITS = ("s27", "s386")

#: The control variate gates where glitch power rides on a strong
#: zero-delay toggle component.
_CV_CIRCUITS = ("s27", "s208")

#: Fixed seeds: the measured ratios are deterministic, making the >= 2x
#: assertion reproducible rather than a statistical coin flip.
_SEEDS = (11, 12, 13, 14, 15, 16)
_FULL_SEEDS = tuple(range(11, 23))

#: Zero-delay cheap-control window per measured sample (cheap cycles are
#: nearly free next to an event-driven measured cycle).
_CHEAP_CYCLES = 128


def _seeds():
    return _FULL_SEEDS if full_scale() else _SEEDS


def _lane_config():
    return EstimationConfig(
        num_chains=128,
        randomness_sequence_length=64,
        max_independence_interval=8,
        min_samples=256,
        check_interval=64,
        max_samples=500_000,
        warmup_cycles=16,
        max_relative_error=0.012,
        stopping_criterion="clt",
    )


def _cv_config():
    return EstimationConfig(
        power_simulator="event-driven",
        num_chains=64,
        randomness_sequence_length=64,
        max_independence_interval=8,
        min_samples=256,
        check_interval=64,
        max_samples=500_000,
        warmup_cycles=16,
        max_relative_error=0.012,
        stopping_criterion="clt",
    )


def _iid(circuit, config, seed):
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    return DipeEstimator(circuit, stimulus=stimulus, config=config, rng=seed)


def _runs(build):
    """Per-seed (samples-to-stop, estimate, CI half-width) triples."""
    rows = []
    for seed in _seeds():
        result = build(seed).estimate()
        half_width = (result.upper_bound_w - result.lower_bound_w) / 2.0
        rows.append((result.sample_size, result.average_power_w, half_width))
    return rows


def _mean(values):
    return sum(values) / len(values)


def _cell(circuit_name, technique, config, build_technique):
    """One technique/circuit comparison against the iid baseline."""
    circuit = build_circuit(circuit_name)
    start = time.perf_counter()
    iid_rows = _runs(lambda seed: _iid(circuit, config, seed))
    technique_rows = _runs(lambda seed: build_technique(circuit, seed))
    elapsed = time.perf_counter() - start

    iid_samples = _mean([row[0] for row in iid_rows])
    technique_samples = _mean([row[0] for row in technique_rows])
    iid_estimate = _mean([row[1] for row in iid_rows])
    technique_estimate = _mean([row[1] for row in technique_rows])
    combined_half_width = _mean([row[2] for row in iid_rows]) + _mean(
        [row[2] for row in technique_rows]
    )
    return {
        "technique": technique,
        "circuit": circuit_name,
        "iid_mean_samples": iid_samples,
        "technique_mean_samples": technique_samples,
        "sample_reduction": iid_samples / technique_samples,
        "iid_mean_estimate_w": iid_estimate,
        "technique_mean_estimate_w": technique_estimate,
        "combined_half_width_w": combined_half_width,
        "estimate_gap_w": abs(technique_estimate - iid_estimate),
        "elapsed_seconds": elapsed,
    }


def test_bench_variance(results_dir):
    """>= 2x samples-to-target-CI on >= 2 circuits for >= 2 techniques."""
    lane_config = _lane_config()
    cv_config = _cv_config()

    def antithetic(circuit, seed):
        return DipeEstimator(
            circuit,
            stimulus=AntitheticStimulus(circuit.num_inputs),
            config=lane_config,
            rng=seed,
        )

    def sobol(circuit, seed):
        return DipeEstimator(
            circuit,
            stimulus=SobolStimulus(circuit.num_inputs),
            config=lane_config,
            rng=seed,
        )

    def control_variate(circuit, seed):
        return ControlVariateEstimator(
            circuit, config=cv_config, rng=seed, cheap_cycles=_CHEAP_CYCLES
        )

    cells = []
    for circuit_name in _LANE_CIRCUITS:
        cells.append(_cell(circuit_name, "antithetic", lane_config, antithetic))
        cells.append(_cell(circuit_name, "sobol", lane_config, sobol))
    for circuit_name in _CV_CIRCUITS:
        cells.append(_cell(circuit_name, "control-variate", cv_config, control_variate))

    # Unbiasedness pin: every technique agrees with the iid baseline within
    # the combined CI half-widths — variance reduction must not move the
    # estimand.  This is a hard gate on every cell, gated or not.
    for cell in cells:
        assert cell["estimate_gap_w"] <= cell["combined_half_width_w"], (
            f"{cell['technique']} on {cell['circuit']}: mean estimate "
            f"{cell['technique_mean_estimate_w']:.4e} W deviates from the iid "
            f"baseline {cell['iid_mean_estimate_w']:.4e} W by more than the "
            f"combined CI half-width {cell['combined_half_width_w']:.4e} W"
        )

    circuits_over_floor = {}
    for cell in cells:
        if cell["sample_reduction"] >= _FLOOR:
            circuits_over_floor.setdefault(cell["technique"], []).append(cell["circuit"])
    achieved = sorted(
        technique
        for technique, circuits in circuits_over_floor.items()
        if len(circuits) >= _MIN_CIRCUITS
    )

    table = TextTable(
        headers=["Technique", "Circuit", "iid samples", "samples", "Reduction"],
        precision=2,
    )
    for cell in cells:
        table.add_row(
            [
                cell["technique"],
                cell["circuit"],
                cell["iid_mean_samples"],
                cell["technique_mean_samples"],
                cell["sample_reduction"],
            ]
        )
    lines = [
        "Samples-to-target-CI vs. iid Bernoulli "
        f"(CLT stopping at {lane_config.max_relative_error:.1%} relative error, "
        f"{len(_seeds())} seeds per cell)",
        "",
        table.render(),
        "",
        f"Techniques at >= {_FLOOR:.1f}x on >= {_MIN_CIRCUITS} circuits: "
        f"{', '.join(achieved) if achieved else 'none'}",
    ]
    write_report(results_dir, "variance", "\n".join(lines))
    write_bench_json(
        results_dir,
        "variance",
        {
            "floor": _FLOOR,
            "min_circuits": _MIN_CIRCUITS,
            "min_techniques": _MIN_TECHNIQUES,
            "seeds": list(_seeds()),
            "cheap_cycles": _CHEAP_CYCLES,
            "stopping_criterion": "clt",
            "max_relative_error": lane_config.max_relative_error,
            "lane_num_chains": lane_config.num_chains,
            "cv_num_chains": cv_config.num_chains,
            "cells": cells,
            "achieved_techniques": achieved,
            "unbiasedness_checked": True,
        },
    )

    assert len(achieved) >= _MIN_TECHNIQUES, (
        f"only {achieved or 'no techniques'} reached a >= {_FLOOR:.1f}x "
        f"samples-to-target-CI reduction on >= {_MIN_CIRCUITS} circuits "
        f"(need >= {_MIN_TECHNIQUES} of antithetic/sobol/control-variate); "
        "cells: "
        + ", ".join(
            f"{c['technique']}/{c['circuit']}={c['sample_reduction']:.2f}x"
            for c in cells
        )
    )
