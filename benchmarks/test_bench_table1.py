"""Benchmark: regenerate Table 1 (power estimation results per circuit).

Paper reference (Table 1): per circuit, the long-simulation power "SIM", the
independence interval selected by the runs test, the DIPE estimate, the
sample size and the CPU time.  Expected shape (not absolute values):
intervals of a few cycles, estimates within the 5 % / 0.99 specification of
the reference, sample sizes of a few hundred to a few thousand.
"""

from __future__ import annotations

from benchmarks.conftest import timed_pedantic, write_bench_json, write_report
from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, bench_circuits, reference_cycles, paper_config, results_dir):
    """Regenerate Table 1 and check the paper's qualitative claims hold."""

    def run():
        return run_table1(
            circuit_names=bench_circuits,
            config=paper_config,
            reference_cycles=reference_cycles,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_table1(result)
    write_report(results_dir, "table1", report)
    write_bench_json(
        results_dir,
        "table1",
        {
            "elapsed_seconds": elapsed,
            "reference_cycles": reference_cycles,
            "circuits": list(bench_circuits),
            "result": result.to_dict(),
        },
    )
    print("\n" + report)

    assert len(result.rows) == len(bench_circuits)
    for row in result.rows:
        # Paper claim 1: accurate estimates (within the 5 % spec of the reference,
        # with a little slack for the reference's own noise).
        assert row.relative_error < 0.07, row
        # Paper claim 2: an independence interval of a few clock cycles suffices.
        assert 0 <= row.independence_interval <= 12, row
        # Sample sizes in the paper's range (hundreds to thousands).
        assert 64 <= row.sample_size <= 20_000, row
