"""Throughput benchmark: process-sharded vs. in-process multi-chain sampling.

The sharded sampler's contract is twofold: the merged sample stream must be
draw-for-draw identical to the in-process :class:`BatchPowerSampler` with the
same ``num_chains`` (for any worker count), and sharding must buy wall-clock
throughput on multi-core hardware.  This benchmark pins both:

* the 2-worker :class:`ShardedPowerSampler` must reproduce the single-process
  sample blocks exactly (a hard gate on every machine), and
* it must sustain >= 1.7x the samples/second of one worker on s5378 at an
  ensemble width of 256 — asserted only where it is physically possible:
  at least 2 usable CPUs and ``REPRO_BENCH_STRICT`` not disabled.  On
  single-CPU machines the measured ratio is still recorded (processes add
  overhead there, they cannot add parallelism), and a loose no-pathology
  floor applies.

The formatted comparison is written to ``benchmarks/results/sharded.txt``
and the machine-readable metrics to ``benchmarks/results/BENCH_sharded.json``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import write_bench_json, write_report
from repro.circuits.iscas89 import build_circuit
from repro.core.batch_sampler import BatchPowerSampler
from repro.core.config import EstimationConfig
from repro.core.sharded_sampler import ShardedPowerSampler
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable

#: The acceptance point of the claim: s5378, 256 chains, 2 workers.
_CIRCUIT = "s5378"
_WIDTH = 256
_WORKERS = 2

#: Un-measured cycles between samples (a representative s5378 interval).
_INTERVAL = 4

#: Samples per block; large blocks amortise the per-command IPC round trip.
_BLOCK = 4096

#: Blocks measured per timing repeat.
_BLOCKS = 6

#: Required speed-up at 2 workers where >= 2 CPUs are available.
_FLOOR = 1.7


def _strict() -> bool:
    return os.environ.get("REPRO_BENCH_STRICT", "1") not in ("", "0", "false", "no")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _make(num_workers: int, circuit, config):
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    if num_workers == 1:
        return BatchPowerSampler(circuit, stimulus, config, rng=11, num_chains=_WIDTH)
    return ShardedPowerSampler(
        circuit, stimulus, config, rng=11, num_chains=_WIDTH, num_workers=num_workers
    )


def _rate(sampler) -> float:
    """Best-of-3 samples/second over `_BLOCKS` sample blocks."""
    sampler.prepare()
    sampler.sample_block(_INTERVAL, _BLOCK)  # warm caches / worker pipes
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(_BLOCKS):
            sampler.sample_block(_INTERVAL, _BLOCK)
        best = min(best, time.perf_counter() - start)
    return _BLOCKS * _BLOCK / best


def test_bench_sharded_sampler(results_dir):
    """2-worker sharding: bit-identical samples, >= 1.7x samples/sec on 2+ CPUs."""
    circuit = build_circuit(_CIRCUIT)
    config = EstimationConfig(warmup_cycles=32)

    # Hard correctness gate first: the merged stream is draw-for-draw equal.
    reference = _make(1, circuit, config)
    sharded = _make(_WORKERS, circuit, config)
    reference.prepare()
    sharded.prepare()
    expected = reference.sample_block(_INTERVAL, 2 * _WIDTH)
    merged = sharded.sample_block(_INTERVAL, 2 * _WIDTH)
    assert np.array_equal(expected, merged), (
        "sharded sample stream diverged from the in-process sampler"
    )
    sharded.close()

    cpus = _usable_cpus()
    single = _rate(_make(1, circuit, config))
    sharded = _make(_WORKERS, circuit, config)
    speedup = _rate(sharded) / single
    if cpus >= _WORKERS and _strict() and speedup < _FLOOR:
        # Timing assertions on shared machines deserve one clean retry.
        single = _rate(_make(1, circuit, config))
        speedup = _rate(sharded) / single
    sharded_rate = speedup * single
    sharded.close()

    table = TextTable(
        headers=["Circuit", "Chains", "Workers", "samples/s", "Speed-up"], precision=1
    )
    table.add_row([_CIRCUIT, _WIDTH, 1, single, 1.0])
    table.add_row([_CIRCUIT, _WIDTH, _WORKERS, sharded_rate, speedup])
    lines = [
        f"Process-sharded sampling on {_CIRCUIT} at width {_WIDTH} "
        f"(interval {_INTERVAL}, blocks of {_BLOCK} samples, {cpus} usable CPUs)",
        "",
        table.render(),
    ]
    write_report(results_dir, "sharded", "\n".join(lines))
    write_bench_json(
        results_dir,
        "sharded",
        {
            "circuit": _CIRCUIT,
            "width": _WIDTH,
            "workers": _WORKERS,
            "interval": _INTERVAL,
            "usable_cpus": cpus,
            "single_worker_samples_per_second": single,
            "sharded_samples_per_second": sharded_rate,
            "speedup": speedup,
            "floor_asserted": bool(cpus >= _WORKERS and _strict()),
            "merge_bit_identical": True,
        },
    )

    if cpus >= _WORKERS and _strict():
        assert speedup >= _FLOOR, (
            f"{_CIRCUIT}: sharding across {_WORKERS} workers only reached "
            f"{speedup:.2f}x samples/sec at width {_WIDTH} (expected >= {_FLOOR}x; "
            f"set REPRO_BENCH_STRICT=0 on machines too noisy for timing assertions)"
        )
    else:
        # One CPU cannot run two workers in parallel; only guard against a
        # pathologically slow sharded path (IPC should cost far less than 2x).
        assert speedup >= 0.4, (
            f"{_CIRCUIT}: sharded sampling collapsed to {speedup:.2f}x of the "
            f"in-process rate — the worker transport regressed"
        )
