"""Ablation benchmark C: runs-test sequence-length sensitivity.

The paper argues for a sequence length of 320: shorter sequences make the
hypothesis-test outcome fluctuate, longer ones only add simulation cost.
Expected shape: the spread (standard deviation) of the selected independence
interval does not keep improving beyond a few hundred samples, while the
selection cost grows linearly with the sequence length.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import full_scale, timed_pedantic, write_bench_json, write_report
from repro.experiments.ablation_seqlen import format_seqlen_ablation, run_seqlen_ablation


def test_bench_ablation_seqlen(benchmark, paper_config, results_dir):
    circuits = ("s298", "s1494") if full_scale() else ("s298",)
    runs = 30 if full_scale() else 12
    lengths = (80, 160, 320, 640, 1280) if full_scale() else (80, 160, 320, 640)

    def run():
        return run_seqlen_ablation(
            circuit_names=circuits,
            sequence_lengths=lengths,
            runs_per_setting=runs,
            config=paper_config,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_seqlen_ablation(result)
    write_report(results_dir, "ablation_seqlen", report)
    write_bench_json(
        results_dir,
        "ablation_seqlen",
        {
            "elapsed_seconds": elapsed,
            "circuits": list(circuits),
            "sequence_lengths": list(lengths),
            "runs_per_setting": runs,
            "result": dataclasses.asdict(result),
        },
    )
    print("\n" + report)

    for circuit in circuits:
        rows = [row for row in result.rows if row.circuit == circuit]
        rows.sort(key=lambda row: row.sequence_length)
        # Selection cost grows with the sequence length...
        assert rows[-1].mean_selection_cycles > rows[0].mean_selection_cycles
        # ...while the selected interval stays small at every length.
        assert all(row.interval_max <= 12 for row in rows)
        # At 320 and above the procedure essentially always converges.
        assert all(row.converged_fraction >= 0.9 for row in rows if row.sequence_length >= 320)
