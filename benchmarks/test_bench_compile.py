"""Startup benchmark: cold circuit lowering vs. cached program construction.

Before the unified :class:`~repro.circuits.program.CircuitProgram` lowering,
every simulator instance rebuilt its own level groups, gather tables and
delay quantizations from the compiled circuit — a cost paid once per worker
in the sharded pool and once per job in the batch runner.  This benchmark
pins the tentpole claims of the refactor on s5378:

* **cache-hit construction is >= 5x faster than a cold compile** — building
  the zero-delay + event-driven engine pair on a circuit whose program is
  already memoized (or on disk) must beat the cold path that performs the
  full lowering, by at least :data:`_SPEEDUP_FLOOR` (hard assertion);
* **sharded-pool startup compiles exactly once** — constructing a
  :class:`~repro.core.sharded_sampler.ShardedPowerSampler` over several
  workers raises the global compile counter by exactly one from cold and by
  zero when the program is prebuilt, i.e. startup compile cost no longer
  scales with the worker count.

Metrics land in ``benchmarks/results/BENCH_compile.json`` (and the formatted
report in ``compile.txt``) so CI tracks the startup trajectory.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_bench_json, write_report
from repro.circuits.iscas89 import build_netlist
from repro.circuits.program import CircuitProgram, clear_program_memo, compile_count
from repro.core.config import EstimationConfig
from repro.core.sharded_sampler import ShardedPowerSampler
from repro.power.capacitance import CapacitanceModel
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable

#: The acceptance point of the claim: s5378 at a representative ensemble width.
_CIRCUIT = "s5378"
_WIDTH = 256

#: Required cold-compile / cache-hit construction ratio.
_SPEEDUP_FLOOR = 5.0

#: Timing repeats (the minimum is reported, as everywhere in this harness).
_REPEATS = 3

#: Worker count of the sharded-startup compile-count check (serial pool, so
#: the compile counter is observable in-process and the check is
#: deterministic on single-CPU machines).
_WORKERS = 4


def _fresh_circuit() -> CompiledCircuit:
    """A new circuit object with no attached program (bypasses every cache)."""
    return CompiledCircuit.from_netlist(build_netlist(_CIRCUIT))


def _construct_engines(circuit) -> None:
    """The per-simulator startup work a sampler performs: both engines."""
    program = CircuitProgram.of(circuit)
    caps = program.capacitances(CapacitanceModel())
    ZeroDelaySimulator(program, width=_WIDTH, node_capacitance=caps, backend="numpy")
    EventDrivenSimulator(
        program, node_capacitance=caps, width=_WIDTH, backend="numpy"
    )


def _time_construction(make_source) -> float:
    """Minimum seconds over ``_REPEATS`` of engine construction on *make_source*."""
    best = float("inf")
    for _ in range(_REPEATS):
        circuit = make_source()
        start = time.perf_counter()
        _construct_engines(circuit)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_compile_cache(results_dir, monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_PROGRAM_CACHE", raising=False)

    # Cold: fresh circuit object, empty memo, no disk cache — every repeat
    # performs the full lowering plus engine construction.
    def cold_source():
        clear_program_memo()
        return _fresh_circuit()

    cold_seconds = _time_construction(cold_source)

    # Memo hit: the program stays attached to one circuit object, so
    # construction is pure engine setup.
    warm_circuit = _fresh_circuit()
    _construct_engines(warm_circuit)
    memo_seconds = _time_construction(lambda: warm_circuit)

    # Disk hit: populate the on-disk cache once, then construct over a fresh
    # circuit object with a cleared memo — the program deserializes instead
    # of recompiling (the sharded-worker / batch-job startup path).
    monkeypatch.setenv("REPRO_PROGRAM_CACHE", str(tmp_path))
    clear_program_memo()
    _construct_engines(_fresh_circuit())  # writes the cache file

    def disk_source():
        clear_program_memo()
        return _fresh_circuit()

    disk_before = compile_count()
    disk_seconds = _time_construction(disk_source)
    disk_compiles = compile_count() - disk_before
    monkeypatch.delenv("REPRO_PROGRAM_CACHE", raising=False)

    memo_speedup = cold_seconds / memo_seconds
    disk_speedup = cold_seconds / disk_seconds

    # Sharded-pool startup: compile cost must not scale with worker count.
    clear_program_memo()
    cold_sharded_circuit = _fresh_circuit()
    config = EstimationConfig(num_chains=_WIDTH, num_workers=_WORKERS)
    before = compile_count()
    sampler = ShardedPowerSampler(
        cold_sharded_circuit,
        BernoulliStimulus(cold_sharded_circuit.num_inputs, 0.5),
        config,
        rng=1,
        start_method="serial",
    )
    cold_sharded_compiles = compile_count() - before
    sampler.close()

    before = compile_count()
    sampler = ShardedPowerSampler(
        cold_sharded_circuit,
        BernoulliStimulus(cold_sharded_circuit.num_inputs, 0.5),
        config,
        rng=1,
        start_method="serial",
    )
    prebuilt_sharded_compiles = compile_count() - before
    sampler.close()

    table = TextTable(
        headers=["Construction path", "Seconds (min)", "Speed-up vs cold"], precision=4
    )
    table.add_row(["cold compile", cold_seconds, 1.0])
    table.add_row(["program memo hit", memo_seconds, memo_speedup])
    table.add_row(["disk cache hit", disk_seconds, disk_speedup])
    report = (
        f"Startup benchmark on {_CIRCUIT} (width {_WIDTH}, both engines)\n\n"
        + table.render()
        + f"\n\nsharded startup ({_WORKERS} workers): "
        f"{cold_sharded_compiles} compile(s) from cold, "
        f"{prebuilt_sharded_compiles} with a prebuilt program\n"
    )
    write_report(results_dir, "compile", report)
    write_bench_json(
        results_dir,
        "compile",
        {
            "circuit": _CIRCUIT,
            "width": _WIDTH,
            "cold_seconds": cold_seconds,
            "memo_hit_seconds": memo_seconds,
            "disk_hit_seconds": disk_seconds,
            "memo_speedup": memo_speedup,
            "disk_speedup": disk_speedup,
            "disk_hit_compiles": disk_compiles,
            "sharded_workers": _WORKERS,
            "sharded_compiles_cold": cold_sharded_compiles,
            "sharded_compiles_prebuilt": prebuilt_sharded_compiles,
            "speedup_floor": _SPEEDUP_FLOOR,
        },
    )

    # Hard gates (acceptance criteria of the refactor).
    assert disk_compiles == 0, "disk cache hits must not recompile"
    assert cold_sharded_compiles == 1, (
        f"sharded startup compiled {cold_sharded_compiles} times for {_WORKERS} workers; "
        "the program must be lowered exactly once"
    )
    assert prebuilt_sharded_compiles == 0, "prebuilt programs must reach workers whole"
    assert memo_speedup >= _SPEEDUP_FLOOR, (
        f"cache-hit construction only {memo_speedup:.1f}x faster than cold compile "
        f"(need >= {_SPEEDUP_FLOOR}x) — cold {cold_seconds * 1e3:.1f} ms, "
        f"warm {memo_seconds * 1e3:.1f} ms"
    )
