"""Throughput benchmark: vectorized numpy backend vs. the big-int backend.

The multi-chain Monte Carlo layer rests on the claim that one word-sliced
gate sweep over a wide lane ensemble is much cheaper than the equivalent
big-int sweep.  This benchmark pins that claim down: it measures
``step_and_measure`` cycles/second of both backends at an ensemble width of
256 lanes on mid-size and large ISCAS'89-style circuits and asserts the
speed-up.  With the compiled sweep kernel active (the normal situation — it
only needs a C compiler) the numpy backend must be at least 10x faster; when
only the portable grouped-numpy sweep is available the assertion relaxes to a
regression floor, since pure ufunc dispatch cannot beat CPython's C-loop
big-int operations by that margin on deep circuits.

The formatted comparison is written to ``benchmarks/results/vectorized.txt``
and the pytest-benchmark JSON (uploaded as a CI artifact) tracks the absolute
numpy-engine throughput per commit.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import write_bench_json, write_report
from repro.circuits.iscas89 import build_circuit
from repro.power.capacitance import CapacitanceModel
from repro.simulation._native import native_kernel_available
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.random_inputs import BernoulliStimulus
from repro.utils.tables import TextTable

#: Ensemble width of the comparison (the acceptance point of the claim).
_WIDTH = 256

#: Circuits the >=10x assertion is evaluated on (mid-size and large).
_ASSERTED_CIRCUITS = ("s1494", "s5378")

#: Additional context rows (no speed-up assertion; overhead-bound circuits).
_CONTEXT_CIRCUITS = ("s298",)


def _strict() -> bool:
    """False relaxes the 10x assertion to a regression floor (noisy machines)."""
    return os.environ.get("REPRO_BENCH_STRICT", "1") not in ("", "0", "false", "no")


def _cycles_per_second(circuit, backend: str, cycles: int, repeats: int = 5) -> float:
    """Best-of-*repeats* ``step_and_measure`` throughput at ``_WIDTH`` lanes."""
    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = ZeroDelaySimulator(
        circuit, width=_WIDTH, node_capacitance=caps, backend=backend
    )
    simulator.randomize_state(rng)
    if backend == "numpy":
        patterns = [stimulus.next_pattern_words(rng, width=_WIDTH) for _ in range(cycles)]
    else:
        patterns = [stimulus.next_pattern(rng, width=_WIDTH) for _ in range(cycles)]
    simulator.settle(patterns[0])

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for pattern in patterns:
            simulator.step_and_measure(pattern)
        best = min(best, time.perf_counter() - start)
    return cycles / best


def test_bench_vectorized_speedup(results_dir):
    """The numpy backend sustains >=10x the big-int cycle rate at width 256."""
    native = native_kernel_available()
    table = TextTable(
        headers=["Circuit", "Gates", "bigint cyc/s", "numpy cyc/s", "Speed-up", "chain-cyc/s"],
        precision=1,
    )
    ratios: dict[str, float] = {}
    metrics: dict[str, dict] = {}
    for name in _CONTEXT_CIRCUITS + _ASSERTED_CIRCUITS:
        circuit = build_circuit(name)
        slow_cycles = 60 if circuit.num_gates < 1000 else 30
        fast_cycles = 300 if circuit.num_gates < 1000 else 150
        bigint_rate = _cycles_per_second(circuit, "bigint", slow_cycles)
        numpy_rate = _cycles_per_second(circuit, "numpy", fast_cycles)
        floor = 10.0 if name in _ASSERTED_CIRCUITS and native and _strict() else 0.8
        if numpy_rate < floor * bigint_rate:
            # Timing assertions on shared machines deserve one clean retry
            # before they fail the suite.
            bigint_rate = _cycles_per_second(circuit, "bigint", slow_cycles)
            numpy_rate = _cycles_per_second(circuit, "numpy", fast_cycles)
        ratios[name] = numpy_rate / bigint_rate
        metrics[name] = {
            "circuit": name,
            "gates": circuit.num_gates,
            "width": _WIDTH,
            "bigint_cycles_per_second": bigint_rate,
            "numpy_cycles_per_second": numpy_rate,
            "numpy_chain_cycles_per_second": numpy_rate * _WIDTH,
            "speedup": ratios[name],
        }
        table.add_row(
            [
                name,
                circuit.num_gates,
                bigint_rate,
                numpy_rate,
                ratios[name],
                numpy_rate * _WIDTH,
            ]
        )

    lines = [
        f"Zero-delay simulator backend comparison at width {_WIDTH} "
        f"(256 independent lanes per sweep)",
        f"compiled sweep kernel: {'active' if native else 'unavailable (grouped numpy only)'}",
        "",
        table.render(),
    ]
    write_report(results_dir, "vectorized", "\n".join(lines))
    write_bench_json(
        results_dir,
        "vectorized",
        {"width": _WIDTH, "native_kernel": native, "circuits": metrics},
    )

    for name in _ASSERTED_CIRCUITS:
        if native and _strict():
            assert ratios[name] >= 10.0, (
                f"{name}: numpy backend only {ratios[name]:.1f}x faster than big-int "
                f"at width {_WIDTH} (expected >= 10x with the compiled kernel; set "
                f"REPRO_BENCH_STRICT=0 on machines too noisy for timing assertions)"
            )
        else:
            assert ratios[name] >= 0.8, (
                f"{name}: grouped-numpy sweep regressed below the big-int engine "
                f"({ratios[name]:.2f}x)"
            )


def test_bench_numpy_engine_throughput_s1494(benchmark):
    """Absolute numpy-engine cycle rate tracked per commit via the JSON artifact."""
    circuit = build_circuit("s1494")
    caps = CapacitanceModel().node_capacitances(circuit)
    stimulus = BernoulliStimulus(circuit.num_inputs, 0.5)
    rng = np.random.default_rng(1)
    simulator = ZeroDelaySimulator(circuit, width=_WIDTH, node_capacitance=caps, backend="numpy")
    simulator.randomize_state(rng)
    patterns = [stimulus.next_pattern_words(rng, width=_WIDTH) for _ in range(100)]
    simulator.settle(patterns[0])

    def run():
        total = 0.0
        for pattern in patterns:
            total += simulator.step_and_measure(pattern)
        return total

    assert benchmark(run) > 0


def test_bench_batch_sampling_throughput(benchmark):
    """Samples/second of the full multi-chain sampler (stimulus + sweep + lanes)."""
    from repro.core.batch_sampler import BatchPowerSampler
    from repro.core.config import EstimationConfig

    circuit = build_circuit("s1494")
    sampler = BatchPowerSampler(
        circuit,
        BernoulliStimulus(circuit.num_inputs, 0.5),
        EstimationConfig(warmup_cycles=16),
        rng=1,
        num_chains=_WIDTH,
    )
    sampler.prepare()

    def run():
        return sampler.next_samples(interval=4)

    result = benchmark(run)
    assert result.shape == (_WIDTH,)
