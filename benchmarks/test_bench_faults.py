"""Chaos benchmark: worker kills mid-run must not change the estimate.

The fault-tolerance contract is absolute: a :class:`DipeEstimator` run whose
shard workers are killed mid-flight (a seeded :class:`FaultSchedule` with two
kills, one per worker) must produce an estimate draw-for-draw identical to
the fault-free single-process run — samples, sample size, cycles, power — on
**both** power engines.  This is a hard gate on every machine; there is no
timing floor to soften.  The measured recovery overhead (respawns, replayed
commands, recovery seconds, wall-clock delta) is recorded to
``benchmarks/results/BENCH_faults.json`` and ``faults.txt`` so the cost of
supervision can be tracked across commits.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_bench_json, write_report
from repro.api.events import EstimateCompleted, WorkerLost, WorkerRecovered
from repro.circuits.iscas89 import build_circuit
from repro.core.config import EstimationConfig
from repro.core.dipe import DipeEstimator
from repro.faults import FaultSchedule, inject
from repro.utils.tables import TextTable

_CIRCUIT = "s298"
_WORKERS = 2

#: Seed chosen so the two kills land on *different* shards (one per worker),
#: at commands inside the warmup/sampling window every run reaches.
_FAULT_SEED = 1
_KILLS = 2

_CONFIG_KW = dict(
    randomness_sequence_length=64,
    min_samples=64,
    check_interval=32,
    max_samples=1500,
    warmup_cycles=16,
    max_independence_interval=8,
    num_chains=128,
    worker_retry_backoff=0.01,
)


def _run(circuit, engine: str, workers: int, schedule=None):
    """One DIPE run; returns (events, elapsed_seconds)."""
    config = EstimationConfig(
        power_simulator=engine, num_workers=workers, **_CONFIG_KW
    )
    start = time.perf_counter()
    # The estimator builds its shard pool at construction, so the schedule
    # must be ambient before DipeEstimator() runs, not just around run().
    if schedule is not None:
        with inject(schedule):
            events = list(DipeEstimator(circuit, config=config, rng=11).run())
    else:
        events = list(DipeEstimator(circuit, config=config, rng=11).run())
    return events, time.perf_counter() - start


def test_bench_fault_tolerance(results_dir):
    """Two mid-run worker kills: bit-identical estimates on both engines."""
    circuit = build_circuit(_CIRCUIT)
    schedule = FaultSchedule.seeded(
        _FAULT_SEED, _WORKERS, kills=_KILLS, window=(2, 12), points=("recv", "handle")
    )
    table = TextTable(
        headers=["Engine", "Kills", "Respawns", "Replayed", "Recovery s", "Overhead s"],
        precision=3,
    )
    metrics: dict[str, dict] = {}

    for engine in ("zero-delay", "event-driven"):
        baseline_events, baseline_elapsed = _run(circuit, engine, workers=1)
        chaos_events, chaos_elapsed = _run(
            circuit, engine, workers=_WORKERS, schedule=schedule
        )

        lost = [e for e in chaos_events if isinstance(e, WorkerLost)]
        recovered = [e for e in chaos_events if isinstance(e, WorkerRecovered)]
        assert len(lost) >= _KILLS, (
            f"{engine}: only {len(lost)} injected kills were observed "
            f"(schedule promised {_KILLS}); the chaos run did not exercise recovery"
        )
        assert {event.worker for event in lost} == set(range(_WORKERS))
        assert len(recovered) == len(lost)

        baseline = baseline_events[-1]
        chaos = chaos_events[-1]
        assert isinstance(baseline, EstimateCompleted)
        assert isinstance(chaos, EstimateCompleted)
        # The hard gate: recovery must not perturb a single drawn sample.
        assert (
            chaos.estimate.samples_switched_capacitance_f
            == baseline.estimate.samples_switched_capacitance_f
        ), f"{engine}: sample stream diverged after worker recovery"
        assert chaos.estimate.average_power_w == baseline.estimate.average_power_w
        assert chaos.estimate.sample_size == baseline.estimate.sample_size
        assert chaos.estimate.cycles_simulated == baseline.estimate.cycles_simulated

        respawns = max(event.respawns for event in recovered)
        replayed = sum(event.replayed_commands for event in recovered)
        recovery_seconds = sum(event.recovery_seconds for event in recovered)
        overhead = chaos_elapsed - baseline_elapsed
        table.add_row(
            [engine, len(lost), len(recovered), replayed, recovery_seconds, overhead]
        )
        metrics[engine] = {
            "workers_lost": len(lost),
            "workers_recovered": len(recovered),
            "max_consecutive_respawns": respawns,
            "replayed_commands": replayed,
            "recovery_seconds": recovery_seconds,
            "baseline_elapsed_seconds": baseline_elapsed,
            "chaos_elapsed_seconds": chaos_elapsed,
            "overhead_seconds": overhead,
            "estimate_bit_identical": True,
            "degraded_seats": sum(1 for e in recovered if e.degraded),
        }

    lines = [
        f"Fault-tolerant sharded sampling on {_CIRCUIT} "
        f"({_WORKERS} workers, seeded schedule {_FAULT_SEED}: {_KILLS} kills mid-run)",
        "Estimates are bit-identical to the fault-free single-process run.",
        "",
        table.render(),
    ]
    write_report(results_dir, "faults", "\n".join(lines))
    write_bench_json(
        results_dir,
        "faults",
        {
            "circuit": _CIRCUIT,
            "workers": _WORKERS,
            "fault_seed": _FAULT_SEED,
            "kills_scheduled": _KILLS,
            "schedule": schedule.to_json(),
            "engines": metrics,
        },
    )
