"""Load-test benchmark: the estimation service under thousands of small jobs.

One server process (worker-pool threads + asyncio HTTP front end, on-disk
store) absorbs 1,000 small jobs at quick scale — 4,000 with
``REPRO_FULL_SCALE=1`` — submitted from concurrent clients.  Correctness is
the hard gate, throughput the recorded trajectory:

* every job completes; zero lost or duplicated ProgressEvents (each job's
  envelope seqs must be contiguous from 0 with exactly one terminal event);
* every result is byte-identical to an in-process
  :class:`~repro.api.batch.BatchRunner` execution of the same spec (modulo
  the ``elapsed_seconds`` wall-clock field, per the suite-wide convention);
* one in-flight job is cancelled mid-run, checkpointed, resumed, and must
  finish bit-identical to an uninterrupted run;
* jobs/sec and p50/p99 submit-to-complete latency are **recorded, not
  gated** — they land in ``benchmarks/results/BENCH_service.json`` so CI
  artifacts track the trajectory across commits.
"""

from __future__ import annotations

from benchmarks.conftest import full_scale, write_bench_json, write_report
from repro.service import EstimationService, ServiceThread, make_small_specs, run_load_test
from repro.utils.tables import TextTable

#: ~3/4 of the fleet is s27-sized, the rest s298 — two distinct circuits so
#: the exactly-once program-lowering guarantee is exercised across the pool.
_CIRCUITS = ("s27", "s27", "s27", "s298")

_NUM_WORKERS = 4
_CLIENT_THREADS = 8


def _num_jobs() -> int:
    return 4000 if full_scale() else 1000


class TestServiceLoad:
    def test_thousand_small_jobs_one_server(self, tmp_path, results_dir):
        num_jobs = _num_jobs()
        specs = make_small_specs(num_jobs, circuits=_CIRCUITS)
        service = EstimationService(
            store=str(tmp_path / "store"),
            num_workers=_NUM_WORKERS,
            max_pending=num_jobs + 16,
        )
        with ServiceThread(service) as thread:
            report = run_load_test(
                thread.url,
                specs,
                client_threads=_CLIENT_THREADS,
                verify_results=True,
                check_resume=True,
            )

        payload = report.to_dict()
        payload["num_workers"] = _NUM_WORKERS
        payload["client_threads"] = _CLIENT_THREADS
        write_bench_json(results_dir, "service", payload)
        write_report(results_dir, "service", _format_report(report))

        # Hard gates: completeness, event-log integrity, bit-exactness,
        # cancel -> resume identity.  Throughput/latency are soft-recorded.
        assert report.num_completed == num_jobs, payload
        assert report.num_failed == 0, payload
        assert report.event_log_errors == [], report.event_log_errors[:5]
        assert report.result_mismatches == [], report.result_mismatches[:5]
        assert report.resume_check and report.resume_check["identical"], report.resume_check
        assert report.ok
        # Two distinct circuits -> exactly two program lowerings for the
        # whole fleet (the pool shares one in-process program memo).
        if report.programs_lowered is not None:
            assert report.programs_lowered <= len(set(_CIRCUITS))


def _format_report(report) -> str:
    table = TextTable(["metric", "value"])
    table.add_row(["jobs submitted", report.num_jobs])
    table.add_row(["jobs completed", report.num_completed])
    table.add_row(["elapsed (s)", f"{report.elapsed_seconds:.2f}"])
    table.add_row(["throughput (jobs/s)", f"{report.jobs_per_second:.1f}"])
    table.add_row(["latency p50 (ms)", f"{report.latency_p50_ms:.1f}"])
    table.add_row(["latency p99 (ms)", f"{report.latency_p99_ms:.1f}"])
    table.add_row(["events streamed", report.events_total])
    table.add_row(["429 retries", report.resubmit_429s])
    table.add_row(["programs lowered", report.programs_lowered])
    table.add_row(["cancel->resume identical", bool(report.resume_check
                                                    and report.resume_check["identical"])])
    table.add_row(["all audits ok", report.ok])
    return "service load test\n\n" + table.render()
