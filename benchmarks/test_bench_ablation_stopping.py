"""Ablation benchmark A: stopping-criterion comparison.

Section IV of the paper picks the order-statistics criterion "because it
provides a good tradeoff between simulation accuracy and efficiency" over the
CLT and Kolmogorov-Smirnov alternatives.  Expected shape: the CLT rule needs
the fewest samples, the KS rule by far the most, the order-statistics rule
sits in between, and all three deliver estimates within a few percent of the
reference.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import full_scale, timed_pedantic, write_bench_json, write_report
from repro.experiments.ablation_stopping import (
    format_stopping_ablation,
    run_stopping_ablation,
)


def test_bench_ablation_stopping(benchmark, paper_config, reference_cycles, results_dir):
    circuits = ("s298", "s386", "s832", "s1494") if full_scale() else ("s298", "s386", "s832")

    def run():
        return run_stopping_ablation(
            circuit_names=circuits,
            criteria=("order-statistic", "clt", "ks"),
            config=paper_config,
            reference_cycles=reference_cycles,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_stopping_ablation(result)
    write_report(results_dir, "ablation_stopping", report)
    write_bench_json(
        results_dir,
        "ablation_stopping",
        {
            "elapsed_seconds": elapsed,
            "circuits": list(circuits),
            "criteria": ["order-statistic", "clt", "ks"],
            "result": dataclasses.asdict(result),
        },
    )
    print("\n" + report)

    clt_samples = result.mean_sample_size("clt")
    order_samples = result.mean_sample_size("order-statistic")
    ks_samples = result.mean_sample_size("ks")
    # Robustness/efficiency ordering claimed by the paper.
    assert clt_samples <= order_samples <= ks_samples
    # All criteria still produce accurate estimates.
    for row in result.rows:
        assert row.relative_error < 0.08, row
