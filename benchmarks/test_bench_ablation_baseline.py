"""Ablation benchmark B: DIPE versus correlation-ignoring / over-conservative baselines.

The paper's motivation: sampling consecutive cycles and pretending the sample
is i.i.d. invalidates the confidence statement, while a fixed pessimistic
warm-up wastes simulation.  Expected shape: DIPE's empirical coverage is at
or above the consecutive-cycle estimator's, and the fixed-warm-up estimator
burns several times more simulated cycles per sample than DIPE.
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import full_scale, timed_pedantic, write_bench_json, write_report
from repro.experiments.ablation_baseline import (
    format_baseline_ablation,
    run_baseline_ablation,
)


def test_bench_ablation_baseline(benchmark, paper_config, results_dir):
    circuits = ("s298", "s344", "s386") if full_scale() else ("s298", "s344")
    runs = 25 if full_scale() else 10

    def run():
        return run_baseline_ablation(
            circuit_names=circuits,
            methods=("dipe", "consecutive-mc", "fixed-warmup"),
            runs_per_method=runs,
            config=paper_config,
            reference_cycles=120_000 if full_scale() else 60_000,
            fixed_warmup_period=50,
            seed=2025,
        )

    result, elapsed = timed_pedantic(benchmark, run)
    report = format_baseline_ablation(result)
    write_report(results_dir, "ablation_baseline", report)
    write_bench_json(
        results_dir,
        "ablation_baseline",
        {
            "elapsed_seconds": elapsed,
            "circuits": list(circuits),
            "runs_per_method": runs,
            "result": dataclasses.asdict(result),
        },
    )
    print("\n" + report)

    for circuit in circuits:
        dipe = result.row_for(circuit, "dipe")
        warmup = result.row_for(circuit, "fixed-warmup")
        # Every method's mean error stays moderate on these small circuits.
        assert dipe.mean_relative_error < 0.05
        # The fixed a-priori warm-up pays ~warmup_period cycles per sample,
        # which costs far more simulation than DIPE's few-cycle intervals for
        # a comparable sample size (the inefficiency the paper eliminates).
        assert warmup.mean_cycles > 2.0 * dipe.mean_cycles
        # DIPE's confidence interval achieves reasonable empirical coverage.
        assert dipe.empirical_coverage >= 0.7
