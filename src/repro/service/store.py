"""On-disk persistence for the estimation service.

A :class:`ResultStore` gives every job one directory under ``<root>/jobs/``::

    <root>/jobs/<job_id>/
        spec.json         # the submitted JobSpec (bit-exact to_dict form)
        meta.json         # status, timestamps, error, event count
        events.jsonl      # one event envelope per line, in seq order
        result.json       # JobResult manifest entry (completed jobs)
        checkpoint.pkl    # pickled RunCheckpoint (cancelled mid-run jobs)

JSON documents are written atomically (temp file + ``os.replace``), so a
crashed server never leaves a half-written ``meta.json`` or ``result.json``
behind.  The event log is append-only; a torn final line (the one write that
cannot be atomic) is tolerated and dropped on read.  Restarting a server on
the same root rehydrates every job — completed results and cancelled jobs'
checkpoints survive, and in-flight jobs of the dead process are surfaced as
``"interrupted"`` (resumable when they left a checkpoint).
"""

from __future__ import annotations

import json
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Iterator, TextIO

_SPEC = "spec.json"
_META = "meta.json"
_EVENTS = "events.jsonl"
_RESULT = "result.json"
_CHECKPOINT = "checkpoint.pkl"


def _write_json_atomic(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


class ResultStore:
    """Directory-backed job persistence (see module docstring for the layout).

    All methods are thread-safe: the worker pool appends events and writes
    results from worker threads while the server thread reads.  One append
    handle per active job is kept open (and closed by :meth:`close_events`
    when the job reaches a terminal state) so the hot event-log path costs a
    ``write`` + ``flush``, not an ``open`` per event.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._event_handles: dict[str, TextIO] = {}

    # ----------------------------------------------------------------- layout
    def job_dir(self, job_id: str) -> Path:
        """Directory of one job."""
        return self.jobs_dir / job_id

    def has_job(self, job_id: str) -> bool:
        """True when a directory for *job_id* exists."""
        return self.job_dir(job_id).is_dir()

    # ------------------------------------------------------------ spec + meta
    def create_job(self, job_id: str, spec: dict[str, Any], meta: dict[str, Any]) -> None:
        """Create the job directory and persist its spec and initial meta."""
        directory = self.job_dir(job_id)
        directory.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(directory / _SPEC, spec)
        self.write_meta(job_id, meta)

    def write_meta(self, job_id: str, meta: dict[str, Any]) -> None:
        """Atomically replace the job's meta document."""
        _write_json_atomic(self.job_dir(job_id) / _META, meta)

    def read_meta(self, job_id: str) -> dict[str, Any] | None:
        """The job's meta document, or ``None`` when absent/corrupt."""
        return _read_json(self.job_dir(job_id) / _META)

    def read_spec(self, job_id: str) -> dict[str, Any] | None:
        """The job's submitted spec dict, or ``None`` when absent/corrupt."""
        return _read_json(self.job_dir(job_id) / _SPEC)

    # ---------------------------------------------------------------- events
    def append_event(self, job_id: str, envelope: dict[str, Any]) -> None:
        """Append one event envelope to the job's event log (flushed)."""
        line = json.dumps(envelope, sort_keys=True)
        with self._lock:
            handle = self._event_handles.get(job_id)
            if handle is None:
                handle = open(self.job_dir(job_id) / _EVENTS, "a", encoding="utf-8")
                self._event_handles[job_id] = handle
            handle.write(line + "\n")
            handle.flush()

    def close_events(self, job_id: str) -> None:
        """Close the job's cached event-log handle (idempotent)."""
        with self._lock:
            handle = self._event_handles.pop(job_id, None)
        if handle is not None:
            handle.close()

    def read_events(self, job_id: str) -> list[dict[str, Any]]:
        """All persisted event envelopes, in order; torn trailing lines dropped."""
        path = self.job_dir(job_id) / _EVENTS
        if not path.exists():
            return []
        envelopes = []
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                try:
                    envelopes.append(json.loads(line))
                except ValueError:
                    break  # torn tail of a crashed writer; everything before is intact
        return envelopes

    # --------------------------------------------------------------- results
    def save_result(self, job_id: str, result: dict[str, Any]) -> None:
        """Persist the job's result manifest entry atomically."""
        _write_json_atomic(self.job_dir(job_id) / _RESULT, result)

    def load_result(self, job_id: str) -> dict[str, Any] | None:
        """The stored result manifest entry, or ``None``."""
        return _read_json(self.job_dir(job_id) / _RESULT)

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(self, job_id: str, checkpoint: Any) -> None:
        """Pickle a :class:`~repro.api.checkpoint.RunCheckpoint` atomically."""
        path = self.job_dir(job_id) / _CHECKPOINT
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as stream:
            pickle.dump(checkpoint, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def load_checkpoint(self, job_id: str) -> Any | None:
        """Unpickle the job's checkpoint, or ``None`` when absent."""
        path = self.job_dir(job_id) / _CHECKPOINT
        if not path.exists():
            return None
        with open(path, "rb") as stream:
            return pickle.load(stream)

    def has_checkpoint(self, job_id: str) -> bool:
        """True when a resumable checkpoint is stored for *job_id*."""
        return (self.job_dir(job_id) / _CHECKPOINT).exists()

    # ------------------------------------------------------------------ scan
    def scan(self) -> Iterator[tuple[str, dict[str, Any], dict[str, Any]]]:
        """Yield ``(job_id, meta, spec)`` for every rehydratable stored job.

        Jobs whose ``meta.json`` or ``spec.json`` is missing or corrupt are
        skipped — a half-created directory must not take the server down.
        """
        for directory in sorted(self.jobs_dir.iterdir()):
            if not directory.is_dir():
                continue
            meta = self.read_meta(directory.name)
            spec = self.read_spec(directory.name)
            if meta is None or spec is None:
                continue
            yield directory.name, meta, spec

    def close(self) -> None:
        """Close every cached event-log handle."""
        with self._lock:
            handles = list(self._event_handles.values())
            self._event_handles.clear()
        for handle in handles:
            handle.close()
