"""Job lifecycle events of the estimation service.

The service streams one totally ordered event log per job.  Estimator
progress events (:mod:`repro.api.events`) are forwarded verbatim; the
lifecycle events below bracket them — submission, start, cancellation with a
resumable checkpoint, completion with the result payload, failure with the
captured error.  All of them subclass :class:`~repro.api.events.ProgressEvent`,
so they share the same ``to_dict`` / :func:`~repro.api.events.event_from_dict`
wire format and the same ``kind`` dispatch as the estimator events.

On the wire every event travels inside an *envelope* that adds the service's
ordering metadata::

    {"seq": 3, "job": "j5f2c81d90a", "time": 1754500000.123, "event": {...}}

``seq`` starts at 0 (the ``job-queued`` event) and increments by one per
event with no gaps — clients verify they lost nothing by checking
contiguity, and resume interrupted streams with ``GET
/jobs/{id}/events?from=<seq>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.api.events import ProgressEvent

#: Event kinds that end a job's stream.  Exactly one terminal event is
#: emitted per queued-to-finished lifecycle; a resumed job appends a fresh
#: ``job-resumed`` .. terminal segment to the same log.
TERMINAL_EVENT_KINDS = ("job-completed", "job-failed", "job-cancelled")


@dataclass(frozen=True)
class JobQueued(ProgressEvent):
    """The job was accepted and entered the run queue (always ``seq == 0``)."""

    kind: ClassVar[str] = "job-queued"

    job_id: str = ""
    label: str | None = None
    queue_position: int = 0


@dataclass(frozen=True)
class JobStarted(ProgressEvent):
    """A pool worker picked the job up and is about to drive the estimator."""

    kind: ClassVar[str] = "job-started"

    job_id: str = ""
    worker: int = 0
    resumed: bool = False


@dataclass(frozen=True)
class JobResumed(ProgressEvent):
    """A cancelled/interrupted job re-entered the queue (from its checkpoint)."""

    kind: ClassVar[str] = "job-resumed"

    job_id: str = ""
    from_checkpoint: bool = False


@dataclass(frozen=True)
class JobRetrying(ProgressEvent):
    """The job's attempt failed but retry budget remains; it was re-queued.

    Not terminal: the stream continues with a fresh ``job-started`` segment.
    ``attempt`` is the retry about to run (1-based), ``from_checkpoint``
    whether it resumes from the job's auto-snapshot checkpoint or restarts
    from scratch.
    """

    kind: ClassVar[str] = "job-retrying"

    job_id: str = ""
    error: str = ""
    attempt: int = 0
    max_retries: int = 0
    from_checkpoint: bool = False


@dataclass(frozen=True)
class JobCancelled(ProgressEvent):
    """Terminal: the job was cancelled.

    When the cancellation caught the job mid-run, ``checkpoint_available``
    reports whether a resumable checkpoint was snapshotted;
    ``samples_drawn`` / ``cycles_simulated`` carry the progress frozen in it.
    """

    kind: ClassVar[str] = "job-cancelled"

    job_id: str = ""
    checkpoint_available: bool = False


@dataclass(frozen=True)
class JobCompleted(ProgressEvent):
    """Terminal: the job finished; ``result`` is the tagged result payload.

    ``result`` has the manifest shape ``{"type": tag, "data": {...}}`` — the
    same encoding :class:`~repro.api.jobs.JobResult` uses, so a streamed
    completion and the stored ``result.json`` are byte-identical.
    """

    kind: ClassVar[str] = "job-completed"

    job_id: str = ""
    result: Any = None
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class JobFailed(ProgressEvent):
    """Terminal: the job raised; ``error`` is ``"ExcType: message"``."""

    kind: ClassVar[str] = "job-failed"

    job_id: str = ""
    error: str = ""
