"""Stdlib HTTP client for the estimation service.

:class:`ServiceClient` wraps the JSON endpoints of
:class:`~repro.service.server.ServiceServer` (submit, inspect, cancel,
resume, stats) and parses the SSE event stream back into the envelope dicts
the server publishes — :func:`repro.api.events.event_from_dict` turns an
envelope's ``"event"`` payload back into a typed
:class:`~repro.api.events.ProgressEvent`.  Built on :mod:`http.client` only,
so it works anywhere the package does; it backs the ``repro submit`` /
``repro watch`` / ``repro jobs`` CLI verbs and the load-test harness.

A client instance keeps one persistent connection for request/response calls
(transparently reconnecting when the server or a proxy drops it) and opens a
dedicated connection per SSE stream.  Instances are not thread-safe — use
one client per thread.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.api.events import ProgressEvent, event_from_dict


class ServiceClientError(Exception):
    """A non-2xx response; ``status`` is the HTTP code, the message the body."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Typed access to a running estimation service.

    Wraps one persistent keep-alive HTTP connection (plus a dedicated
    connection per SSE stream) around the server's JSON endpoints.  Responses
    with status >= 400 raise :class:`ServiceClientError` carrying the status
    code and the server's error message.  A client instance is **not**
    thread-safe — create one per thread.
    """

    def __init__(self, url: str = "http://127.0.0.1:8642", timeout: float = 60.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- transport
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        """Close the persistent request/response connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: Any = None) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # The server closes idle keep-alive connections; retry once on
                # a fresh socket before giving up.
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            data = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 400:
            message = data.get("error", "") if isinstance(data, dict) else str(data)
            raise ServiceClientError(response.status, message)
        return data

    # ------------------------------------------------------------- endpoints
    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` — scheduler counters."""
        return self._request("GET", "/stats")

    def submit(self, spec: Any) -> dict[str, Any]:
        """``POST /jobs`` — submit a JobSpec (object with ``to_dict`` or dict).

        Returns the job snapshot (its ``"id"`` addresses every other call).
        Raises :class:`ServiceClientError` with status 400/413/429 on
        invalid, oversized, or backpressured submissions.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        return self._request("POST", "/jobs", payload)

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs`` — all job snapshots in submission order."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}`` — one job's snapshot."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}/result`` — the stored result payload (409 until done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/{id}`` — cancel; running jobs snapshot a checkpoint."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def resume(self, job_id: str) -> dict[str, Any]:
        """``POST /jobs/{id}/resume`` — re-queue a cancelled/interrupted job."""
        return self._request("POST", f"/jobs/{job_id}/resume")

    # ---------------------------------------------------------------- events
    def events(self, job_id: str, from_seq: int = 0) -> Iterator[dict[str, Any]]:
        """Stream the job's event envelopes over SSE, starting at *from_seq*.

        Yields envelope dicts ``{"seq", "job", "time", "event"}`` in seq
        order and returns once the server closes the stream after the
        terminal event.  Heartbeat comments are consumed silently.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/events?from={from_seq}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8", "replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw
                raise ServiceClientError(response.status, message)
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # heartbeat / stream-end comment
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                    continue
                if not line and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []
        finally:
            connection.close()

    def typed_events(self, job_id: str, from_seq: int = 0) -> Iterator[ProgressEvent]:
        """Like :meth:`events`, but yields typed :class:`ProgressEvent` objects."""
        for envelope in self.events(job_id, from_seq):
            yield event_from_dict(envelope["event"])

    def wait(self, job_id: str) -> dict[str, Any]:
        """Follow the job's stream to its end and return the final snapshot."""
        for _ in self.events(job_id):
            pass
        return self.job(job_id)
