"""Stdlib HTTP client for the estimation service.

:class:`ServiceClient` wraps the JSON endpoints of
:class:`~repro.service.server.ServiceServer` (submit, inspect, cancel,
resume, stats) and parses the SSE event stream back into the envelope dicts
the server publishes — :func:`repro.api.events.event_from_dict` turns an
envelope's ``"event"`` payload back into a typed
:class:`~repro.api.events.ProgressEvent`.  Built on :mod:`http.client` only,
so it works anywhere the package does; it backs the ``repro submit`` /
``repro watch`` / ``repro jobs`` CLI verbs and the load-test harness.

A client instance keeps one persistent connection for request/response calls
(transparently reconnecting when the server or a proxy drops it) and opens a
dedicated connection per SSE stream.  Instances are not thread-safe — use
one client per thread.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.api.events import ProgressEvent, event_from_dict
from repro.service.events import TERMINAL_EVENT_KINDS

#: Transport-level failures worth retrying on a fresh socket: dropped
#: keep-alive connections, wedged (timed-out) reads, refused reconnects.
_TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError, TimeoutError, OSError)


class ServiceClientError(Exception):
    """A non-2xx response; ``status`` is the HTTP code, the message the body."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Typed access to a running estimation service.

    Wraps one persistent keep-alive HTTP connection (plus a dedicated
    connection per SSE stream) around the server's JSON endpoints.  Responses
    with status >= 400 raise :class:`ServiceClientError` carrying the status
    code and the server's error message.  A client instance is **not**
    thread-safe — create one per thread.

    Every socket carries a read *timeout*, so a wedged server surfaces as a
    ``TimeoutError`` within bounded time instead of blocking forever.
    Idempotent requests (GET/HEAD) and the SSE stream retry transport
    failures up to *retries* times with *retry_backoff* exponential backoff
    (the stream reconnects from the last seen sequence number, so no
    envelope is lost or duplicated); non-idempotent requests keep the single
    reconnect-once behaviour for dropped keep-alive sockets.
    """

    def __init__(
        self,
        url: str = "http://127.0.0.1:8642",
        timeout: float = 60.0,
        retries: int = 2,
        retry_backoff: float = 0.2,
        sse_read_timeout: float | None = None,
    ):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0.0:
            raise ValueError("retry_backoff must be non-negative")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        # SSE reads sit idle between heartbeats; the server heartbeats every
        # ~15 s, so the request timeout is a safe idle bound here too unless
        # the caller picks a different one.
        self.sse_read_timeout = timeout if sse_read_timeout is None else sse_read_timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------- transport
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        """Close the persistent request/response connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, payload: Any = None) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Idempotent requests retry transport failures with backoff; others
        # (submit, cancel) only get the single fresh-socket reconnect for
        # dropped idle keep-alive connections — re-sending them after an
        # ambiguous failure could duplicate the action.
        attempts = (self.retries if method in ("GET", "HEAD") else 1) + 1
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except _TRANSPORT_ERRORS:
                self.close()
                if attempt == attempts - 1:
                    raise
        try:
            data = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            data = {"error": raw.decode("utf-8", "replace")}
        if response.status >= 400:
            message = data.get("error", "") if isinstance(data, dict) else str(data)
            raise ServiceClientError(response.status, message)
        return data

    # ------------------------------------------------------------- endpoints
    def health(self) -> dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` — scheduler counters."""
        return self._request("GET", "/stats")

    def submit(self, spec: Any) -> dict[str, Any]:
        """``POST /jobs`` — submit a JobSpec (object with ``to_dict`` or dict).

        Returns the job snapshot (its ``"id"`` addresses every other call).
        Raises :class:`ServiceClientError` with status 400/413/429 on
        invalid, oversized, or backpressured submissions.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        return self._request("POST", "/jobs", payload)

    def jobs(self) -> list[dict[str, Any]]:
        """``GET /jobs`` — all job snapshots in submission order."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}`` — one job's snapshot."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/{id}/result`` — the stored result payload (409 until done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        """``DELETE /jobs/{id}`` — cancel; running jobs snapshot a checkpoint."""
        return self._request("DELETE", f"/jobs/{job_id}")

    def resume(self, job_id: str) -> dict[str, Any]:
        """``POST /jobs/{id}/resume`` — re-queue a cancelled/interrupted job."""
        return self._request("POST", f"/jobs/{job_id}/resume")

    # ---------------------------------------------------------------- events
    def _events_once(self, job_id: str, from_seq: int) -> Iterator[dict[str, Any]]:
        """One SSE connection's worth of envelopes, starting at *from_seq*."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.sse_read_timeout
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/events?from={from_seq}")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8", "replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except ValueError:
                    message = raw
                raise ServiceClientError(response.status, message)
            data_lines: list[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # heartbeat / stream-end comment
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                    continue
                if not line and data_lines:
                    yield json.loads("\n".join(data_lines))
                    data_lines = []
        finally:
            connection.close()

    def events(self, job_id: str, from_seq: int = 0) -> Iterator[dict[str, Any]]:
        """Stream the job's event envelopes over SSE, starting at *from_seq*.

        Yields envelope dicts ``{"seq", "job", "time", "event"}`` in seq
        order and returns once the stream reaches a terminal event.
        Heartbeat comments are consumed silently.  Transport failures (a
        wedged read hitting the socket timeout, a dropped connection, a
        brief server restart) are retried up to ``self.retries`` times with
        exponential backoff, reconnecting from the next unseen sequence
        number so the merged stream stays gap-free and duplicate-free; the
        retry budget resets whenever a reconnect makes progress.
        """
        next_seq = from_seq
        terminal_seen = False
        failures = 0
        while True:
            progressed = False
            try:
                for envelope in self._events_once(job_id, next_seq):
                    if envelope["seq"] < next_seq:
                        continue  # replayed after reconnect; already yielded
                    next_seq = envelope["seq"] + 1
                    progressed = True
                    kind = envelope.get("event", {}).get("kind")
                    terminal_seen = kind in TERMINAL_EVENT_KINDS
                    yield envelope
            except _TRANSPORT_ERRORS:
                pass  # reconnect below (budget permitting)
            else:
                if terminal_seen:
                    return
                # Stream ended without a terminal event — the server went
                # away mid-job; reconnect and pick up where we left off.
            if progressed:
                failures = 0
            failures += 1
            if failures > self.retries:
                raise TimeoutError(
                    f"event stream for job {job_id!r} failed after "
                    f"{failures} attempts (last seq seen: {next_seq - 1})"
                )
            time.sleep(self.retry_backoff * (2 ** (failures - 1)))

    def typed_events(self, job_id: str, from_seq: int = 0) -> Iterator[ProgressEvent]:
        """Like :meth:`events`, but yields typed :class:`ProgressEvent` objects."""
        for envelope in self.events(job_id, from_seq):
            yield event_from_dict(envelope["event"])

    def wait(self, job_id: str) -> dict[str, Any]:
        """Follow the job's stream to its end and return the final snapshot."""
        for _ in self.events(job_id):
            pass
        return self.job(job_id)
