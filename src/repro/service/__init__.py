"""repro.service — estimation-as-a-service on top of the JobSpec API.

A long-running, stdlib-only job server for the power estimator:

* :class:`~repro.service.core.EstimationService` — validating scheduler over
  a persistent worker-thread pool: bounded queueing with backpressure, one
  totally ordered event log per job, cancellation that snapshots a resumable
  checkpoint, restart rehydration.  All jobs of one circuit share one
  in-process :class:`~repro.circuits.program.CircuitProgram`, lowered
  exactly once.
* :class:`~repro.service.server.ServiceServer` — the asyncio HTTP front-end
  (``POST /jobs``, SSE at ``GET /jobs/{id}/events``, ``DELETE /jobs/{id}``);
  :class:`~repro.service.server.ServiceThread` runs it on a background
  thread for tests and benchmarks.
* :class:`~repro.service.store.ResultStore` — on-disk persistence (specs,
  event logs, results, checkpoints) surviving server restarts.
* :class:`~repro.service.client.ServiceClient` — stdlib HTTP/SSE client
  backing the ``repro submit`` / ``repro watch`` / ``repro jobs`` CLI verbs.
* :mod:`~repro.service.loadtest` — the throughput/latency/correctness
  harness behind ``BENCH_service.json``.

Quickstart (in-process)::

    from repro.api import JobSpec
    from repro.service import EstimationService

    with EstimationService(num_workers=4) as service:
        record = service.submit(JobSpec(circuit="s27").to_dict())
        record.wait_finished()
        print(record.status, record.result_payload["result"])

Over HTTP, start ``repro serve --store runs/`` and talk to it with
:class:`ServiceClient` or plain curl — see ``docs/service.md`` for the
operator guide and endpoint reference.

Attributes resolve lazily (PEP 562) so importing :mod:`repro.service` stays
cheap for CLI startup.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    # scheduling core
    "EstimationService": "repro.service.core",
    "JobRecord": "repro.service.core",
    "validate_job_payload": "repro.service.core",
    "ServiceError": "repro.service.core",
    "InvalidJobError": "repro.service.core",
    "ServiceFullError": "repro.service.core",
    "UnknownJobError": "repro.service.core",
    "JobStateError": "repro.service.core",
    "JOB_STATUSES": "repro.service.core",
    "FINISHED_STATUSES": "repro.service.core",
    # lifecycle events
    "JobQueued": "repro.service.events",
    "JobStarted": "repro.service.events",
    "JobResumed": "repro.service.events",
    "JobRetrying": "repro.service.events",
    "JobCancelled": "repro.service.events",
    "JobCompleted": "repro.service.events",
    "JobFailed": "repro.service.events",
    "TERMINAL_EVENT_KINDS": "repro.service.events",
    # persistence
    "ResultStore": "repro.service.store",
    # HTTP server + client
    "ServiceServer": "repro.service.server",
    "ServiceThread": "repro.service.server",
    "serve": "repro.service.server",
    "ServiceClient": "repro.service.client",
    "ServiceClientError": "repro.service.client",
    # load testing
    "run_load_test": "repro.service.loadtest",
    "make_small_specs": "repro.service.loadtest",
    "LoadTestReport": "repro.service.loadtest",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
