"""Asyncio HTTP/SSE front-end of the estimation service.

A deliberately small stdlib-only HTTP/1.1 server (``asyncio.start_server`` +
hand-rolled request parsing — no web framework) exposing
:class:`~repro.service.core.EstimationService` over JSON:

========  =========================  =============================================
method    path                       purpose
========  =========================  =============================================
GET       ``/``                      service banner + endpoint index
GET       ``/health``                liveness probe
GET       ``/stats``                 scheduler counters
POST      ``/jobs``                  submit a JobSpec (201, 400, 413, 429)
GET       ``/jobs``                  list all jobs (submission order)
GET       ``/jobs/{id}``             job snapshot (includes result when done)
GET       ``/jobs/{id}/result``      result payload only (409 until finished)
GET       ``/jobs/{id}/events``      Server-Sent Events stream (``?from=<seq>``)
DELETE    ``/jobs/{id}``             cancel (snapshots a resumable checkpoint)
POST      ``/jobs/{id}/resume``      re-queue a cancelled/interrupted job
========  =========================  =============================================

The SSE stream replays the job's persisted event log from ``?from`` (default
0) and then follows live publications until the terminal event; each frame is
``id: <seq>`` + ``data: <envelope JSON>``, with comment heartbeats while the
job is idle, so a dropped client reconnects with ``?from=<last id + 1>`` and
misses nothing.  Request parsing is defensive: oversized headers/bodies,
malformed JSON and unknown routes all map to clean 4xx responses long before
a worker thread could be disturbed.  See ``docs/service.md`` for the
operator guide and a worked curl session.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qs, unquote, urlsplit

from repro.service.core import (
    EstimationService,
    InvalidJobError,
    JobStateError,
    ServiceFullError,
    UnknownJobError,
)

#: Request-size caps: everything beyond is a client error, never a crash.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: Oversized bodies up to this size are read and discarded before the 413 is
#: sent, so clients mid-upload see the response instead of a broken pipe;
#: anything larger gets the connection dropped after the 413.
MAX_DRAIN_BYTES = 8 * MAX_BODY_BYTES

#: Seconds of SSE silence after which a comment heartbeat is emitted.
SSE_HEARTBEAT_SECONDS = 15.0

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

_ERROR_STATUS = {
    InvalidJobError: 400,
    UnknownJobError: 404,
    JobStateError: 409,
    ServiceFullError: 429,
}


class _HttpError(Exception):
    """Internal: abort request handling with a specific status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _CloseConnection(Exception):
    """Internal: the response is fully written; close the connection now."""


class ServiceServer:
    """Binds an :class:`EstimationService` to an asyncio TCP listener.

    The server owns no scheduling state of its own: every request is parsed,
    routed, and answered from the service's thread-safe surface.  Blocking
    calls (``submit``) hop to a thread via :func:`asyncio.to_thread`; SSE
    streams await the service's per-job :class:`asyncio.Event` chain, so an
    idle stream costs no polling.  Use ``port=0`` for an ephemeral port and
    read :attr:`address` after :meth:`start`.
    """

    def __init__(self, service: EstimationService, host: str = "127.0.0.1", port: int = 8642):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is not None and self._server.sockets:
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            return host, port
        return self.host, self.port

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> "ServiceServer":
        """Bind the listener and start the worker pool."""
        self.service.attach_loop(asyncio.get_running_loop())
        self.service.start()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        return self

    async def stop(self) -> None:
        """Close the listener and shut the worker pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.service.shutdown)

    async def serve_forever(self) -> None:
        """Run until cancelled (used by ``repro serve``)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------ connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    await self._send_error(writer, error.status, str(error))
                    break
                if request is None:
                    break  # client closed the connection cleanly
                method, path, query, body, keep_alive = request
                try:
                    await self._dispatch(writer, method, path, query, body, keep_alive)
                except _CloseConnection:
                    break
                except _HttpError as error:
                    await self._send_error(writer, error.status, str(error), keep_alive)
                except Exception as error:  # noqa: BLE001 — never kill the acceptor
                    await self._send_error(
                        writer, 500, f"{type(error).__name__}: {error}", keep_alive=False
                    )
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, list[str]], bytes, bool] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise _HttpError(400, "truncated request") from None
        except asyncio.LimitOverrunError:
            raise _HttpError(413, f"headers exceed {MAX_HEADER_BYTES} bytes") from None
        if len(header_blob) > MAX_HEADER_BYTES:
            raise _HttpError(413, f"headers exceed {MAX_HEADER_BYTES} bytes")
        try:
            head = header_blob.decode("latin-1")
            request_line, *header_lines = head.split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        parts = urlsplit(target)
        path = unquote(parts.path)
        query = parse_qs(parts.query)
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"invalid Content-Length {length_text!r}") from None
        if length < 0:
            raise _HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            if length <= MAX_DRAIN_BYTES:
                try:
                    await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    pass
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method.upper(), path, query, body, keep_alive

    # -------------------------------------------------------------- dispatch
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        segments = [segment for segment in path.split("/") if segment]
        if not segments:
            if method != "GET":
                raise _HttpError(405, "only GET /")
            await self._send_json(writer, 200, self._banner(), keep_alive)
            return
        if segments == ["health"]:
            await self._send_json(writer, 200, {"ok": True}, keep_alive)
            return
        if segments == ["stats"]:
            await self._send_json(writer, 200, self.service.stats(), keep_alive)
            return
        if segments[0] != "jobs":
            raise _HttpError(404, f"no route for {path!r}")
        handler = self._job_route(method, segments)
        await handler(writer, segments, query, body, keep_alive)

    def _job_route(
        self, method: str, segments: list[str]
    ) -> Callable[..., Awaitable[None]]:
        if len(segments) == 1:
            if method == "POST":
                return self._handle_submit
            if method == "GET":
                return self._handle_list
            raise _HttpError(405, "use POST /jobs or GET /jobs")
        if len(segments) == 2:
            if method == "GET":
                return self._handle_get_job
            if method == "DELETE":
                return self._handle_cancel
            raise _HttpError(405, "use GET or DELETE on /jobs/{id}")
        if len(segments) == 3 and segments[2] == "events" and method == "GET":
            return self._handle_events
        if len(segments) == 3 and segments[2] == "result" and method == "GET":
            return self._handle_result
        if len(segments) == 3 and segments[2] == "resume" and method == "POST":
            return self._handle_resume
        raise _HttpError(404, f"no route for {'/' + '/'.join(segments)!r}")

    def _banner(self) -> dict[str, Any]:
        return {
            "service": "repro-estimation-service",
            "endpoints": [
                "GET /health",
                "GET /stats",
                "POST /jobs",
                "GET /jobs",
                "GET /jobs/{id}",
                "GET /jobs/{id}/result",
                "GET /jobs/{id}/events?from=<seq>",
                "DELETE /jobs/{id}",
                "POST /jobs/{id}/resume",
            ],
        }

    # -------------------------------------------------------------- handlers
    async def _handle_submit(self, writer, segments, query, body, keep_alive) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}") from None
        if payload is None:
            raise _HttpError(400, "request body must contain a JSON job spec")
        try:
            # Validation resolves (and possibly parses) the circuit — run it
            # off the event loop so slow submissions never stall other clients.
            record = await asyncio.to_thread(self.service.submit, payload)
        except tuple(_ERROR_STATUS) as error:
            raise _HttpError(_ERROR_STATUS[type(error)], str(error)) from None
        await self._send_json(writer, 201, record.snapshot(), keep_alive)

    async def _handle_list(self, writer, segments, query, body, keep_alive) -> None:
        records = self.service.jobs()
        await self._send_json(
            writer,
            200,
            {"jobs": [record.snapshot() for record in records], "count": len(records)},
            keep_alive,
        )

    def _record(self, segments: list[str]):
        try:
            return self.service.get(segments[1])
        except UnknownJobError as error:
            raise _HttpError(404, str(error)) from None

    async def _handle_get_job(self, writer, segments, query, body, keep_alive) -> None:
        await self._send_json(writer, 200, self._record(segments).snapshot(), keep_alive)

    async def _handle_result(self, writer, segments, query, body, keep_alive) -> None:
        record = self._record(segments)
        if record.result_payload is None:
            raise _HttpError(
                409, f"job {record.id} is {record.status}; no result available"
            )
        await self._send_json(writer, 200, record.result_payload, keep_alive)

    async def _handle_cancel(self, writer, segments, query, body, keep_alive) -> None:
        record = self._record(segments)
        try:
            await asyncio.to_thread(self.service.cancel, record.id)
        except JobStateError as error:
            raise _HttpError(409, str(error)) from None
        await self._send_json(writer, 200, record.snapshot(), keep_alive)

    async def _handle_resume(self, writer, segments, query, body, keep_alive) -> None:
        record = self._record(segments)
        try:
            await asyncio.to_thread(self.service.resume, record.id)
        except tuple(_ERROR_STATUS) as error:
            raise _HttpError(_ERROR_STATUS[type(error)], str(error)) from None
        await self._send_json(writer, 200, record.snapshot(), keep_alive)

    async def _handle_events(self, writer, segments, query, body, keep_alive) -> None:
        record = self._record(segments)
        try:
            start = int(query.get("from", ["0"])[0])
        except ValueError:
            raise _HttpError(400, "'from' must be an integer event seq") from None
        if start < 0:
            raise _HttpError(400, "'from' must be >= 0")
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(headers.encode("latin-1"))
        cursor = start
        while True:
            # Capture the change event BEFORE scanning the log: a publication
            # between scan and wait replaces the event we already hold, so the
            # set() still wakes us and no event can be missed.
            change = record.async_change
            events = record.events
            while cursor < len(events):
                envelope = events[cursor]
                frame = f"id: {envelope['seq']}\ndata: {json.dumps(envelope)}\n\n"
                writer.write(frame.encode("utf-8"))
                cursor += 1
            await writer.drain()
            if record.is_finished and cursor >= len(record.events):
                break
            try:
                await asyncio.wait_for(change.wait(), timeout=SSE_HEARTBEAT_SECONDS)
            except asyncio.TimeoutError:
                writer.write(b": heartbeat\n\n")
                await writer.drain()
        writer.write(b": stream-end\n\n")
        await writer.drain()
        raise _CloseConnection  # the SSE response promised Connection: close

    # ------------------------------------------------------------- responses
    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any, keep_alive: bool = True
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "OK")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, status: int, message: str, keep_alive: bool = False
    ) -> None:
        try:
            await self._send_json(writer, status, {"error": message, "status": status}, keep_alive)
        except (ConnectionError, OSError):
            pass


async def serve(
    service: EstimationService, host: str = "127.0.0.1", port: int = 8642
) -> None:
    """Run the service server until cancelled (the ``repro serve`` main loop)."""
    server = ServiceServer(service, host=host, port=port)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.stop()


class ServiceThread:
    """A server running on a background thread — for tests and the load bench.

    ``start()`` blocks until the listener is bound and returns the base URL;
    ``stop()`` tears the loop, listener and worker pool down.  Usable as a
    context manager.
    """

    def __init__(self, service: EstimationService, host: str = "127.0.0.1", port: int = 0):
        self.server = ServiceServer(service, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self.server.url

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("service server failed to start") from self._failure
        if not self._ready.is_set():
            raise RuntimeError("service server did not start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 — surfaced to start()
            self._failure = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
