"""Scheduling core of the estimation service: job records and the worker pool.

:class:`EstimationService` is the transport-independent heart of
``repro serve``: it validates submitted :class:`~repro.api.jobs.JobSpec`
payloads at the boundary (malformed requests are rejected *before* they can
reach a worker), queues accepted jobs with bounded backpressure, runs them on
a pool of persistent worker threads, publishes one totally ordered event log
per job, snapshots a resumable checkpoint on cancellation, and persists
everything through a :class:`~repro.service.store.ResultStore` so completed
jobs survive restarts.

Worker threads all live in one process, so every job of the same circuit
shares one in-process :class:`~repro.circuits.program.CircuitProgram` memo
(plus the optional ``REPRO_PROGRAM_CACHE`` disk cache): a per-circuit warm
lock makes the pool lower each distinct circuit exactly once no matter how
many jobs land concurrently.

Execution is deterministic per spec — the service adds scheduling, not
randomness — so a job's result is byte-identical to
:class:`~repro.api.batch.BatchRunner` running the same spec, and a
cancelled job resumed from its checkpoint finishes bit-identical to an
uninterrupted run (both pinned by the test suite and the load-test bench).
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
import uuid
from typing import Any, Callable

from repro.api.events import EstimateCompleted, ProgressEvent
from repro.api.jobs import JobResult, JobSpec, resolve_circuit
from repro.api.registry import ESTIMATOR_REGISTRY, STIMULUS_REGISTRY
from repro.service.events import (
    JobCancelled,
    JobCompleted,
    JobFailed,
    JobQueued,
    JobResumed,
    JobRetrying,
    JobStarted,
)
from repro.service.store import ResultStore

#: Statuses a job can be in.  ``interrupted`` marks jobs found mid-flight
#: when a server restarted on an existing store.
JOB_STATUSES = ("queued", "running", "completed", "failed", "cancelled", "interrupted")

#: Statuses in which a job's event log is complete (no more events coming).
FINISHED_STATUSES = frozenset({"completed", "failed", "cancelled", "interrupted"})

#: Statuses from which :meth:`EstimationService.resume` can re-queue a job.
RESUMABLE_STATUSES = frozenset({"cancelled", "interrupted"})

#: Top-level keys accepted in a submitted spec payload; anything else is a
#: client error (the library's ``from_dict`` is lenient, the service is not).
_SPEC_KEYS = frozenset({"circuit", "estimator", "stimulus", "config", "seed", "params", "label"})

#: Keys accepted in the ``{"spec": ..., ...}`` wrapper form: the spec plus
#: per-job service policy.
_WRAPPER_KEYS = frozenset({"spec", "max_retries"})


class ServiceError(Exception):
    """Base class of service-level request errors (mapped to HTTP statuses)."""


class InvalidJobError(ServiceError):
    """The submitted payload is not a valid, runnable JobSpec (HTTP 400)."""


class ServiceFullError(ServiceError):
    """The pending queue is at capacity; retry later (HTTP 429)."""


class UnknownJobError(ServiceError):
    """No job with the requested id exists (HTTP 404)."""


class JobStateError(ServiceError):
    """The job is not in a state that allows the request (HTTP 409)."""


def validate_job_payload(payload: Any) -> JobSpec:
    """Parse and fully validate a submitted job payload at the service boundary.

    Accepts the spec dict directly or wrapped as ``{"spec": {...}}`` — the
    wrapper form may also carry per-job service policy
    (``"max_retries"``, validated by :func:`validate_retry_policy`).  Beyond
    :meth:`JobSpec.from_dict` (which validates the config through the plugin
    registries), this rejects unknown top-level keys, unknown estimator and
    stimulus names, unresolvable circuits and unbuildable stimulus parameters
    — so every accepted job can actually start, and a malformed request can
    never crash a pool worker.  Raises :class:`InvalidJobError` with a
    client-presentable message.
    """
    if isinstance(payload, dict) and "spec" in payload:
        unknown = set(payload) - _WRAPPER_KEYS
        if unknown:
            raise InvalidJobError(
                f"unknown wrapper fields {sorted(unknown)}; allowed: {sorted(_WRAPPER_KEYS)}"
            )
        validate_retry_policy(payload.get("max_retries", 0))
        payload = payload["spec"]
    if not isinstance(payload, dict):
        raise InvalidJobError(
            f"job payload must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - _SPEC_KEYS
    if unknown:
        raise InvalidJobError(
            f"unknown spec fields {sorted(unknown)}; allowed: {sorted(_SPEC_KEYS)}"
        )
    if "circuit" not in payload:
        raise InvalidJobError("spec is missing the required 'circuit' field")
    config_payload = payload.get("config")
    if isinstance(config_payload, dict) and config_payload.get("worker_hosts"):
        from repro.core.transport import parse_address

        try:
            parse_address(str(config_payload["worker_hosts"]))
        except ValueError as error:
            raise InvalidJobError(f"invalid 'config.worker_hosts': {error}") from None
    try:
        spec = JobSpec.from_dict(payload)
    except (TypeError, ValueError, KeyError) as error:
        raise InvalidJobError(f"invalid job spec: {error}") from None
    if spec.estimator not in ESTIMATOR_REGISTRY:
        raise InvalidJobError(
            f"invalid 'estimator': unknown estimator {spec.estimator!r}; "
            f"registered: {sorted(ESTIMATOR_REGISTRY.names())}"
        )
    if spec.stimulus.kind not in STIMULUS_REGISTRY:
        raise InvalidJobError(
            f"invalid 'stimulus.kind': unknown stimulus {spec.stimulus.kind!r}; "
            f"registered: {sorted(STIMULUS_REGISTRY.names())}"
        )
    try:
        circuit = resolve_circuit(spec.circuit)
    except ValueError as error:
        raise InvalidJobError(str(error)) from None
    except OSError as error:
        raise InvalidJobError(f"cannot read circuit {spec.circuit!r}: {error}") from None
    try:
        spec.stimulus.build(circuit.num_inputs)
    except (TypeError, ValueError) as error:
        raise InvalidJobError(f"invalid 'stimulus.params': invalid stimulus parameters: {error}") from None
    return spec


def validate_retry_policy(value: Any) -> int:
    """Validate a ``max_retries`` value; returns it as a plain int.

    Raises :class:`InvalidJobError` for anything but a non-negative integer
    (booleans included — ``True`` is not a retry count).
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidJobError(
            f"'max_retries' must be a non-negative integer, got {value!r}"
        )
    if value < 0:
        raise InvalidJobError(f"'max_retries' must be non-negative, got {value}")
    return value


class JobRecord:
    """One job's full in-memory state: spec, status, event log, result.

    Thread-safety: status transitions and event publication are serialized by
    ``_lock``; the event list is append-only, so readers may index it without
    locking.  ``wait_finished`` blocks synchronous callers;
    ``async_change`` is an :class:`asyncio.Event` chain the SSE streamer
    awaits (replaced on every publish, set exactly once).
    """

    def __init__(self, job_id: str, spec: JobSpec, submitted_at: float, max_retries: int = 0):
        self.id = job_id
        self.spec = spec
        self.status = "queued"
        self.error: str | None = None
        self.result_payload: dict[str, Any] | None = None
        self.checkpoint_available = False
        self.max_retries = max_retries
        self.retries = 0
        self.events: list[dict[str, Any]] = []
        self.next_seq = 0
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.resumed = 0
        self.progress: tuple[int, int] = (0, 0)  # (samples_drawn, cycles_simulated)
        self.cancel_requested = threading.Event()
        self._memory_checkpoint: Any | None = None
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.async_change = asyncio.Event()

    @property
    def is_finished(self) -> bool:
        """True when no more events will be appended to this job's log."""
        return self.status in FINISHED_STATUSES

    def wait_finished(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a finished status (or *timeout*)."""
        with self._cond:
            return self._cond.wait_for(lambda: self.is_finished, timeout)

    def snapshot(self) -> dict[str, Any]:
        """JSON summary of the job as served by ``GET /jobs/{id}``."""
        samples, cycles = self.progress
        data: dict[str, Any] = {
            "id": self.id,
            "label": self.spec.label,
            "name": self.spec.name,
            "circuit": self.spec.circuit,
            "estimator": self.spec.estimator,
            "seed": self.spec.seed,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "samples_drawn": samples,
            "cycles_simulated": cycles,
            "num_events": len(self.events),
            "resumed": self.resumed,
            "max_retries": self.max_retries,
            "retries": self.retries,
            "checkpoint_available": self.checkpoint_available,
            "error": self.error,
        }
        if self.result_payload is not None:
            data["result"] = self.result_payload
        return data

    def meta_dict(self) -> dict[str, Any]:
        """The persisted ``meta.json`` document (a snapshot sans result body)."""
        meta = self.snapshot()
        meta.pop("result", None)
        return meta


class EstimationService:
    """Validating, persisting, event-streaming scheduler over a thread pool.

    Parameters
    ----------
    store:
        Optional :class:`ResultStore` (or a path for one).  With a store,
        results, event logs and checkpoints survive restarts — construction
        rehydrates every stored job, marking jobs a dead server left
        mid-flight as ``"interrupted"`` (resumable if checkpointed).  Without
        one, the service is fully functional in memory.
    num_workers:
        Persistent worker threads executing jobs.
    max_pending:
        Bound on jobs waiting in the queue; submissions beyond it raise
        :class:`ServiceFullError` (HTTP 429) instead of growing unboundedly.
    max_retries:
        Default per-job retry budget: a job whose attempt raises is
        re-queued (emitting ``job-retrying``) up to this many times before
        it is marked ``failed``.  Retried jobs resume from their
        auto-snapshot checkpoint when one exists.  Submissions can override
        it per job via the ``{"spec": ..., "max_retries": n}`` wrapper.
        Jobs found ``interrupted`` during rehydration are auto-requeued
        while their budget allows (they count a retry).
    auto_checkpoint_events:
        Snapshot a resumable checkpoint every this many estimator progress
        events while a job runs (0 disables).  The snapshots are what
        retries and restart-rehydration resume from, so interrupted work is
        bounded instead of lost.
    """

    def __init__(
        self,
        store: ResultStore | str | None = None,
        num_workers: int = 2,
        max_pending: int = 1024,
        max_retries: int = 0,
        auto_checkpoint_events: int = 32,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if auto_checkpoint_events < 0:
            raise ValueError("auto_checkpoint_events must be non-negative")
        self.store = ResultStore(store) if isinstance(store, (str, bytes)) else store
        self.num_workers = num_workers
        self.max_pending = max_pending
        self.max_retries = max_retries
        self.auto_checkpoint_events = auto_checkpoint_events
        self.started_at = time.time()
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._records_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._pending = 0
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._program_guard = threading.Lock()
        self._program_locks: dict[str, threading.Lock] = {}
        self._program_keys: set[str] = set()
        self._events_published = 0
        if self.store is not None:
            self._rehydrate()

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "EstimationService":
        """Spawn the worker threads (idempotent)."""
        if not self._threads:
            self._stop.clear()
            for index in range(self.num_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(index,),
                    name=f"repro-service-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self

    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Register the asyncio loop that async (SSE) subscribers run on."""
        self._loop = loop

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the worker pool; running jobs finish, queued jobs stay queued."""
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "EstimationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ rehydration
    def _rehydrate(self) -> None:
        """Reload every stored job; mark a dead server's in-flight jobs.

        Jobs found mid-flight become ``interrupted``; those with a
        checkpoint and retry budget left are auto-requeued immediately
        (consuming one retry), so a restarted server picks interrupted work
        back up from the auto-snapshot instead of leaving it dead.
        """
        for job_id, meta, spec_dict in self.store.scan():
            try:
                spec = JobSpec.from_dict(spec_dict)
            except (TypeError, ValueError, KeyError):
                continue  # stored by an incompatible version; leave on disk
            record = JobRecord(
                job_id,
                spec,
                meta.get("submitted_at") or self.started_at,
                max_retries=int(meta.get("max_retries", 0)),
            )
            record.status = meta.get("status", "interrupted")
            record.started_at = meta.get("started_at")
            record.finished_at = meta.get("finished_at")
            record.error = meta.get("error")
            record.resumed = int(meta.get("resumed", 0))
            record.retries = int(meta.get("retries", 0))
            record.events = self.store.read_events(job_id)
            record.next_seq = (record.events[-1]["seq"] + 1) if record.events else 0
            record.progress = (
                int(meta.get("samples_drawn", 0)),
                int(meta.get("cycles_simulated", 0)),
            )
            record.checkpoint_available = self.store.has_checkpoint(job_id)
            if record.status == "completed":
                record.result_payload = self.store.load_result(job_id)
            if record.status not in FINISHED_STATUSES:
                record.status = "interrupted"
                self.store.write_meta(job_id, record.meta_dict())
            with self._records_lock:
                self._records[job_id] = record
                self._order.append(job_id)
        for record in self.jobs():
            if (
                record.status == "interrupted"
                and record.checkpoint_available
                and record.retries < record.max_retries
            ):
                with record._lock:
                    record.status = "queued"
                    record.finished_at = None
                    record.resumed += 1
                    record.retries += 1
                with self._records_lock:
                    self._pending += 1
                self._publish(
                    record, self._lifecycle(record, JobResumed, from_checkpoint=True)
                )
                self._persist_meta(record)
                self._queue.put(record.id)

    # ------------------------------------------------------------- submission
    def submit(self, payload: Any) -> JobRecord:
        """Validate *payload*, persist it, queue it, and return its record.

        Raises :class:`InvalidJobError` on malformed payloads and
        :class:`ServiceFullError` when the pending queue is at capacity.
        """
        spec = validate_job_payload(payload)
        max_retries = self.max_retries
        if isinstance(payload, dict) and "spec" in payload and "max_retries" in payload:
            max_retries = validate_retry_policy(payload["max_retries"])
        now = time.time()
        with self._records_lock:
            if self._pending >= self.max_pending:
                raise ServiceFullError(
                    f"queue is full ({self._pending} pending jobs, "
                    f"max_pending={self.max_pending}); retry later"
                )
            job_id = self._new_job_id()
            record = JobRecord(job_id, spec, now, max_retries=max_retries)
            self._records[job_id] = record
            self._order.append(job_id)
            self._pending += 1
            position = self._pending
        if self.store is not None:
            self.store.create_job(job_id, spec.to_dict(), record.meta_dict())
        self._publish(
            record,
            self._lifecycle(
                record, JobQueued, label=spec.label, queue_position=position
            ),
        )
        self._queue.put(job_id)
        return record

    def _new_job_id(self) -> str:
        """A fresh collision-checked job id (``_records_lock`` held)."""
        while True:
            job_id = "j" + uuid.uuid4().hex[:10]
            if job_id not in self._records and not (
                self.store is not None and self.store.has_job(job_id)
            ):
                return job_id

    # ----------------------------------------------------------------- access
    def get(self, job_id: str) -> JobRecord:
        """The record of *job_id*; raises :class:`UnknownJobError`."""
        record = self._records.get(job_id)
        if record is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return record

    def jobs(self) -> list[JobRecord]:
        """All records in submission order."""
        with self._records_lock:
            return [self._records[job_id] for job_id in self._order]

    def stats(self) -> dict[str, Any]:
        """Service counters served by ``GET /stats``."""
        counts = dict.fromkeys(JOB_STATUSES, 0)
        for record in self.jobs():
            counts[record.status] = counts.get(record.status, 0) + 1
        return {
            "jobs": counts,
            "num_jobs": sum(counts.values()),
            "retries_scheduled": sum(record.retries for record in self.jobs()),
            "pending": self._pending,
            "max_pending": self.max_pending,
            "num_workers": self.num_workers,
            "programs_lowered": len(self._program_keys),
            "events_published": self._events_published,
            "uptime_seconds": time.time() - self.started_at,
            "store": str(self.store.root) if self.store is not None else None,
        }

    # ---------------------------------------------------------- cancel/resume
    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued or running job.

        Queued jobs cancel immediately.  Running jobs are flagged; the worker
        snapshots a resumable checkpoint at the next event boundary and emits
        the terminal ``job-cancelled`` event.  Raises :class:`JobStateError`
        for jobs already finished.
        """
        record = self.get(job_id)
        with record._lock:
            if record.status == "queued":
                record.status = "cancelled"
                record.finished_at = time.time()
                was_queued = True
            elif record.status == "running":
                record.cancel_requested.set()
                was_queued = False
            else:
                raise JobStateError(f"job {job_id} is {record.status}; nothing to cancel")
        if was_queued:
            self._pending_done()
            self._publish(
                record, self._lifecycle(record, JobCancelled, checkpoint_available=False)
            )
            self._persist_meta(record)
            self._notify(record)
        return record

    def resume(self, job_id: str) -> JobRecord:
        """Re-queue a cancelled/interrupted job, continuing from its checkpoint.

        With a checkpoint the resumed run continues the interrupted random
        stream and finishes bit-identical to an uninterrupted run; without
        one the job simply restarts from its seed — which, by construction,
        produces the identical result too.
        """
        record = self.get(job_id)
        with self._records_lock:
            if self._pending >= self.max_pending:
                raise ServiceFullError(
                    f"queue is full ({self._pending} pending jobs); retry later"
                )
            with record._lock:
                if record.status not in RESUMABLE_STATUSES:
                    raise JobStateError(
                        f"job {job_id} is {record.status}; only "
                        f"{sorted(RESUMABLE_STATUSES)} jobs can be resumed"
                    )
                record.status = "queued"
                record.finished_at = None
                record.resumed += 1
                record.cancel_requested.clear()
            self._pending += 1
        self._publish(
            record,
            self._lifecycle(record, JobResumed, from_checkpoint=record.checkpoint_available),
        )
        self._persist_meta(record)
        self._queue.put(job_id)
        return record

    # ------------------------------------------------------------ worker pool
    def _worker_loop(self, index: int) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if job_id is None:
                return
            record = self._records.get(job_id)
            if record is not None:
                self._run_job(record, index)

    def _run_job(self, record: JobRecord, worker: int) -> None:
        with record._lock:
            if record.status != "queued":
                return  # cancelled while waiting in the queue
            record.status = "running"
            record.started_at = time.time()
        self._pending_done()
        self._persist_meta(record)
        try:
            checkpoint = (
                self._load_checkpoint(record) if (record.resumed or record.retries) else None
            )
            self._warm_circuit(record.spec.circuit)
            estimator = record.spec.build_estimator()
            self._publish(
                record,
                self._lifecycle(
                    record, JobStarted, worker=worker, resumed=checkpoint is not None
                ),
            )
            stream = estimator.run(resume_from=checkpoint)
            final: EstimateCompleted | None = None
            events_since_snapshot = 0
            for event in stream:
                self._publish(record, event)
                if isinstance(event, EstimateCompleted):
                    final = event
                    continue  # the stream ends right after; cancellation is moot
                if record.cancel_requested.is_set():
                    self._cancel_in_flight(record, estimator, stream)
                    return
                events_since_snapshot += 1
                if (
                    self.auto_checkpoint_events
                    and events_since_snapshot >= self.auto_checkpoint_events
                ):
                    events_since_snapshot = 0
                    self._snapshot_checkpoint(record, estimator)
            if final is None:
                raise RuntimeError("estimator stream ended without an EstimateCompleted event")
            result = JobResult(spec=record.spec, result=final.estimate)
            payload = result.to_dict()
            record.result_payload = payload
            record.error = None
            if self.store is not None:
                self.store.save_result(record.id, payload)
            elapsed = time.time() - (record.started_at or time.time())
            self._finish(
                record,
                "completed",
                self._lifecycle(
                    record, JobCompleted, result=payload["result"], elapsed_seconds=elapsed
                ),
            )
        except Exception as exc:  # noqa: BLE001 — job errors must not kill the worker
            record.error = f"{type(exc).__name__}: {exc}"
            if record.retries < record.max_retries and not self._stop.is_set():
                self._retry_job(record, record.error)
            else:
                self._finish(
                    record, "failed", self._lifecycle(record, JobFailed, error=record.error)
                )

    def _snapshot_checkpoint(self, record: JobRecord, estimator: Any) -> None:
        """Best-effort auto-snapshot so a crashed or retried job resumes mid-run."""
        try:
            checkpoint = estimator.make_checkpoint()
        except Exception:  # noqa: BLE001 — e.g. before sampling began
            return
        if checkpoint is None:
            return
        record._memory_checkpoint = checkpoint
        if self.store is not None:
            self.store.save_checkpoint(record.id, checkpoint)
        if not record.checkpoint_available:
            record.checkpoint_available = True
            self._persist_meta(record)

    def _retry_job(self, record: JobRecord, error: str) -> None:
        """Re-queue a failed attempt that still has retry budget."""
        with record._lock:
            record.retries += 1
            record.status = "queued"
            attempt = record.retries
        with self._records_lock:
            self._pending += 1
        self._publish(
            record,
            self._lifecycle(
                record,
                JobRetrying,
                error=error,
                attempt=attempt,
                max_retries=record.max_retries,
                from_checkpoint=record.checkpoint_available,
            ),
        )
        self._persist_meta(record)
        self._notify(record)
        self._queue.put(record.id)

    def _cancel_in_flight(self, record: JobRecord, estimator: Any, stream: Any) -> None:
        """Snapshot a checkpoint (when possible) and finish as cancelled."""
        checkpoint = None
        try:
            checkpoint = estimator.make_checkpoint()
        except Exception:  # noqa: BLE001 — e.g. cancelled before sampling began
            checkpoint = None
        stream.close()
        if checkpoint is not None:
            record._memory_checkpoint = checkpoint
            if self.store is not None:
                self.store.save_checkpoint(record.id, checkpoint)
        record.checkpoint_available = checkpoint is not None
        self._finish(
            record,
            "cancelled",
            self._lifecycle(
                record, JobCancelled, checkpoint_available=record.checkpoint_available
            ),
        )

    def _load_checkpoint(self, record: JobRecord) -> Any | None:
        if record._memory_checkpoint is not None:
            return record._memory_checkpoint
        if self.store is not None:
            return self.store.load_checkpoint(record.id)
        return None

    def _finish(self, record: JobRecord, status: str, event: ProgressEvent) -> None:
        """Publish the terminal event, then flip the status (in that order).

        Stream readers drain the log first and only stop once the status is
        finished, so publishing before the flip guarantees they always see
        the terminal event.
        """
        self._publish(record, event)
        with record._lock:
            record.status = status
            record.finished_at = time.time()
        self._persist_meta(record)
        if self.store is not None:
            self.store.close_events(record.id)
        self._notify(record)

    # -------------------------------------------------------------- internals
    def _pending_done(self) -> None:
        with self._records_lock:
            self._pending = max(0, self._pending - 1)

    def _persist_meta(self, record: JobRecord) -> None:
        if self.store is not None:
            self.store.write_meta(record.id, record.meta_dict())

    def _lifecycle(self, record: JobRecord, cls: Callable, **extra: Any) -> ProgressEvent:
        """Build a lifecycle event carrying the job's current progress."""
        samples, cycles = record.progress
        return cls(
            circuit=record.spec.circuit,
            method=record.spec.estimator,
            samples_drawn=samples,
            cycles_simulated=cycles,
            job_id=record.id,
            **extra,
        )

    def _publish(self, record: JobRecord, event: ProgressEvent) -> None:
        """Append *event* to the job's log (seq-stamped), persist, notify."""
        with record._lock:
            envelope = {
                "seq": record.next_seq,
                "job": record.id,
                "time": time.time(),
                "event": event.to_dict(),
            }
            record.next_seq += 1
            record.events.append(envelope)
            record.progress = (event.samples_drawn, event.cycles_simulated)
            if self.store is not None:
                self.store.append_event(record.id, envelope)
        self._events_published += 1
        self._notify(record)

    def _notify(self, record: JobRecord) -> None:
        """Wake synchronous and asyncio waiters of *record*."""
        with record._cond:
            record._cond.notify_all()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._async_notify, record)
            except RuntimeError:
                pass  # loop shut down between the check and the call

    @staticmethod
    def _async_notify(record: JobRecord) -> None:
        """Replace-and-set the record's change event (runs on the loop)."""
        change = record.async_change
        record.async_change = asyncio.Event()
        change.set()

    def _warm_circuit(self, ref: str) -> None:
        """Lower the job's circuit exactly once across the whole pool.

        The first worker to touch *ref* holds its warm lock through the
        lowering; concurrent jobs of the same circuit wait here and then hit
        the in-process program memo instead of lowering again.
        """
        from repro.circuits.program import CircuitProgram

        with self._program_guard:
            lock = self._program_locks.setdefault(ref, threading.Lock())
        with lock:
            program = CircuitProgram.of(resolve_circuit(ref))
        with self._program_guard:
            self._program_keys.add(program.key)
