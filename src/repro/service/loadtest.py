"""Load-test harness: thousands of concurrent small jobs against one server.

This drives the full client path — HTTP submission with 429 retry, SSE event
replay, result download — from a pool of client threads, then audits what the
service did:

* **Zero lost or duplicated events**: every job's envelope log must be seq-
  contiguous from 0 (``job-queued``) to exactly one terminal event.
* **Byte-identical results**: each completed job's stored result payload must
  equal — as canonical JSON bytes — what :func:`repro.api.jobs.run_job`
  produces for the same spec in-process (the :class:`BatchRunner` path).
* **Cancel → resume integrity** (optional): one in-flight job is cancelled
  mid-run, resumed from its checkpoint, and its final result compared
  byte-identically against an uninterrupted run of the same spec.

The audit results plus throughput (jobs/sec) and submit-to-complete latency
percentiles (p50/p99, measured from the server's own timestamps) form a
:class:`LoadTestReport` — ``benchmarks/test_bench_service.py`` gates on the
correctness fields and publishes the numbers as ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api.jobs import JobSpec, run_job
from repro.core.config import EstimationConfig
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.events import TERMINAL_EVENT_KINDS

#: A small-but-real estimation config: one s27-sized job runs in a few
#: milliseconds, so thousands of jobs stress scheduling, not simulation.
SMALL_JOB_CONFIG = EstimationConfig(
    randomness_sequence_length=16,
    max_independence_interval=4,
    min_samples=16,
    check_interval=16,
    max_samples=48,
    warmup_cycles=4,
)


def make_small_specs(
    num_jobs: int,
    circuits: Sequence[str] = ("s27",),
    config: EstimationConfig = SMALL_JOB_CONFIG,
    base_seed: int = 2025,
) -> list[JobSpec]:
    """Build *num_jobs* distinct small JobSpecs cycling over *circuits*.

    Seeds differ per job so the audit distinguishes every result; circuits
    repeat so the exactly-once program-lowering guarantee is exercised hard.
    """
    return [
        JobSpec(
            circuit=circuits[index % len(circuits)],
            config=config,
            seed=base_seed + index,
            label=f"load-{index:05d}",
        )
        for index in range(num_jobs)
    ]


@dataclass
class LoadTestReport:
    """Outcome of one load-test run: correctness audit + throughput/latency."""

    num_jobs: int
    num_completed: int
    num_failed: int
    elapsed_seconds: float
    jobs_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    events_total: int
    event_log_errors: list[str] = field(default_factory=list)
    result_mismatches: list[str] = field(default_factory=list)
    resubmit_429s: int = 0
    programs_lowered: int | None = None
    resume_check: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """True when every correctness audit passed."""
        resume_ok = self.resume_check is None or self.resume_check.get("identical", False)
        return (
            self.num_completed == self.num_jobs
            and self.num_failed == 0
            and not self.event_log_errors
            and not self.result_mismatches
            and resume_ok
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form (the payload of ``BENCH_service.json``)."""
        return {
            "num_jobs": self.num_jobs,
            "num_completed": self.num_completed,
            "num_failed": self.num_failed,
            "elapsed_seconds": self.elapsed_seconds,
            "jobs_per_second": self.jobs_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "events_total": self.events_total,
            "event_log_errors": self.event_log_errors[:20],
            "result_mismatches": self.result_mismatches[:20],
            "resubmit_429s": self.resubmit_429s,
            "programs_lowered": self.programs_lowered,
            "resume_check": self.resume_check,
            "ok": self.ok,
        }


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def _audit_event_log(job_id: str, envelopes: list[dict[str, Any]]) -> list[str]:
    """Seq contiguity + lifecycle bracketing errors of one job's log."""
    errors = []
    seqs = [envelope["seq"] for envelope in envelopes]
    if seqs != list(range(len(seqs))):
        errors.append(f"{job_id}: event seqs not contiguous from 0: {seqs[:10]}...")
    if not envelopes:
        errors.append(f"{job_id}: empty event log")
        return errors
    if envelopes[0]["event"]["kind"] != "job-queued":
        errors.append(f"{job_id}: first event is {envelopes[0]['event']['kind']!r}")
    terminal = [e for e in envelopes if e["event"]["kind"] in TERMINAL_EVENT_KINDS]
    if len(terminal) != 1 or envelopes[-1]["event"]["kind"] not in TERMINAL_EVENT_KINDS:
        errors.append(
            f"{job_id}: expected exactly one terminal event at the end, "
            f"got {[e['event']['kind'] for e in terminal]}"
        )
    return errors


def _canonical(payload: Any) -> str:
    """Canonical JSON bytes, with wall-clock timing fields stripped.

    ``elapsed_seconds`` is the one result field that is wall time, not
    computation — the suite-wide bit-exactness convention excludes it
    (cf. ``tests/api/test_batch.py``), and so does this audit.
    """
    return json.dumps(_strip_timing(payload), sort_keys=True)


def _strip_timing(payload: Any) -> Any:
    if isinstance(payload, dict):
        return {
            key: _strip_timing(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [_strip_timing(item) for item in payload]
    return payload


def run_load_test(
    url: str,
    specs: Sequence[JobSpec],
    client_threads: int = 8,
    verify_results: bool = True,
    check_resume: bool = True,
    resume_circuit: str = "s27",
) -> LoadTestReport:
    """Drive *specs* through the server at *url* and audit the outcome.

    Submits every spec from ``client_threads`` concurrent clients (retrying
    politely on 429 backpressure), streams each job's SSE event log to
    completion, then audits: sequence numbers contiguous from 0, exactly one
    terminal event, and — when ``verify_results`` — results byte-identical to
    an in-process :func:`repro.api.jobs.run_job` of the same spec (modulo
    wall-clock timing).  ``check_resume`` additionally cancels one in-flight
    job and verifies the resumed run is bit-identical to an uninterrupted
    one.  Returns a :class:`LoadTestReport`; ``report.ok`` is the gate.
    """
    started = time.perf_counter()
    retry_429s = 0
    retry_lock = threading.Lock()

    def _drive(chunk: list[JobSpec]) -> list[tuple[JobSpec, str]]:
        nonlocal retry_429s
        submitted = []
        with ServiceClient(url) as client:
            for spec in chunk:
                while True:
                    try:
                        snapshot = client.submit(spec)
                        break
                    except ServiceClientError as error:
                        if error.status != 429:
                            raise
                        with retry_lock:
                            retry_429s += 1
                        time.sleep(0.02)  # backpressure: drain a little, retry
                submitted.append((spec, snapshot["id"]))
        return submitted

    chunks = [list(specs[index::client_threads]) for index in range(client_threads)]
    chunks = [chunk for chunk in chunks if chunk]
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        submitted = [pair for chunk in pool.map(_drive, chunks) for pair in chunk]

    def _collect(pairs: list[tuple[JobSpec, str]]) -> list[dict[str, Any]]:
        rows = []
        with ServiceClient(url) as client:
            for spec, job_id in pairs:
                envelopes = list(client.events(job_id))  # blocks until terminal
                snapshot = client.job(job_id)
                rows.append({"spec": spec, "id": job_id, "snapshot": snapshot,
                             "envelopes": envelopes})
        return rows

    collect_chunks = [submitted[index::client_threads] for index in range(client_threads)]
    collect_chunks = [chunk for chunk in collect_chunks if chunk]
    with ThreadPoolExecutor(max_workers=len(collect_chunks)) as pool:
        rows = [row for chunk in pool.map(_collect, collect_chunks) for row in chunk]
    elapsed = time.perf_counter() - started

    event_log_errors: list[str] = []
    latencies_ms: list[float] = []
    completed = failed = events_total = 0
    for row in rows:
        snapshot, envelopes = row["snapshot"], row["envelopes"]
        events_total += len(envelopes)
        event_log_errors.extend(_audit_event_log(row["id"], envelopes))
        if snapshot["status"] == "completed":
            completed += 1
            latencies_ms.append(
                (snapshot["finished_at"] - snapshot["submitted_at"]) * 1000.0
            )
        else:
            failed += 1
            event_log_errors.append(
                f"{row['id']}: finished as {snapshot['status']!r} ({snapshot['error']})"
            )

    result_mismatches: list[str] = []
    if verify_results:
        reference: dict[str, str] = {}
        for row in rows:
            if row["snapshot"]["status"] != "completed":
                continue
            key = _canonical(row["spec"].to_dict())
            if key not in reference:
                # The in-process BatchRunner path: same spec, no service.
                reference[key] = _canonical(run_job(row["spec"]).to_dict())
            service_payload = _canonical(row["snapshot"]["result"])
            if service_payload != reference[key]:
                result_mismatches.append(
                    f"{row['id']}: service result differs from in-process run"
                )

    resume_check = _check_cancel_resume(url, resume_circuit) if check_resume else None

    stats = None
    try:
        with ServiceClient(url) as client:
            stats = client.stats()
    except (ServiceClientError, OSError):
        pass

    latencies_ms.sort()
    return LoadTestReport(
        num_jobs=len(specs),
        num_completed=completed,
        num_failed=failed,
        elapsed_seconds=elapsed,
        jobs_per_second=(completed / elapsed) if elapsed > 0 else 0.0,
        latency_p50_ms=_percentile(latencies_ms, 0.50),
        latency_p99_ms=_percentile(latencies_ms, 0.99),
        latency_mean_ms=(sum(latencies_ms) / len(latencies_ms)) if latencies_ms else 0.0,
        events_total=events_total,
        event_log_errors=event_log_errors,
        result_mismatches=result_mismatches,
        resubmit_429s=retry_429s,
        programs_lowered=stats.get("programs_lowered") if stats else None,
        resume_check=resume_check,
    )


def _check_cancel_resume(url: str, circuit: str) -> dict[str, Any]:
    """Cancel one in-flight job, resume it, compare against an unbroken run.

    Uses a longer-running config so cancellation reliably lands mid-sampling
    (after the first ``sample-progress``, before completion).  Returns a dict
    with ``identical`` plus enough context to debug a failure.
    """
    spec = JobSpec(
        circuit=circuit,
        config=EstimationConfig(
            randomness_sequence_length=32,
            max_independence_interval=4,
            min_samples=64,
            check_interval=16,
            max_samples=1536,
            warmup_cycles=4,
        ),
        seed=90125,
        label="cancel-resume-probe",
    )
    # Both sides are full JobResult.to_dict() payloads (the service's stored
    # result and the job snapshot's "result" field share that shape).
    uninterrupted = _canonical(run_job(spec).to_dict())
    outcome: dict[str, Any] = {"identical": False, "cancelled_mid_run": False}
    with ServiceClient(url) as client:
        job_id = client.submit(spec)["id"]
        outcome["job"] = job_id
        stream = client.events(job_id)
        try:
            for envelope in stream:
                if envelope["event"]["kind"] == "sample-progress":
                    client.cancel(job_id)
                    break
        finally:
            stream.close()
        # Poll until the worker acknowledges the cancel with a terminal state.
        deadline = time.monotonic() + 60.0
        last = client.job(job_id)
        while last["status"] in ("running", "queued") and time.monotonic() < deadline:
            time.sleep(0.01)
            last = client.job(job_id)
        outcome["status_after_cancel"] = last["status"]
        if last["status"] == "completed":
            # The job outran the cancel; its result still must match.
            outcome["cancelled_mid_run"] = False
            outcome["identical"] = _canonical(last["result"]) == uninterrupted
            return outcome
        outcome["cancelled_mid_run"] = last["status"] == "cancelled"
        outcome["checkpoint_available"] = last.get("checkpoint_available", False)
        client.resume(job_id)
        final = client.wait(job_id)
        outcome["status_after_resume"] = final["status"]
        if final["status"] == "completed":
            outcome["identical"] = _canonical(final["result"]) == uninterrupted
    return outcome
