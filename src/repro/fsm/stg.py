"""State transition graph (STG) extraction by exhaustive enumeration.

For a circuit with ``L`` latches and ``I`` primary inputs, the STG has
``2**L`` states and the input-weighted transition matrix is obtained by
evaluating the next-state logic for every (state, input) pair — ``2**(L+I)``
zero-delay evaluations.  This is exactly the exponential blow-up the paper's
statistical method avoids, which is why extraction is guarded by an explicit
work limit; it remains invaluable as ground truth for the small circuits in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator


@dataclass
class StateTransitionGraph:
    """The FSM view of a sequential circuit.

    Attributes
    ----------
    circuit_name:
        Name of the originating circuit.
    num_latches / num_inputs:
        Dimensions of the state and input spaces.
    transition_matrix:
        Row-stochastic matrix ``P`` with ``P[s1, s2]`` the probability of
        moving from state ``s1`` to ``s2`` in one clock cycle under the input
        distribution the STG was extracted with (Section III of the paper).
    next_state:
        Dense table ``next_state[s, v]`` giving the successor state of state
        ``s`` under input vector ``v``.
    input_probabilities:
        Probability of each input vector ``v`` (length ``2**num_inputs``).
    """

    circuit_name: str
    num_latches: int
    num_inputs: int
    transition_matrix: np.ndarray
    next_state: np.ndarray
    input_probabilities: np.ndarray

    @property
    def num_states(self) -> int:
        """Number of states (``2 ** num_latches``)."""
        return 1 << self.num_latches

    def successors(self, state: int) -> list[int]:
        """Distinct successor states of *state* (any input)."""
        return sorted(set(int(s) for s in self.next_state[state]))

    def edge_list(self) -> list[tuple[int, int, float]]:
        """Return ``(source, destination, probability)`` for every non-zero edge."""
        edges = []
        for s1 in range(self.num_states):
            for s2 in range(self.num_states):
                probability = float(self.transition_matrix[s1, s2])
                if probability > 0.0:
                    edges.append((s1, s2, probability))
        return edges


def input_vector_probabilities(bit_probabilities: Sequence[float]) -> np.ndarray:
    """Probability of every input vector given independent per-bit one-probabilities.

    Vector ``v`` is interpreted bitwise: bit *i* of ``v`` is the value of
    primary input *i*.
    """
    probs = np.asarray(bit_probabilities, dtype=float)
    if np.any(probs < 0.0) or np.any(probs > 1.0):
        raise ValueError("bit probabilities must lie in [0, 1]")
    num_inputs = probs.size
    num_vectors = 1 << num_inputs
    vector_probs = np.ones(num_vectors)
    for vector in range(num_vectors):
        probability = 1.0
        for bit in range(num_inputs):
            p_one = probs[bit]
            probability *= p_one if (vector >> bit) & 1 else (1.0 - p_one)
        vector_probs[vector] = probability
    return vector_probs


def extract_stg(
    circuit: CompiledCircuit,
    input_bit_probabilities: Sequence[float] | float = 0.5,
    max_evaluations: int = 1 << 20,
) -> StateTransitionGraph:
    """Extract the STG of *circuit* by enumerating every (state, input) pair.

    Parameters
    ----------
    circuit:
        Compiled circuit; its latch count and input count determine the
        enumeration size.
    input_bit_probabilities:
        Either a single probability applied to every primary input or one
        probability per input; primary inputs are assumed mutually
        independent (the paper's experimental setting).
    max_evaluations:
        Safety limit on ``2**(latches + inputs)``; extraction refuses to run
        beyond it because the cost is exponential (the very motivation for
        the paper's statistical approach).
    """
    num_latches = circuit.num_latches
    num_inputs = circuit.num_inputs
    if isinstance(input_bit_probabilities, (int, float)):
        bit_probs = [float(input_bit_probabilities)] * num_inputs
    else:
        bit_probs = [float(p) for p in input_bit_probabilities]
        if len(bit_probs) != num_inputs:
            raise ValueError(f"expected {num_inputs} bit probabilities, got {len(bit_probs)}")

    total_evaluations = (1 << num_latches) * (1 << num_inputs)
    if total_evaluations > max_evaluations:
        raise ValueError(
            f"STG extraction would need {total_evaluations} next-state evaluations, "
            f"above the limit of {max_evaluations}; this exponential cost is exactly "
            "what the statistical estimator avoids"
        )

    num_states = 1 << num_latches
    num_vectors = 1 << num_inputs
    vector_probs = input_vector_probabilities(bit_probs)

    simulator = ZeroDelaySimulator(circuit, width=1)
    next_state = np.zeros((num_states, num_vectors), dtype=np.int64)
    transition_matrix = np.zeros((num_states, num_states))

    for state in range(num_states):
        for vector in range(num_vectors):
            simulator.reset(latch_state=state)
            pattern = [(vector >> bit) & 1 for bit in range(num_inputs)]
            simulator.settle(pattern)
            simulator.clock()
            successor = simulator.latch_state_scalar()
            next_state[state, vector] = successor
            transition_matrix[state, successor] += vector_probs[vector]

    return StateTransitionGraph(
        circuit_name=circuit.name,
        num_latches=num_latches,
        num_inputs=num_inputs,
        transition_matrix=transition_matrix,
        next_state=next_state,
        input_probabilities=vector_probs,
    )
