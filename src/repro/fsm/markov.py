"""Markov-chain utilities: Chapman–Kolmogorov evolution and stationary analysis.

Section III of the paper frames the latch-state process as a Markov chain
with (unknown) transition matrix ``P``: the k-step distribution is
``p(k) = p(0) P^k`` and, for an ergodic chain, converges to the stationary
distribution regardless of ``p(0)``.  These utilities make that argument
computable for the small circuits where the chain can be written down,
which is how the test suite validates both the exact-power baseline and the
claim that a few cycles of independence interval suffice.
"""

from __future__ import annotations

import numpy as np


def _check_stochastic(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("transition matrix must be square")
    if np.any(matrix < -1e-12):
        raise ValueError("transition matrix must be non-negative")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-8):
        raise ValueError("every row of the transition matrix must sum to 1")
    return matrix


def stationary_distribution(
    transition_matrix: np.ndarray,
    tolerance: float = 1e-12,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Solve the Chapman–Kolmogorov equations for the stationary distribution.

    Uses power iteration from the uniform distribution, which converges for
    ergodic chains and, for reducible chains, converges to the stationary
    distribution of the recurrent classes reachable from the uniform start —
    the distribution a long warm-up simulation would actually observe.
    """
    matrix = _check_stochastic(transition_matrix)
    size = matrix.shape[0]
    distribution = np.full(size, 1.0 / size)
    for _ in range(max_iterations):
        updated = distribution @ matrix
        if np.abs(updated - distribution).max() < tolerance:
            return updated / updated.sum()
        distribution = updated
    return distribution / distribution.sum()


def k_step_distribution(
    initial_distribution: np.ndarray, transition_matrix: np.ndarray, steps: int
) -> np.ndarray:
    """Return ``p(k) = p(0) P^k`` (Eq. (2) of the paper)."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    matrix = _check_stochastic(transition_matrix)
    distribution = np.asarray(initial_distribution, dtype=float)
    if distribution.shape != (matrix.shape[0],):
        raise ValueError("initial distribution size must match the transition matrix")
    if not np.isclose(distribution.sum(), 1.0, atol=1e-8):
        raise ValueError("initial distribution must sum to 1")
    for _ in range(steps):
        distribution = distribution @ matrix
    return distribution


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two distributions on the same support."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError("distributions must have the same shape")
    return 0.5 * float(np.abs(p - q).sum())


def mixing_time(
    transition_matrix: np.ndarray,
    threshold: float = 0.05,
    max_steps: int = 10_000,
) -> int:
    """Smallest ``k`` with ``max_s TV(delta_s P^k, pi) <= threshold``.

    This is the Markov-chain quantity underlying the paper's phi-mixing
    assumption: a small mixing time is why a short independence interval is
    enough to decorrelate consecutive power samples.  Returns ``max_steps``
    if the threshold is not reached (e.g. periodic chains).
    """
    matrix = _check_stochastic(transition_matrix)
    pi = stationary_distribution(matrix)
    size = matrix.shape[0]
    step_matrix = np.eye(size)
    for step in range(max_steps + 1):
        worst = max(total_variation_distance(step_matrix[state], pi) for state in range(size))
        if worst <= threshold:
            return step
        step_matrix = step_matrix @ matrix
    return max_steps
