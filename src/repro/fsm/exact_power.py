"""Exact average power by full enumeration (ground truth for small circuits).

With the STG extracted and the stationary state distribution solved, the
expected zero-delay power has a closed form.  One clock cycle's power depends
on the triple ``(V1, S1, V2)``: the network settled for ``(V1, S1)``
transitions to the network settled for ``(V2, S2)`` where ``S2`` is the next
state captured from ``(V1, S1)``.  With mutually independent input vectors,

    E[P] = sum over (s1, v1, v2) of  pi(s1) p(v1) p(v2) * P(v1, s1, v2)

This enumeration is exponential in ``latches + 2 * inputs`` and therefore
only feasible for small circuits; it is used by the test suite and the
baseline-comparison experiments to check that the statistical estimators
converge to the true mean.
"""

from __future__ import annotations

from typing import Sequence

from repro.fsm.markov import stationary_distribution
from repro.fsm.stg import extract_stg, input_vector_probabilities
from repro.power.capacitance import CapacitanceModel
from repro.power.power_model import PowerModel
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator


def exact_average_power(
    circuit: CompiledCircuit,
    input_bit_probabilities: Sequence[float] | float = 0.5,
    power_model: PowerModel | None = None,
    capacitance_model: CapacitanceModel | None = None,
    max_evaluations: int = 1 << 22,
) -> float:
    """Return the exact zero-delay average power of *circuit* in watts.

    Parameters
    ----------
    circuit:
        Compiled circuit; must be small enough to enumerate.
    input_bit_probabilities:
        Per-input (or shared) probability of 1; inputs are assumed mutually
        independent and temporally uncorrelated.
    power_model / capacitance_model:
        Electrical models (defaults match the paper's operating point).
    max_evaluations:
        Safety limit on ``2**latches * 4**inputs`` settle operations.
    """
    power_model = power_model or PowerModel()
    capacitance_model = capacitance_model or CapacitanceModel()

    num_inputs = circuit.num_inputs
    num_latches = circuit.num_latches
    if isinstance(input_bit_probabilities, (int, float)):
        bit_probs = [float(input_bit_probabilities)] * num_inputs
    else:
        bit_probs = [float(p) for p in input_bit_probabilities]
        if len(bit_probs) != num_inputs:
            raise ValueError(f"expected {num_inputs} bit probabilities")

    work = (1 << num_latches) * (1 << num_inputs) * (1 << num_inputs)
    if work > max_evaluations:
        raise ValueError(
            f"exact power needs {work} transition evaluations, above the limit of "
            f"{max_evaluations}; use the statistical estimator for circuits this large"
        )

    stg = extract_stg(circuit, bit_probs, max_evaluations=max_evaluations)
    pi = stationary_distribution(stg.transition_matrix)
    vector_probs = input_vector_probabilities(bit_probs)

    node_caps = capacitance_model.node_capacitances(circuit)
    simulator = ZeroDelaySimulator(circuit, width=1, node_capacitance=node_caps)

    num_vectors = 1 << num_inputs
    expected_switched = 0.0
    for state in range(stg.num_states):
        state_probability = float(pi[state])
        if state_probability == 0.0:
            continue
        for first_vector in range(num_vectors):
            first_probability = float(vector_probs[first_vector])
            if first_probability == 0.0:
                continue
            first_pattern = [(first_vector >> bit) & 1 for bit in range(num_inputs)]
            for second_vector in range(num_vectors):
                second_probability = float(vector_probs[second_vector])
                if second_probability == 0.0:
                    continue
                second_pattern = [(second_vector >> bit) & 1 for bit in range(num_inputs)]
                simulator.reset(latch_state=state)
                simulator.settle(first_pattern)
                switched = simulator.step_and_measure(second_pattern)
                expected_switched += (
                    state_probability * first_probability * second_probability * switched
                )

    return power_model.cycle_power(expected_switched)
