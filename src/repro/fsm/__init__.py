"""Finite-state-machine analysis substrate.

The paper contrasts its simulation-based approach with techniques that work
on the state transition graph (STG) of the circuit's FSM: solving the
Chapman–Kolmogorov equations for the stationary state probabilities is exact
but exponential in the number of latches.  This package implements that
"first approach" for circuits small enough to enumerate — it provides the
ground truth the statistical estimator is validated against in the tests, an
exact-power baseline, and Markov-chain diagnostics (mixing time, total
variation distance) that explain *why* a few clock cycles of independence
interval are enough for the benchmark circuits.
"""

from repro.fsm.exact_power import exact_average_power
from repro.fsm.markov import (
    k_step_distribution,
    mixing_time,
    stationary_distribution,
    total_variation_distance,
)
from repro.fsm.reachability import is_strongly_connected, reachable_states
from repro.fsm.stg import StateTransitionGraph, extract_stg

__all__ = [
    "StateTransitionGraph",
    "extract_stg",
    "stationary_distribution",
    "k_step_distribution",
    "total_variation_distance",
    "mixing_time",
    "reachable_states",
    "is_strongly_connected",
    "exact_average_power",
]
