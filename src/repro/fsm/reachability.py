"""Reachability and connectivity analysis of the state transition graph."""

from __future__ import annotations

from collections import deque

import networkx as nx

from repro.fsm.stg import StateTransitionGraph


def reachable_states(stg: StateTransitionGraph, initial_state: int = 0) -> set[int]:
    """Return the set of states reachable from *initial_state* under any input."""
    if not 0 <= initial_state < stg.num_states:
        raise ValueError(f"initial state {initial_state} outside the state space")
    visited = {initial_state}
    frontier = deque([initial_state])
    while frontier:
        state = frontier.popleft()
        for successor in stg.successors(state):
            if successor not in visited:
                visited.add(successor)
                frontier.append(successor)
    return visited


def to_networkx(stg: StateTransitionGraph, restrict_to: set[int] | None = None) -> nx.DiGraph:
    """Convert the STG into a :class:`networkx.DiGraph` with probability edge weights."""
    graph = nx.DiGraph()
    states = restrict_to if restrict_to is not None else range(stg.num_states)
    graph.add_nodes_from(states)
    for source, destination, probability in stg.edge_list():
        if restrict_to is None or (source in restrict_to and destination in restrict_to):
            graph.add_edge(source, destination, probability=probability)
    return graph


def is_strongly_connected(stg: StateTransitionGraph, from_reachable: bool = True) -> bool:
    """Check whether the (reachable part of the) STG is strongly connected.

    Strong connectivity of the reachable component implies the state chain is
    irreducible, which together with aperiodicity gives the ergodicity the
    paper assumes when it argues that the state distribution converges to the
    stationary one.
    """
    restrict = reachable_states(stg) if from_reachable else None
    graph = to_networkx(stg, restrict_to=restrict)
    if graph.number_of_nodes() == 0:
        return False
    if graph.number_of_nodes() == 1:
        node = next(iter(graph.nodes))
        return graph.has_edge(node, node) or True
    return nx.is_strongly_connected(graph)
