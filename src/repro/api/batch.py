"""Parallel batch execution of :class:`~repro.api.jobs.JobSpec` lists.

:class:`BatchRunner` fans a list of specs across a
``concurrent.futures.ProcessPoolExecutor`` and collects the results into a
:class:`BatchResult` (in submission order) that serializes to a JSON results
manifest.  Because every job is fully described by its serialized spec and
all randomness flows from the spec's seed, a parallel batch is bit-identical
to serial execution of the same specs — worker count only changes wall-clock
time, never results.  Job failures are captured per job (``status: "error"``)
so one bad spec cannot take down the batch.
"""

from __future__ import annotations

import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.jobs import JobResult, JobSpec, run_job_safely
from repro.api.registry import external_provider_modules


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: dict in, dict out (both sides of the process boundary).

    Serial and parallel execution share this exact function, so the two modes
    apply identical spec → result transformations job for job.  ``plugins``
    lists modules to import first so third-party registry entries exist in
    worker processes spawned without the parent's interpreter state.
    """
    for module in payload.get("plugins", ()):
        importlib.import_module(module)
    return run_job_safely(JobSpec.from_dict(payload["spec"])).to_dict()


@dataclass(frozen=True)
class BatchResult:
    """All job results of one batch run, in submission order."""

    results: tuple[JobResult, ...]
    workers: int = 1

    @property
    def all_ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def num_errors(self) -> int:
        return sum(1 for result in self.results if not result.ok)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-batch-manifest/v1",
            "workers": self.workers,
            "num_jobs": len(self.results),
            "num_errors": self.num_errors,
            "jobs": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BatchResult":
        return cls(
            results=tuple(JobResult.from_dict(job) for job in data.get("jobs", ())),
            workers=int(data.get("workers", 1)),
        )

    def write_manifest(self, path: str | os.PathLike) -> None:
        """Write the JSON results manifest to *path*."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2)
            stream.write("\n")

    @classmethod
    def load_manifest(cls, path: str | os.PathLike) -> "BatchResult":
        """Load a manifest previously written by :meth:`write_manifest`."""
        with open(path, encoding="utf-8") as stream:
            return cls.from_dict(json.load(stream))


class BatchRunner:
    """Executes lists of job specs, serially or across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (the default) runs in-process.
        Environments without multiprocess support fall back to serial
        execution transparently — results are identical either way.
    plugin_modules:
        Extra modules imported inside every worker before executing jobs, so
        components they register (estimators, stimuli, stopping criteria)
        resolve there too.  Modules of components already registered from
        outside the library are included automatically; pass names here for
        plugins registered lazily.  Components registered in ``__main__``
        cannot be re-imported by workers under the ``spawn``/``forkserver``
        start methods — move them into an importable module for parallel
        batches.
    """

    def __init__(self, workers: int = 1, plugin_modules: Sequence[str] = ()):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.plugin_modules = tuple(plugin_modules)

    def run(self, specs: Sequence[JobSpec]) -> BatchResult:
        """Execute *specs* and return their results in submission order."""
        plugins = sorted({*external_provider_modules(), *self.plugin_modules})
        self._warm_programs(specs)
        payloads = [{"plugins": plugins, "spec": spec.to_dict()} for spec in specs]
        if self.workers == 1 or len(payloads) < 2:
            raw = [_execute_payload(payload) for payload in payloads]
        else:
            try:
                with ProcessPoolExecutor(max_workers=min(self.workers, len(payloads))) as pool:
                    raw = list(pool.map(_execute_payload, payloads))
            except (OSError, PermissionError):
                # Sandboxes without process/semaphore support: same results,
                # one process.
                raw = [_execute_payload(payload) for payload in payloads]
        return BatchResult(
            results=tuple(JobResult.from_dict(item) for item in raw),
            workers=self.workers,
        )

    @staticmethod
    def _warm_programs(specs: Sequence[JobSpec]) -> None:
        """Lower each distinct circuit once before fanning the jobs out.

        Fork-started workers inherit the in-process program memo; spawned
        workers (and later batches) hit the on-disk cache when
        ``REPRO_PROGRAM_CACHE`` is set.  Either way, jobs sharing a circuit
        no longer pay one lowering per job.  Unresolvable circuit references
        are left for the per-job error capture.
        """
        from repro.api.jobs import resolve_circuit
        from repro.circuits.program import CircuitProgram

        for ref in sorted({spec.circuit for spec in specs}):
            try:
                CircuitProgram.of(resolve_circuit(ref))
            except Exception:  # noqa: BLE001 — surfaces as a job error, with context
                pass


def run_batch(specs: Sequence[JobSpec], workers: int = 1) -> BatchResult:
    """Convenience wrapper: ``BatchRunner(workers).run(specs)``."""
    return BatchRunner(workers=workers).run(specs)


def load_jobs(path: str | os.PathLike) -> list[JobSpec]:
    """Load job specs from a JSON file.

    Accepts either a top-level list of spec dicts or an object with a
    ``"jobs"`` key (the format the CLI's ``batch`` verb documents).  Config
    and stimulus sections may be partial — omitted fields take their
    defaults.
    """
    with open(path, encoding="utf-8") as stream:
        data = json.load(stream)
    if isinstance(data, dict):
        data = data.get("jobs", [])
    if not isinstance(data, list):
        raise ValueError(f"jobs file {path!s} must contain a list or a {{'jobs': [...]}} object")
    specs = []
    for index, item in enumerate(data):
        try:
            specs.append(JobSpec.from_dict(item))
        except (TypeError, ValueError, KeyError) as error:
            # A typo'd config key surfaces as TypeError from the dataclass
            # constructor; normalise everything to one informative ValueError.
            raise ValueError(f"job #{index} is invalid: {error}") from None
    return specs
