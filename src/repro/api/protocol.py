"""Shared driver machinery of the incremental estimator protocol.

Every estimator kind implements ``run()`` — a generator of
:class:`~repro.api.events.ProgressEvent` objects ending in an
:class:`~repro.api.events.EstimateCompleted`.  :class:`StreamingEstimator`
holds the one copy of everything built on top of that contract: the
``estimate()`` / ``estimate_from()`` drivers, checkpoint creation, and
checkpoint validation on resume.  Concrete estimators only implement
``run()`` and maintain ``self._samples`` / ``self._interval_result`` /
``self._elapsed_seconds`` while streaming.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.api.checkpoint import RunCheckpoint
from repro.api.events import EstimateCompleted, ProgressEvent

if TYPE_CHECKING:  # import would be circular at runtime (repro.core imports this)
    from repro.core.results import IntervalSelectionResult

ProgressCallback = Callable[[ProgressEvent], None]


class StreamingEstimator:
    """Base class of estimators that execute as progress-event streams.

    Subclasses implement :meth:`run` (and set ``method``); the drivers,
    checkpointing and resume validation below are shared.  Estimators that
    stream must expose ``self.circuit`` (with a ``name``) and
    ``self.sampler`` (with ``get_state``/``set_state``), and keep the
    in-flight attributes below current while ``run()`` executes.
    """

    #: Method string recorded in results, events and checkpoints.
    method: str = "abstract"

    # In-flight state maintained by run(); class-level defaults mean "no run
    # in progress".
    _samples: list[float] | None = None
    _interval_result: "IntervalSelectionResult | None" = None
    _elapsed_seconds: float = 0.0

    def run(self, resume_from: RunCheckpoint | None = None) -> Iterator[ProgressEvent]:
        """Execute incrementally, yielding progress events (subclass hook)."""
        raise NotImplementedError

    # ---------------------------------------------------------------- drivers
    def estimate(self, progress: ProgressCallback | None = None) -> Any:
        """Drive :meth:`run` to completion and return the final estimate."""
        return self._drive(self.run(), progress)

    def estimate_from(
        self, checkpoint: RunCheckpoint, progress: ProgressCallback | None = None
    ) -> Any:
        """Resume a checkpointed run to completion and return its estimate."""
        return self._drive(self.run(resume_from=checkpoint), progress)

    @staticmethod
    def _drive(stream: Iterator[ProgressEvent], progress: ProgressCallback | None) -> Any:
        final: ProgressEvent | None = None
        for event in stream:
            if progress is not None:
                progress(event)
            final = event
        if not isinstance(final, EstimateCompleted):
            raise RuntimeError("estimator stream ended without an EstimateCompleted event")
        return final.estimate

    # ------------------------------------------------------------ checkpoints
    def make_checkpoint(self) -> RunCheckpoint:
        """Freeze the in-flight run (valid between :meth:`run` events)."""
        if self._samples is None:
            raise RuntimeError(
                "no run in progress: checkpoints can only be taken between "
                "events of an active run() stream"
            )
        return RunCheckpoint(
            method=self.method,
            circuit_name=self.circuit.name,
            samples=tuple(self._samples),
            interval_selection=self._interval_result,
            sampler_state=self.sampler.get_state(),
            elapsed_seconds=self._elapsed_seconds,
        )

    def _validate_checkpoint(self, checkpoint: RunCheckpoint) -> None:
        """Reject checkpoints taken by a different estimator kind or circuit."""
        if checkpoint.method != self.method:
            raise ValueError(
                f"checkpoint was taken by {checkpoint.method!r}, not {self.method!r}"
            )
        if checkpoint.circuit_name != self.circuit.name:
            raise ValueError(
                f"checkpoint belongs to circuit {checkpoint.circuit_name!r}, "
                f"not {self.circuit.name!r}"
            )
