"""repro.api — the job-oriented public surface of the estimation library.

This package is the single entry point for programmatic use:

* :class:`~repro.api.jobs.JobSpec` / :class:`~repro.api.jobs.StimulusSpec` —
  fully JSON-serializable run requests with bit-exact ``to_dict`` /
  ``from_dict`` round-tripping; :func:`~repro.api.jobs.run_job` executes one.
* Plugin registries (:func:`register_estimator`, :func:`register_stimulus`,
  :func:`register_stopping_criterion`) — string-keyed dispatch for every
  pluggable component; built-ins self-register.
* Streaming progress events (:mod:`repro.api.events`) — estimators yield
  typed :class:`~repro.api.events.ProgressEvent` objects from ``run()``;
  checkpoint/resume via :class:`~repro.api.checkpoint.RunCheckpoint`.
* :class:`~repro.api.batch.BatchRunner` — fans job lists across worker
  processes and writes a JSON results manifest; bit-identical to serial
  execution of the same specs.

Quickstart::

    from repro.api import JobSpec, StimulusSpec, run_job

    spec = JobSpec(circuit="s298", seed=7,
                   stimulus=StimulusSpec.bernoulli(0.5))
    result = run_job(spec, progress=lambda event: print(event.kind))
    print(result.estimate.average_power_mw)

Attributes resolve lazily (PEP 562): the component modules register
themselves with the registries in :mod:`repro.api.registry`, so this
package's own import must stay light enough to be imported from anywhere in
the library without cycles.
"""

from __future__ import annotations

import importlib
from typing import Any

_EXPORTS = {
    # registries (leaf module — safe to import from anywhere)
    "Registry": "repro.api.registry",
    "ESTIMATOR_REGISTRY": "repro.api.registry",
    "STIMULUS_REGISTRY": "repro.api.registry",
    "STOPPING_CRITERION_REGISTRY": "repro.api.registry",
    "DELAY_MODEL_REGISTRY": "repro.api.registry",
    "SIMULATOR_REGISTRY": "repro.api.registry",
    "register_estimator": "repro.api.registry",
    "register_stimulus": "repro.api.registry",
    "register_stopping_criterion": "repro.api.registry",
    "register_delay_model": "repro.api.registry",
    "register_simulator": "repro.api.registry",
    "get_estimator": "repro.api.registry",
    "get_stimulus": "repro.api.registry",
    "get_stopping_criterion": "repro.api.registry",
    "get_delay_model": "repro.api.registry",
    "get_simulator": "repro.api.registry",
    "estimator_names": "repro.api.registry",
    "stimulus_names": "repro.api.registry",
    "stopping_criterion_names": "repro.api.registry",
    "delay_model_names": "repro.api.registry",
    "simulator_names": "repro.api.registry",
    # events + checkpoint
    "ProgressEvent": "repro.api.events",
    "RunStarted": "repro.api.events",
    "IntervalTrialEvent": "repro.api.events",
    "IntervalSelected": "repro.api.events",
    "SampleProgress": "repro.api.events",
    "ShardProgress": "repro.api.events",
    "ChainsResized": "repro.api.events",
    "WorkerLost": "repro.api.events",
    "WorkerRecovered": "repro.api.events",
    "EstimateCompleted": "repro.api.events",
    "event_from_dict": "repro.api.events",
    "event_kinds": "repro.api.events",
    "RunCheckpoint": "repro.api.checkpoint",
    # jobs
    "JobSpec": "repro.api.jobs",
    "StimulusSpec": "repro.api.jobs",
    "JobResult": "repro.api.jobs",
    "run_job": "repro.api.jobs",
    "run_job_safely": "repro.api.jobs",
    "register_result_type": "repro.api.jobs",
    "resolve_circuit": "repro.api.jobs",
    "derive_job_seeds": "repro.api.jobs",
    # batch
    "BatchRunner": "repro.api.batch",
    "BatchResult": "repro.api.batch",
    "run_batch": "repro.api.batch",
    "load_jobs": "repro.api.batch",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
