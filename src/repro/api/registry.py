"""String-keyed plugin registries for the estimation API.

Estimators, stimuli and stopping criteria are looked up by name everywhere a
:class:`~repro.api.jobs.JobSpec` is executed, so all three component families
are dispatched through the registries below instead of hard-coded tuples and
``if``/``elif`` chains.  Third-party code extends the system by registering a
factory under a new name::

    from repro.api import register_estimator

    @register_estimator("my-estimator")
    class MyEstimator:
        def __init__(self, circuit, stimulus=None, config=None, rng=None, **params): ...
        def run(self): ...          # yields ProgressEvents
        def estimate(self): ...     # drives run() to completion

The registered name is then valid in ``JobSpec(estimator="my-estimator")``,
in batch job files and on the command line.

Factory contracts
-----------------
* **estimator** — ``factory(circuit, stimulus=, config=, rng=, **params)``
  returning an object with ``estimate(progress=None)`` and (preferably) a
  streaming ``run()`` generator.
* **stimulus** — ``factory(num_inputs, **params)`` returning a
  :class:`~repro.stimulus.base.Stimulus`.
* **stopping criterion** — ``factory(max_relative_error=, confidence=,
  **kwargs)`` returning a
  :class:`~repro.stats.stopping.base.StoppingCriterion`.

This module deliberately imports nothing from the rest of the package at
module level; the built-in components register themselves when their defining
modules are imported, and each registry lazily imports those modules on first
lookup so ``repro.api`` works without requiring callers to pre-import
anything.
"""

from __future__ import annotations

import importlib
from typing import Callable, Iterable


class Registry:
    """A case-insensitive name → factory mapping with lazy built-in loading.

    Parameters
    ----------
    kind:
        Human-readable component family name, used in error messages.
    builtin_modules:
        Modules imported (once, on first lookup) to let the built-in
        components register themselves.
    """

    def __init__(self, kind: str, builtin_modules: Iterable[str] = ()):
        self.kind = kind
        self._entries: dict[str, Callable] = {}
        self._builtin_modules = tuple(builtin_modules)
        self._bootstrapped = False

    @staticmethod
    def _normalise(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise ValueError("registry names must be non-empty strings")
        return name.strip().lower()

    def _bootstrap(self) -> None:
        if self._bootstrapped:
            return
        self._bootstrapped = True
        for module in self._builtin_modules:
            importlib.import_module(module)

    def register(self, name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()):
        """Register *factory* under *name* (and *aliases*).

        Usable as a decorator (``@registry.register("name")``) or as a direct
        call (``registry.register("name", factory)``).  Re-registering a name
        with a different factory raises ``ValueError``; re-registering the
        same factory is a no-op so modules can be re-imported safely.
        """

        def _register(obj: Callable) -> Callable:
            for key in (name, *aliases):
                key = self._normalise(key)
                existing = self._entries.get(key)
                if existing is not None and existing is not obj:
                    raise ValueError(
                        f"{self.kind} {key!r} is already registered to {existing!r}"
                    )
                self._entries[key] = obj
            return obj

        if factory is not None:
            return _register(factory)
        return _register

    def get(self, name: str) -> Callable:
        """Return the factory registered under *name*; ``KeyError`` if unknown."""
        self._bootstrap()
        key = self._normalise(name)
        if key not in self._entries:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered names: {', '.join(self.names())}"
            )
        return self._entries[key]

    def __contains__(self, name: str) -> bool:
        self._bootstrap()
        try:
            return self._normalise(name) in self._entries
        except ValueError:
            return False

    def names(self) -> tuple[str, ...]:
        """All registered names (including aliases), sorted."""
        self._bootstrap()
        return tuple(sorted(self._entries))


#: Estimator kinds accepted by :class:`~repro.api.jobs.JobSpec`.
ESTIMATOR_REGISTRY = Registry(
    "estimator",
    builtin_modules=(
        "repro.core.dipe",
        "repro.core.baselines",
        "repro.experiments.figure3",
        "repro.variance.control_variate",
    ),
)

#: Stimulus kinds accepted by :class:`~repro.api.jobs.StimulusSpec`.
STIMULUS_REGISTRY = Registry(
    "stimulus",
    builtin_modules=(
        "repro.stimulus.random_inputs",
        "repro.stimulus.correlated_inputs",
        "repro.stimulus.sequence",
        "repro.variance.stimuli",
    ),
)

#: Stopping criteria accepted by :class:`~repro.core.config.EstimationConfig`.
STOPPING_CRITERION_REGISTRY = Registry(
    "stopping criterion",
    builtin_modules=("repro.stats.stopping",),
)

#: Delay models accepted by :class:`~repro.core.config.EstimationConfig`
#: (used by the event-driven power simulator).
DELAY_MODEL_REGISTRY = Registry(
    "delay model",
    builtin_modules=("repro.simulation.delay_models",),
)

#: Power-measurement simulators accepted by
#: :class:`~repro.core.config.EstimationConfig` (``power_simulator=...``).
SIMULATOR_REGISTRY = Registry(
    "simulator",
    builtin_modules=("repro.simulation.power_engines",),
)


def register_estimator(name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()):
    """Register an estimator factory (see module docstring for the contract)."""
    return ESTIMATOR_REGISTRY.register(name, factory, aliases=aliases)


def register_stimulus(name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()):
    """Register a stimulus factory ``(num_inputs, **params) -> Stimulus``."""
    return STIMULUS_REGISTRY.register(name, factory, aliases=aliases)


def register_stopping_criterion(
    name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()
):
    """Register a stopping-criterion factory."""
    return STOPPING_CRITERION_REGISTRY.register(name, factory, aliases=aliases)


def register_delay_model(
    name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()
):
    """Register a delay-model factory ``(**params) -> DelayModel``.

    The registered name becomes valid in
    ``EstimationConfig(delay_model="name")`` and therefore in serialized
    :class:`~repro.api.jobs.JobSpec`s and on the command line
    (``--delay-model``).
    """
    return DELAY_MODEL_REGISTRY.register(name, factory, aliases=aliases)


def get_estimator(name: str) -> Callable:
    """Look up an estimator factory by registered name."""
    return ESTIMATOR_REGISTRY.get(name)


def get_stimulus(name: str) -> Callable:
    """Look up a stimulus factory by registered name."""
    return STIMULUS_REGISTRY.get(name)


def get_stopping_criterion(name: str) -> Callable:
    """Look up a stopping-criterion factory by registered name."""
    return STOPPING_CRITERION_REGISTRY.get(name)


def register_simulator(
    name: str, factory: Callable | None = None, *, aliases: Iterable[str] = ()
):
    """Register a power-measurement simulator factory.

    The factory contract mirrors the built-in engines in
    :mod:`repro.simulation.power_engines`::

        factory(program, width=1, node_capacitance=None,
                delay_model=None, backend="auto") -> engine

    where *program* is a :class:`~repro.circuits.program.CircuitProgram`
    (or a compiled circuit — normalise with ``CircuitProgram.of``) and the
    returned engine measures power over the sampler's zero-delay state
    engine through ``measure_lanes(state_engine, pattern)`` /
    ``measure_total(state_engine, pattern)``.  The registered name becomes
    valid in ``EstimationConfig(power_simulator="name")`` and therefore in
    serialized :class:`~repro.api.jobs.JobSpec`s and on the command line
    (``--power-simulator``).
    """
    return SIMULATOR_REGISTRY.register(name, factory, aliases=aliases)


def get_delay_model(name: str) -> Callable:
    """Look up a delay-model factory by registered name."""
    return DELAY_MODEL_REGISTRY.get(name)


def get_simulator(name: str) -> Callable:
    """Look up a power-simulator factory by registered name."""
    return SIMULATOR_REGISTRY.get(name)


def external_provider_modules() -> tuple[str, ...]:
    """Modules (outside this package) that registered components, sorted.

    Used by the batch runner to re-import third-party plugins inside worker
    processes, where registrations made in the parent are absent under the
    ``spawn``/``forkserver`` start methods.  ``__main__`` registrations
    cannot be re-imported and are excluded.
    """
    modules = set()
    for registry in (
        ESTIMATOR_REGISTRY,
        STIMULUS_REGISTRY,
        STOPPING_CRITERION_REGISTRY,
        DELAY_MODEL_REGISTRY,
        SIMULATOR_REGISTRY,
    ):
        for factory in registry._entries.values():
            module = getattr(factory, "__module__", None)
            if module and module != "__main__" and not module.startswith("repro."):
                modules.add(module)
    return tuple(sorted(modules))


def estimator_names() -> tuple[str, ...]:
    """All registered estimator names."""
    return ESTIMATOR_REGISTRY.names()


def stimulus_names() -> tuple[str, ...]:
    """All registered stimulus names."""
    return STIMULUS_REGISTRY.names()


def stopping_criterion_names() -> tuple[str, ...]:
    """All registered stopping-criterion names."""
    return STOPPING_CRITERION_REGISTRY.names()


def delay_model_names() -> tuple[str, ...]:
    """All registered delay-model names."""
    return DELAY_MODEL_REGISTRY.names()


def simulator_names() -> tuple[str, ...]:
    """All registered power-simulator names."""
    return SIMULATOR_REGISTRY.names()
