"""Typed progress events streamed by :meth:`Estimator.run`.

Every estimator exposes ``run()`` as a generator of :class:`ProgressEvent`
subclasses, so callers can observe a run incrementally (progress bars,
structured logs, early abort via ``generator.close()``) instead of blocking
inside a monolithic ``estimate()`` call.  The event stream of a well-behaved
estimator satisfies two invariants the test suite pins down:

* ``samples_drawn`` is monotonically non-decreasing across the stream, and
* the final event is an :class:`EstimateCompleted` whose ``estimate`` equals
  the value returned by ``estimate()``.

Events carry plain data and serialize to JSON-compatible dicts via
:meth:`ProgressEvent.to_dict` (used by the CLI's ``--progress`` stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # import would be circular at runtime (repro.core imports this)
    from repro.core.results import IntervalSelectionResult


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of all streaming events.

    Attributes
    ----------
    circuit:
        Name of the circuit under estimation.
    method:
        Estimator method string (``"dipe"``, ``"consecutive-mc"``, ...).
    samples_drawn:
        Power samples collected so far (monotonic across a stream).
    cycles_simulated:
        Total simulated clock cycles so far.
    """

    kind: ClassVar[str] = "progress"

    circuit: str
    method: str
    samples_drawn: int
    cycles_simulated: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (shallow; rich payloads summarised)."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if not f.repr:
                continue
            value = getattr(self, f.name)
            if hasattr(value, "to_dict"):
                value = value.to_dict()
            data[f.name] = value
        return data


@dataclass(frozen=True)
class RunStarted(ProgressEvent):
    """First event of a fresh (non-resumed) run."""

    kind: ClassVar[str] = "run-started"


@dataclass(frozen=True)
class IntervalTrialEvent(ProgressEvent):
    """One trial of the sequential interval-selection / z-profile sweep."""

    kind: ClassVar[str] = "interval-trial"

    interval: int = 0
    z_statistic: float = 0.0
    accepted: bool = False


@dataclass(frozen=True)
class IntervalSelected(ProgressEvent):
    """The independence interval has been fixed; random sampling starts next.

    ``selection`` carries the full interval-selection diagnostics
    (:class:`~repro.core.results.IntervalSelectionResult`).
    """

    kind: ClassVar[str] = "interval-selected"

    interval: int = 0
    converged: bool = True
    num_trials: int = 0
    selection: IntervalSelectionResult | None = field(default=None, repr=False)


@dataclass(frozen=True)
class ChainsResized(ProgressEvent):
    """Adaptive chain scaling changed the lock-step ensemble width.

    Emitted between sample batches when ``EstimationConfig(adaptive_chains=True)``
    and the stopping criterion's running accuracy asked for a decisively
    different chain count; ``relative_half_width`` is the accuracy signal the
    decision was based on.
    """

    kind: ClassVar[str] = "chains-resized"

    previous_chains: int = 0
    num_chains: int = 0
    relative_half_width: float = float("inf")


@dataclass(frozen=True)
class ShardProgress:
    """Per-worker share of a sharded sampling step (not itself a stream event).

    Attached to :class:`SampleProgress` when the estimation run shards its
    chain ensemble across worker processes
    (``EstimationConfig(num_workers > 1)``).

    Attributes
    ----------
    worker:
        Worker index within the shard pool.
    num_chains:
        Chains currently simulated by this worker (0 for idle workers when
        the ensemble is narrower than the pool).
    lane_offset:
        First full-ensemble chain index owned by this worker; the worker's
        samples occupy positions ``lane_offset .. lane_offset + num_chains``
        of every merged per-sweep batch.
    """

    worker: int
    num_chains: int
    lane_offset: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "num_chains": self.num_chains,
            "lane_offset": self.lane_offset,
        }


@dataclass(frozen=True)
class SampleProgress(ProgressEvent):
    """Stopping-criterion verdict after a batch of new samples.

    ``running_mean_w`` and the bounds are in watts (converted through the
    configuration's power model, like the final estimate).  ``num_workers``
    and ``shards`` describe how the ensemble is sharded across worker
    processes (``num_workers == 1`` and an empty ``shards`` for in-process
    sampling).
    """

    kind: ClassVar[str] = "sample-progress"

    running_mean_w: float = 0.0
    lower_bound_w: float = 0.0
    upper_bound_w: float = 0.0
    relative_half_width: float = float("inf")
    accuracy_met: bool = False
    num_workers: int = 1
    shards: tuple[ShardProgress, ...] = field(default=(), repr=False)


@dataclass(frozen=True)
class EstimateCompleted(ProgressEvent):
    """Final event of a run; ``estimate`` is exactly the ``estimate()`` return value."""

    kind: ClassVar[str] = "estimate-completed"

    estimate: Any = None
