"""Typed progress events streamed by :meth:`Estimator.run`.

Every estimator exposes ``run()`` as a generator of :class:`ProgressEvent`
subclasses, so callers can observe a run incrementally (progress bars,
structured logs, early abort via ``generator.close()``) instead of blocking
inside a monolithic ``estimate()`` call.  The event stream of a well-behaved
estimator satisfies two invariants the test suite pins down:

* ``samples_drawn`` is monotonically non-decreasing across the stream, and
* the final event is an :class:`EstimateCompleted` whose ``estimate`` equals
  the value returned by ``estimate()``.

Events carry plain data and serialize to JSON-compatible dicts via
:meth:`ProgressEvent.to_dict` (used by the CLI's ``--progress`` stream and
the estimation service's SSE wire format); :func:`event_from_dict` is the
inverse, re-materialising the typed event from its wire dict.  Every
``ProgressEvent`` subclass registers its ``kind`` string automatically, so
service-level lifecycle events (:mod:`repro.service.events`) join the same
wire format just by subclassing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, ClassVar

if TYPE_CHECKING:  # import would be circular at runtime (repro.core imports this)
    from repro.core.results import IntervalSelectionResult

#: Wire-format dispatch: ``kind`` string -> event class.  Subclasses of
#: :class:`ProgressEvent` register themselves on definition.
_EVENT_KINDS: dict[str, type] = {}


def event_kinds() -> tuple[str, ...]:
    """Names of all registered event kinds (sorted)."""
    return tuple(sorted(_EVENT_KINDS))


def event_from_dict(data: dict[str, Any]) -> "ProgressEvent":
    """Re-materialise a typed event from its :meth:`ProgressEvent.to_dict` form.

    The inverse of the wire serialization, used by streaming clients (e.g.
    ``repro watch``) to get typed events back from JSON.  Rich payload fields
    that ``to_dict`` summarises or omits stay in their wire form: an
    :class:`EstimateCompleted` parsed from a dict carries the estimate as a
    plain dict, and ``repr=False`` diagnostics (``shards``, ``selection``)
    take their defaults.  Unknown kinds raise ``ValueError`` so protocol
    mismatches surface instead of silently degrading.
    """
    if not isinstance(data, dict):
        raise ValueError(f"event must be a dict, got {type(data).__name__}")
    kind = data.get("kind")
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}; registered: {event_kinds()}")
    names = {f.name for f in fields(cls) if f.init}
    return cls(**{name: value for name, value in data.items() if name in names})


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of all streaming events.

    Attributes
    ----------
    circuit:
        Name of the circuit under estimation.
    method:
        Estimator method string (``"dipe"``, ``"consecutive-mc"``, ...).
    samples_drawn:
        Power samples collected so far (monotonic across a stream).
    cycles_simulated:
        Total simulated clock cycles so far.
    """

    kind: ClassVar[str] = "progress"

    circuit: str
    method: str
    samples_drawn: int
    cycles_simulated: int

    def __init_subclass__(cls, **kwargs: Any) -> None:
        """Register the subclass in the wire-format kind dispatch."""
        super().__init_subclass__(**kwargs)
        kind = cls.__dict__.get("kind")
        if kind is None:
            return  # inherits the parent's kind; parent stays the parser
        existing = _EVENT_KINDS.get(kind)
        if existing is not None and existing.__qualname__ != cls.__qualname__:
            raise ValueError(f"event kind {kind!r} is already registered to {existing!r}")
        _EVENT_KINDS[kind] = cls

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (shallow; rich payloads summarised)."""
        data: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if not f.repr:
                continue
            value = getattr(self, f.name)
            if hasattr(value, "to_dict"):
                value = value.to_dict()
            data[f.name] = value
        return data


_EVENT_KINDS[ProgressEvent.kind] = ProgressEvent


@dataclass(frozen=True)
class RunStarted(ProgressEvent):
    """First event of a fresh (non-resumed) run."""

    kind: ClassVar[str] = "run-started"


@dataclass(frozen=True)
class IntervalTrialEvent(ProgressEvent):
    """One trial of the sequential interval-selection / z-profile sweep."""

    kind: ClassVar[str] = "interval-trial"

    interval: int = 0
    z_statistic: float = 0.0
    accepted: bool = False


@dataclass(frozen=True)
class IntervalSelected(ProgressEvent):
    """The independence interval has been fixed; random sampling starts next.

    ``selection`` carries the full interval-selection diagnostics
    (:class:`~repro.core.results.IntervalSelectionResult`).
    """

    kind: ClassVar[str] = "interval-selected"

    interval: int = 0
    converged: bool = True
    num_trials: int = 0
    selection: IntervalSelectionResult | None = field(default=None, repr=False)


@dataclass(frozen=True)
class ChainsResized(ProgressEvent):
    """Adaptive chain scaling changed the lock-step ensemble width.

    Emitted between sample batches when ``EstimationConfig(adaptive_chains=True)``
    and the stopping criterion's running accuracy asked for a decisively
    different chain count; ``relative_half_width`` is the accuracy signal the
    decision was based on.
    """

    kind: ClassVar[str] = "chains-resized"

    previous_chains: int = 0
    num_chains: int = 0
    relative_half_width: float = float("inf")


@dataclass(frozen=True)
class ShardProgress:
    """Per-worker share of a sharded sampling step (not itself a stream event).

    Attached to :class:`SampleProgress` when the estimation run shards its
    chain ensemble across worker processes
    (``EstimationConfig(num_workers > 1)``).

    Attributes
    ----------
    worker:
        Worker index within the shard pool.
    num_chains:
        Chains currently simulated by this worker (0 for idle workers when
        the ensemble is narrower than the pool).
    lane_offset:
        First full-ensemble chain index owned by this worker; the worker's
        samples occupy positions ``lane_offset .. lane_offset + num_chains``
        of every merged per-sweep batch.
    """

    worker: int
    num_chains: int
    lane_offset: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "num_chains": self.num_chains,
            "lane_offset": self.lane_offset,
        }


@dataclass(frozen=True)
class WorkerLost(ProgressEvent):
    """A shard worker died, hung past its deadline, or garbled its replies.

    Emitted by estimators running on a :class:`ShardedPowerSampler` whose
    supervision layer lost a worker; always followed (in the same drain) by
    a :class:`WorkerRecovered` once the seat is restored.  Recovery replays
    the shard bit-identically, so this event signals degraded health and
    latency — never a change in results.
    """

    kind: ClassVar[str] = "worker-lost"

    worker: int = 0
    pid: int | None = None
    exitcode: int | None = None
    reason: str = "died"


@dataclass(frozen=True)
class WorkerRecovered(ProgressEvent):
    """A lost shard worker was respawned and bit-identically restored.

    ``respawns`` counts the consecutive recovery attempts of the current
    round (1 for a first respawn), ``replayed_commands`` the messages
    replayed from the supervisor's log, and ``recovery_seconds`` the
    wall-clock cost.  ``degraded`` marks a seat that exhausted its restart
    budget and now runs as a clean in-process replica until the pool
    re-partitions at the next round boundary.
    """

    kind: ClassVar[str] = "worker-recovered"

    worker: int = 0
    pid: int | None = None
    respawns: int = 1
    replayed_commands: int = 0
    recovery_seconds: float = 0.0
    degraded: bool = False


@dataclass(frozen=True)
class WorkerJoined(ProgressEvent):
    """A remote shard worker joined the pool's coordinator.

    Emitted when a ``repro shard-worker`` process authenticates against the
    run's :class:`~repro.core.transport.ShardCoordinator`.  ``worker`` is
    the worker's self-reported name (not a pool seat index — the member may
    still be pending), ``epoch`` its coordinator-assigned membership epoch
    (strictly monotone; also the fencing token), and ``host`` the address
    it connected from.  Pending members are adopted as pool seats at the
    next round boundary; joining never changes results.
    """

    kind: ClassVar[str] = "worker-joined"

    worker: str = ""
    pid: int | None = None
    epoch: int = 0
    host: str = ""


@dataclass(frozen=True)
class WorkerLeft(ProgressEvent):
    """A shard pool member left: disconnected, timed out, or was folded off.

    ``reason`` is ``"disconnected"`` or ``"timed-out"`` for pending remote
    members the coordinator pruned, and ``"exhausted-restarts"`` for a pool
    seat that ran out of restart budget and was re-partitioned away at a
    round boundary (``epoch`` then carries the seat's last incarnation
    number).  Leaving never changes results — the remaining pool re-covers
    the full ensemble bit-identically.
    """

    kind: ClassVar[str] = "worker-left"

    worker: str = ""
    pid: int | None = None
    epoch: int = 0
    reason: str = "disconnected"


@dataclass(frozen=True)
class SampleProgress(ProgressEvent):
    """Stopping-criterion verdict after a batch of new samples.

    ``running_mean_w`` and the bounds are in watts (converted through the
    configuration's power model, like the final estimate).  ``num_workers``
    and ``shards`` describe how the ensemble is sharded across worker
    processes (``num_workers == 1`` and an empty ``shards`` for in-process
    sampling).  ``effective_sample_size`` is the independent-sample
    equivalent of the collected sample's precision, reported when a
    variance-reduction technique (:mod:`repro.variance`) couples the draws
    (``None`` for plain i.i.d. sampling).
    """

    kind: ClassVar[str] = "sample-progress"

    running_mean_w: float = 0.0
    lower_bound_w: float = 0.0
    upper_bound_w: float = 0.0
    relative_half_width: float = float("inf")
    accuracy_met: bool = False
    num_workers: int = 1
    effective_sample_size: float | None = None
    shards: tuple[ShardProgress, ...] = field(default=(), repr=False)


@dataclass(frozen=True)
class EstimateCompleted(ProgressEvent):
    """Final event of a run; ``estimate`` is exactly the ``estimate()`` return value."""

    kind: ClassVar[str] = "estimate-completed"

    estimate: Any = None
