"""Checkpoint/resume of a half-finished estimation run.

A :class:`RunCheckpoint` freezes everything a streaming estimator needs to
continue exactly where it stopped: the samples collected so far, the selected
independence interval (with its diagnostics), and the full state of the
sampler — RNG bit-generator state, simulator lane values and stimulus state —
so a resumed run consumes the *same* random stream the uninterrupted run
would have and therefore produces the identical estimate.

Checkpoints are in-memory objects (picklable, since they contain numpy arrays
and big integers); they are not JSON-serializable.  Typical use::

    estimator = DipeEstimator(circuit, config=config, rng=7)
    stream = estimator.run()
    for event in stream:
        if isinstance(event, SampleProgress) and event.samples_drawn >= 128:
            checkpoint = estimator.make_checkpoint()
            stream.close()                      # abort the first run
            break

    resumed = DipeEstimator(circuit, config=config, rng=7)
    estimate = resumed.estimate_from(checkpoint)   # identical to uninterrupted
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import would be circular at runtime (repro.core imports this)
    from repro.core.results import IntervalSelectionResult


@dataclass(frozen=True)
class RunCheckpoint:
    """Frozen mid-run state of a streaming estimator.

    Attributes
    ----------
    method:
        Method string of the estimator that produced the checkpoint; resuming
        with a different estimator kind is rejected.
    circuit_name:
        Name of the circuit under estimation (sanity-checked on resume).
    samples:
        Switched-capacitance samples collected so far (farads).
    interval_selection:
        Interval-selection diagnostics (``None`` for estimators that skip the
        interval-selection phase, e.g. the baselines).
    sampler_state:
        Opaque sampler snapshot from ``sampler.get_state()``: RNG state,
        simulator lane values, stimulus state and cycle counters.
    elapsed_seconds:
        Wall-clock seconds consumed before the checkpoint (added to the
        resumed run's elapsed time).
    """

    method: str
    circuit_name: str
    samples: tuple[float, ...] = field(repr=False)
    interval_selection: IntervalSelectionResult | None = field(repr=False)
    sampler_state: dict[str, Any] = field(repr=False)
    elapsed_seconds: float = 0.0

    @property
    def samples_drawn(self) -> int:
        """Number of samples captured in the checkpoint."""
        return len(self.samples)
