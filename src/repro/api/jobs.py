"""Serializable job specifications — the request objects of the estimation API.

A :class:`JobSpec` captures *everything* a power-estimation run depends on —
circuit reference, stimulus specification, estimation configuration,
estimator kind and seed — as plain JSON-serializable data with bit-exact
``to_dict``/``from_dict`` round-tripping.  That makes runs shippable: specs
can be written to a jobs file, fanned out across worker processes by the
:class:`~repro.api.batch.BatchRunner`, or re-executed later to reproduce a
result exactly (all randomness flows from the spec's seed).

:func:`run_job` is the single execution entry point: it resolves the circuit,
builds the stimulus and estimator through the plugin registries, and drives
the estimator's streaming ``run()`` protocol to completion, optionally
forwarding every :class:`~repro.api.events.ProgressEvent` to a callback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api.events import ProgressEvent
from repro.api.registry import get_estimator, get_stimulus
from repro.core.config import EstimationConfig
from repro.core.results import PowerEstimate
from repro.simulation.compiled import CompiledCircuit
from repro.stimulus.base import Stimulus
from repro.utils.rng import child_seeds

ProgressCallback = Callable[[ProgressEvent], None]

#: Result payload types a :class:`JobResult` can carry, keyed by manifest tag.
_RESULT_TYPES: dict[str, type] = {}


def register_result_type(tag: str, cls: type) -> type:
    """Register a result payload class (must provide ``to_dict``/``from_dict``)."""
    existing = _RESULT_TYPES.get(tag)
    if existing is not None and existing is not cls:
        raise ValueError(f"result type {tag!r} is already registered to {existing!r}")
    _RESULT_TYPES[tag] = cls
    return cls


def _result_type(tag: str) -> type:
    if tag not in _RESULT_TYPES:
        # Built-in estimators register their result types on import; loading
        # the estimator registry's built-ins brings them in.
        from repro.api.registry import ESTIMATOR_REGISTRY

        ESTIMATOR_REGISTRY._bootstrap()
    if tag not in _RESULT_TYPES:
        raise KeyError(f"unknown result type {tag!r}; registered: {sorted(_RESULT_TYPES)}")
    return _RESULT_TYPES[tag]


def _result_tag(payload: Any) -> str:
    if not _RESULT_TYPES:
        from repro.api.registry import ESTIMATOR_REGISTRY

        ESTIMATOR_REGISTRY._bootstrap()
    for tag, cls in _RESULT_TYPES.items():
        if isinstance(payload, cls):
            return tag
    raise TypeError(f"no registered result type for {type(payload)!r}")


register_result_type("power-estimate", PowerEstimate)


def resolve_circuit(ref: str) -> CompiledCircuit:
    """Resolve a circuit reference: a registered benchmark name or a ``.bench`` path."""
    # Imported here, not at module level: the circuit registry pulls in the
    # synthetic generators, which this module should not force on importers
    # that never execute a job.
    from repro.circuits.iscas89 import build_circuit, list_circuits

    if ref in list_circuits():
        return build_circuit(ref)
    if ref.endswith(".bench"):
        from repro.netlist.bench import parse_bench_file

        return CompiledCircuit.from_netlist(parse_bench_file(ref))
    raise ValueError(
        f"unknown circuit {ref!r}: pass a registered benchmark name "
        f"({', '.join(list_circuits())}) or a path to a .bench file"
    )


@dataclass(frozen=True)
class StimulusSpec:
    """Serializable description of a primary-input pattern generator.

    ``kind`` is a name from the stimulus registry (``"bernoulli"``,
    ``"lag-one-markov"``, ``"spatially-correlated"``, ``"sequence"``, or any
    name registered by the caller); ``params`` are the factory's keyword
    arguments.  The number of inputs comes from the circuit at build time, so
    the same spec applies to any circuit.
    """

    kind: str = "bernoulli"
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind.strip():
            raise ValueError("stimulus kind must be a non-empty string")
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def bernoulli(cls, probability: float = 0.5) -> "StimulusSpec":
        """The paper's experimental setting: independent inputs, P(1) = *probability*."""
        return cls(kind="bernoulli", params={"probabilities": probability})

    def build(self, num_inputs: int) -> Stimulus:
        """Instantiate the stimulus for a circuit with *num_inputs* primary inputs."""
        factory = get_stimulus(self.kind)
        return factory(num_inputs, **self.params)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": json.loads(json.dumps(self.params))}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StimulusSpec":
        return cls(kind=data.get("kind", "bernoulli"), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class JobSpec:
    """A fully serializable power-estimation request.

    Attributes
    ----------
    circuit:
        Registered benchmark name (``"s298"``) or path to a ``.bench`` file.
    estimator:
        Estimator kind from the registry (``"dipe"``, ``"consecutive-mc"``,
        ``"fixed-warmup"``, ``"figure3-profile"``, ...).
    stimulus:
        Input-pattern specification; defaults to the paper's independent
        inputs with probability 0.5.
    config:
        Estimation configuration (paper defaults when omitted).
    seed:
        Integer seed; every random choice of the run derives from it, so a
        spec re-executed anywhere reproduces its result bit-for-bit.
    params:
        Extra keyword arguments for the estimator factory (e.g.
        ``warmup_period`` for ``"fixed-warmup"``).
    label:
        Optional human-readable job name used in manifests and logs.
    """

    circuit: str
    estimator: str = "dipe"
    stimulus: StimulusSpec = field(default_factory=StimulusSpec)
    config: EstimationConfig = field(default_factory=EstimationConfig)
    seed: int = 2025
    params: dict[str, Any] = field(default_factory=dict)
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, str) or not self.circuit.strip():
            raise ValueError("circuit must be a non-empty string")
        if not isinstance(self.estimator, str) or not self.estimator.strip():
            raise ValueError("estimator must be a non-empty string")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an integer (JobSpecs are serializable)")
        object.__setattr__(self, "params", dict(self.params))

    @property
    def name(self) -> str:
        """Label if set, otherwise a deterministic ``estimator:circuit@seed`` tag."""
        return self.label or f"{self.estimator}:{self.circuit}@{self.seed}"

    # ------------------------------------------------------------- execution
    def build_estimator(self):
        """Resolve the circuit and instantiate the configured estimator."""
        circuit = resolve_circuit(self.circuit)
        stimulus = self.stimulus.build(circuit.num_inputs)
        factory = get_estimator(self.estimator)
        return factory(circuit, stimulus=stimulus, config=self.config, rng=self.seed, **self.params)

    def run(self, progress: ProgressCallback | None = None) -> "JobResult":
        """Execute the job (see :func:`run_job`)."""
        return run_job(self, progress=progress)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "circuit": self.circuit,
            "estimator": self.estimator,
            "stimulus": self.stimulus.to_dict(),
            "config": self.config.to_dict(),
            "seed": self.seed,
            "params": json.loads(json.dumps(self.params)),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        config = data.get("config")
        stimulus = data.get("stimulus")
        return cls(
            circuit=data["circuit"],
            estimator=data.get("estimator", "dipe"),
            stimulus=StimulusSpec.from_dict(stimulus) if stimulus is not None else StimulusSpec(),
            config=EstimationConfig.from_dict(config) if config is not None else EstimationConfig(),
            seed=int(data.get("seed", 2025)),
            params=dict(data.get("params", {})),
            label=data.get("label"),
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class JobResult:
    """Outcome of one executed :class:`JobSpec`.

    ``result`` is the estimator's payload — a
    :class:`~repro.core.results.PowerEstimate` for the mean estimators, a
    :class:`~repro.experiments.figure3.Figure3Result` for the z-profile sweep
    — or ``None`` when the job failed (``status == "error"``).
    """

    spec: JobSpec
    result: Any = None
    status: str = "ok"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def estimate(self) -> PowerEstimate:
        """The payload as a :class:`PowerEstimate` (raises if the job failed)."""
        if not self.ok:
            raise RuntimeError(f"job {self.spec.name!r} failed: {self.error}")
        if not isinstance(self.result, PowerEstimate):
            raise TypeError(f"job {self.spec.name!r} produced {type(self.result).__name__}")
        return self.result

    def to_dict(self) -> dict[str, Any]:
        if self.result is None:
            payload = None
        else:
            payload = {"type": _result_tag(self.result), "data": self.result.to_dict()}
        return {
            "name": self.spec.name,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "error": self.error,
            "result": payload,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobResult":
        payload = data.get("result")
        result = None
        if payload is not None:
            result = _result_type(payload["type"]).from_dict(payload["data"])
        return cls(
            spec=JobSpec.from_dict(data["spec"]),
            result=result,
            status=data.get("status", "ok"),
            error=data.get("error"),
        )


def run_job(spec: JobSpec, progress: ProgressCallback | None = None) -> JobResult:
    """Execute *spec* and return its :class:`JobResult`.

    The estimator is driven through its streaming ``run()`` protocol; when
    *progress* is given it receives every :class:`ProgressEvent` as it is
    produced.  Exceptions propagate — use :func:`run_job_safely` (what the
    batch runner does) to capture them as error results instead.
    """
    estimator = spec.build_estimator()
    result = estimator.estimate(progress=progress)
    return JobResult(spec=spec, result=result, status="ok")


def run_job_safely(spec: JobSpec) -> JobResult:
    """Like :func:`run_job` but capture failures as ``status="error"`` results."""
    try:
        return run_job(spec)
    except Exception as exc:  # noqa: BLE001 — batch jobs must not kill the runner
        return JobResult(
            spec=spec, result=None, status="error", error=f"{type(exc).__name__}: {exc}"
        )


def derive_job_seeds(master_seed: int, count: int) -> list[int]:
    """Derive *count* independent per-job seeds deterministically from one master seed."""
    return child_seeds(master_seed, count)
