"""Bit-parallel, cycle-based zero-delay simulator.

Every net value is a Python integer whose bit *k* carries the logic value of
the net in simulation lane *k*.  All lanes are advanced simultaneously by one
pass over the topologically ordered gates, so the simulator doubles as:

* a fast single-chain next-state engine (``width=1``) used during the
  independence interval, where no power needs to be measured, and
* a many-lane ensemble simulator used by the long-run reference power
  estimator, where hundreds of independent chains share one gate sweep.

Power accounting follows the zero-delay convention: the energy of clock cycle
*t* is proportional to the capacitance-weighted number of nets whose settled
value differs between cycle *t-1* and cycle *t* (Eq. (1) of the paper with
``n_i`` restricted to functional transitions; the event-driven simulator adds
glitch transitions).
"""

from __future__ import annotations

from typing import Sequence

from repro.simulation.compiled import CompiledCircuit
from repro.utils.rng import RandomSource, spawn_rng


class ZeroDelaySimulator:
    """Cycle-based zero-delay simulator over *width* parallel lanes.

    Parameters
    ----------
    circuit:
        Compiled circuit to simulate.
    width:
        Number of independent simulation lanes packed into each net value.
    node_capacitance:
        Optional per-net capacitance (farads) used to weight transitions when
        measuring switched capacitance.  When omitted, every net weighs 1.0
        (the simulator then reports toggle counts instead of farads).
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        width: int = 1,
        node_capacitance: Sequence[float] | None = None,
    ):
        if width < 1:
            raise ValueError("width must be at least 1")
        self.circuit = circuit
        self.width = width
        self.mask = (1 << width) - 1
        if node_capacitance is None:
            self.node_capacitance = [1.0] * circuit.num_nets
        else:
            if len(node_capacitance) != circuit.num_nets:
                raise ValueError(
                    "node_capacitance must have one entry per net "
                    f"({circuit.num_nets}), got {len(node_capacitance)}"
                )
            self.node_capacitance = list(node_capacitance)
        self.values: list[int] = [0] * circuit.num_nets
        self._settled = False
        self.cycles_simulated = 0
        self.reset()

    # ----------------------------------------------------------------- state
    def reset(self, latch_state: int | Sequence[int] | None = None) -> None:
        """Reset all nets to 0 and load *latch_state* into the flip-flops.

        ``latch_state`` may be ``None`` (use each latch's declared init
        value), an integer whose bit *i* is broadcast to every lane of latch
        *i*, or a sequence of per-latch lane-packed integers.
        """
        self.values = [0] * self.circuit.num_nets
        if latch_state is None:
            packed = [
                self.mask if init else 0 for init in self.circuit.latch_init
            ]
        elif isinstance(latch_state, int):
            packed = [
                self.mask if (latch_state >> i) & 1 else 0
                for i in range(self.circuit.num_latches)
            ]
        else:
            if len(latch_state) != self.circuit.num_latches:
                raise ValueError(
                    f"latch_state must have {self.circuit.num_latches} entries"
                )
            packed = [value & self.mask for value in latch_state]
        for q_id, value in zip(self.circuit.latch_q, packed):
            self.values[q_id] = value
        self._settled = False
        self.cycles_simulated = 0

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load an independent uniform-random state into every latch of every lane."""
        generator = spawn_rng(rng)
        for q_id in self.circuit.latch_q:
            self.values[q_id] = self._random_word(generator)
        self._settled = False

    def _random_word(self, generator) -> int:
        bits = generator.integers(0, 2, size=self.width, dtype="uint8")
        word = 0
        for bit in bits[::-1]:
            word = (word << 1) | int(bit)
        return word

    def latch_state(self) -> list[int]:
        """Return the current lane-packed value of every latch output."""
        return [self.values[q_id] for q_id in self.circuit.latch_q]

    def latch_state_scalar(self, lane: int = 0) -> int:
        """Return the state of one lane as an integer (bit *i* = latch *i*)."""
        state = 0
        for i, q_id in enumerate(self.circuit.latch_q):
            state |= ((self.values[q_id] >> lane) & 1) << i
        return state

    def net_value(self, name: str, lane: int = 0) -> int:
        """Return the current value (0/1) of net *name* in *lane*."""
        return (self.values[self.circuit.net_id(name)] >> lane) & 1

    # ------------------------------------------------------------- evaluation
    def apply_inputs(self, pattern: Sequence[int]) -> None:
        """Drive the primary inputs with lane-packed *pattern* values."""
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            self.values[pi_id] = value & self.mask

    def evaluate(self) -> None:
        """Propagate the combinational logic (one pass in topological order)."""
        values = self.values
        mask = self.mask
        for gate in self.circuit.gates:
            gate_type = gate.gate_type
            name = gate_type.value
            inputs = gate.inputs
            if name == "AND" or name == "NAND":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result &= values[src]
                if name == "NAND":
                    result ^= mask
            elif name == "OR" or name == "NOR":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result |= values[src]
                if name == "NOR":
                    result ^= mask
            elif name == "XOR" or name == "XNOR":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result ^= values[src]
                if name == "XNOR":
                    result ^= mask
            elif name == "NOT":
                result = values[inputs[0]] ^ mask
            elif name == "BUFF":
                result = values[inputs[0]]
            elif name == "CONST0":
                result = 0
            else:  # CONST1
                result = mask
            values[gate.output] = result
        self._settled = True

    def clock(self) -> None:
        """Clock edge: copy each latch's settled D value onto its Q output."""
        values = self.values
        new_q = [values[d_id] for d_id in self.circuit.latch_d]
        for q_id, value in zip(self.circuit.latch_q, new_q):
            values[q_id] = value
        self._settled = False

    def settle(self, pattern: Sequence[int]) -> None:
        """Apply *pattern* and settle the logic without counting transitions.

        Used once after :meth:`reset`/:meth:`randomize_state` so the very
        first measured cycle starts from a consistent settled network.
        """
        self.apply_inputs(pattern)
        self.evaluate()

    def step(self, pattern: Sequence[int]) -> None:
        """Advance one clock cycle without measuring power.

        Sequence: clock edge (capture previous D values), drive the new input
        *pattern*, settle the combinational logic.
        """
        if not self._settled:
            self.evaluate()
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self.cycles_simulated += 1

    def step_and_measure(self, pattern: Sequence[int]) -> float:
        """Advance one clock cycle and return the lane-summed switched capacitance.

        With ``width == 1`` the return value is the switched capacitance of
        that single cycle; with more lanes it is the sum over all lanes (used
        by the ensemble reference estimator, which only needs the aggregate).
        """
        if not self._settled:
            self.evaluate()
        previous = list(self.values)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self.cycles_simulated += 1

        switched = 0.0
        values = self.values
        capacitance = self.node_capacitance
        for net_id in range(self.circuit.num_nets):
            diff = previous[net_id] ^ values[net_id]
            if diff:
                switched += capacitance[net_id] * diff.bit_count()
        return switched

    def step_and_count(self, pattern: Sequence[int]) -> list[int]:
        """Advance one cycle and return the per-net toggle count (summed over lanes)."""
        if not self._settled:
            self.evaluate()
        previous = list(self.values)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self.cycles_simulated += 1
        return [
            (previous[net_id] ^ self.values[net_id]).bit_count()
            for net_id in range(self.circuit.num_nets)
        ]

    # --------------------------------------------------------------- sequences
    def run(self, patterns: Sequence[Sequence[int]], measure: bool = True) -> list[float]:
        """Run one cycle per pattern; return the switched capacitance per cycle.

        With ``measure=False`` an empty list is returned and only the state is
        advanced (the zero-delay phase of the two-phase sampling scheme).
        """
        energies: list[float] = []
        for pattern in patterns:
            if measure:
                energies.append(self.step_and_measure(pattern))
            else:
                self.step(pattern)
        return energies
