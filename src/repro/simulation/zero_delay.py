"""Bit-parallel, cycle-based zero-delay simulator with switchable backends.

Every net value carries the logic value of the net in ``width`` independent
simulation lanes.  All lanes are advanced simultaneously by one pass over the
topologically ordered gates, so the simulator doubles as:

* a fast single-chain next-state engine (``width=1``) used during the
  independence interval, where no power needs to be measured, and
* a many-lane ensemble simulator used by the long-run reference power
  estimator and the multi-chain Monte Carlo sampler, where hundreds to
  thousands of independent chains share one gate sweep.

Two interchangeable backends implement the lane storage:

* ``"bigint"`` — every net is a Python integer whose bit *k* is lane *k*.
  Lowest constant overhead, ideal for narrow ensembles (especially the
  single-lane state engine of the two-phase sampler).
* ``"numpy"`` — every net is a ``(num_words,)`` uint64 array (64 lanes per
  word); see :class:`~repro.simulation.vectorized.VectorizedZeroDelaySimulator`.
  The gate sweep runs as grouped numpy bitwise operations (optionally a
  compiled kernel), which wins decisively for wide ensembles.

``backend="auto"`` (the default) keeps the historical big-int behaviour for
narrow simulators and transparently switches to the vectorized engine above
a width threshold, so existing callers pick up the fast path without code
changes.

Power accounting follows the zero-delay convention: the energy of clock cycle
*t* is proportional to the capacitance-weighted number of nets whose settled
value differs between cycle *t-1* and cycle *t* (Eq. (1) of the paper with
``n_i`` restricted to functional transitions; the event-driven simulator adds
glitch transitions).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simulation.backends import resolve_backend_choice
from repro.utils.rng import RandomSource, spawn_rng

#: Backends accepted by :class:`ZeroDelaySimulator`.  ``"compiled"`` is the
#: numpy engine driving the per-program codegen kernel
#: (:mod:`repro.simulation.codegen`); it degrades to the generic kernel /
#: grouped numpy when no compiler is available, so its results are always
#: bit-identical to ``"numpy"``.
BACKENDS = ("auto", "bigint", "numpy", "compiled")

#: ``backend="auto"`` switches to the numpy engine at this width when the
#: compiled sweep kernel is available ...
AUTO_NUMPY_WIDTH_NATIVE = 64

#: ... and at this width when only the grouped-numpy sweep is available
#: (pure-numpy sweeps need wider ensembles to amortise dispatch overhead).
AUTO_NUMPY_WIDTH_PORTABLE = 256


def _auto_numpy_threshold() -> int:
    """Auto-switch width; probed lazily so explicit backends never touch _native."""
    from repro.simulation._native import native_kernel_available

    return AUTO_NUMPY_WIDTH_NATIVE if native_kernel_available() else AUTO_NUMPY_WIDTH_PORTABLE


def resolve_backend(backend: str, width: int) -> str:
    """Resolve a user-facing backend choice to ``"bigint"`` or ``"numpy"``."""
    return resolve_backend_choice(
        backend,
        width,
        options=BACKENDS,
        narrow="bigint",
        wide="numpy",
        wide_threshold=_auto_numpy_threshold,
    )


class ZeroDelaySimulator:
    """Cycle-based zero-delay simulator over *width* parallel lanes.

    Parameters
    ----------
    circuit:
        Compiled circuit to simulate.
    width:
        Number of independent simulation lanes packed into each net value.
    node_capacitance:
        Optional per-net capacitance (farads) used to weight transitions when
        measuring switched capacitance.  When omitted, every net weighs 1.0
        (the simulator then reports toggle counts instead of farads).
    backend:
        ``"bigint"``, ``"numpy"``, ``"compiled"`` or ``"auto"`` (pick by
        width; see module docstring).  All backends are reproducible from the
        same seed and produce identical net values and transition counts;
        ``"compiled"`` only differs from ``"numpy"`` in how the gate sweep
        executes (per-circuit generated C when available).
    """

    def __init__(
        self,
        circuit,
        width: int = 1,
        node_capacitance: Sequence[float] | None = None,
        backend: str = "auto",
    ):
        # Imported lazily: the program module imports from repro.simulation.
        from repro.circuits.program import CircuitProgram

        if width < 1:
            raise ValueError("width must be at least 1")
        self.program = CircuitProgram.of(circuit)
        circuit = self.program.circuit
        self.backend = resolve_backend(backend, width)
        self._vec = None
        if self.backend in ("numpy", "compiled"):
            from repro.simulation.vectorized import VectorizedZeroDelaySimulator

            self._vec = VectorizedZeroDelaySimulator(
                self.program,
                width=width,
                node_capacitance=node_capacitance,
                sweep="codegen" if self.backend == "compiled" else "auto",
            )
            self.circuit = circuit
            self.width = width
            self.mask = self._vec.mask
            self.node_capacitance = self._vec.node_capacitance
            return
        self.circuit = circuit
        self.width = width
        self.mask = (1 << width) - 1
        if node_capacitance is None:
            self.node_capacitance = [1.0] * circuit.num_nets
        else:
            if len(node_capacitance) != circuit.num_nets:
                raise ValueError(
                    "node_capacitance must have one entry per net "
                    f"({circuit.num_nets}), got {len(node_capacitance)}"
                )
            # Plain Python floats: the big-int loop accumulates per-net
            # products in scalar arithmetic, and the shared program
            # capacitance vectors arrive as numpy float64.
            self.node_capacitance = [float(value) for value in node_capacitance]
        self._values: list[int] = [0] * circuit.num_nets
        self._settled = False
        self._cycles = 0
        self.reset()

    # -------------------------------------------------- backend-shared state
    @property
    def values(self) -> list[int]:
        """Lane-packed value of every net (bit *k* of entry *i* = net *i*, lane *k*)."""
        if self._vec is not None:
            return self._vec.values
        return self._values

    @values.setter
    def values(self, new_values: list[int]) -> None:
        if self._vec is not None:
            raise AttributeError("values is read-only with the numpy backend")
        self._values = new_values

    def words_view(self) -> np.ndarray | None:
        """The numpy backend's ``(num_nets, num_words)`` lane-word matrix.

        Returns ``None`` on the big-int backend.  The view aliases live
        simulator storage — callers must treat it as read-only; it exists so
        the vectorized event-driven engine can adopt the settled network
        without a lane-unpacking round-trip.
        """
        if self._vec is None:
            return None
        return self._vec.words

    @property
    def cycles_simulated(self) -> int:
        """Number of clock cycles advanced since the last reset."""
        if self._vec is not None:
            return self._vec.cycles_simulated
        return self._cycles

    @cycles_simulated.setter
    def cycles_simulated(self, count: int) -> None:
        if self._vec is not None:
            self._vec.cycles_simulated = count
        else:
            self._cycles = count

    # ----------------------------------------------------------------- state
    def get_state(self) -> dict:
        """Snapshot every lane's net values (checkpoint support).

        The snapshot is an opaque dict for :meth:`set_state`; it owns its
        storage, so continuing the simulation does not mutate it.
        """
        if self._vec is not None:
            return self._vec.get_state()
        return {
            "backend": "bigint",
            "values": list(self._values),
            "settled": self._settled,
            "cycles": self._cycles,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` (same backend only)."""
        if self._vec is not None:
            self._vec.set_state(state)
            return
        if state.get("backend") != "bigint":
            raise ValueError(
                f"cannot restore a {state.get('backend')!r} snapshot into a bigint simulator"
            )
        if len(state["values"]) != self.circuit.num_nets:
            raise ValueError("snapshot does not match this circuit")
        self._values = list(state["values"])
        self._settled = state["settled"]
        self._cycles = state["cycles"]

    def reset(self, latch_state: int | Sequence[int] | None = None) -> None:
        """Reset all nets to 0 and load *latch_state* into the flip-flops.

        ``latch_state`` may be ``None`` (use each latch's declared init
        value), an integer whose bit *i* is broadcast to every lane of latch
        *i*, or a sequence of per-latch lane-packed integers.
        """
        if self._vec is not None:
            self._vec.reset(latch_state)
            return
        self._values = [0] * self.circuit.num_nets
        if latch_state is None:
            packed = [self.mask if init else 0 for init in self.circuit.latch_init]
        elif isinstance(latch_state, int):
            packed = [
                self.mask if (latch_state >> i) & 1 else 0
                for i in range(self.circuit.num_latches)
            ]
        else:
            if len(latch_state) != self.circuit.num_latches:
                raise ValueError(f"latch_state must have {self.circuit.num_latches} entries")
            packed = [value & self.mask for value in latch_state]
        for q_id, value in zip(self.circuit.latch_q, packed):
            self._values[q_id] = value
        self._settled = False
        self._cycles = 0

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load an independent uniform-random state into every latch of every lane."""
        if self._vec is not None:
            self._vec.randomize_state(rng)
            return
        generator = spawn_rng(rng)
        for q_id in self.circuit.latch_q:
            self._values[q_id] = self._random_word(generator)
        self._settled = False

    def _random_word(self, generator) -> int:
        bits = generator.integers(0, 2, size=self.width, dtype="uint8")
        word = 0
        for bit in bits[::-1]:
            word = (word << 1) | int(bit)
        return word

    def load_latch_lanes(self, latch_words: np.ndarray) -> None:
        """Load externally drawn latch bits, one ``(num_words,)`` word row per latch.

        The counterpart of :meth:`randomize_state` for callers that draw the
        random latch bits themselves (the sharded sampler's parent process
        draws them from the run's single RNG stream and scatters lane slices
        to the workers).  Unlike :meth:`reset` this touches only the latch
        outputs — other net values and the cycle counter are left alone, so
        the engine behaves exactly as if :meth:`randomize_state` had produced
        these bits.
        """
        if self._vec is not None:
            self._vec.load_latch_lanes(latch_words)
            return
        if len(latch_words) != self.circuit.num_latches:
            raise ValueError(f"expected {self.circuit.num_latches} latch rows")
        from repro.utils.bitpack import unpack_words_to_int

        for q_id, row in zip(self.circuit.latch_q, latch_words):
            self._values[q_id] = unpack_words_to_int(np.asarray(row, dtype=np.uint64)) & self.mask
        self._settled = False

    def latch_state(self) -> list[int]:
        """Return the current lane-packed value of every latch output."""
        if self._vec is not None:
            return self._vec.latch_state()
        return [self._values[q_id] for q_id in self.circuit.latch_q]

    def latch_state_scalar(self, lane: int = 0) -> int:
        """Return the state of one lane as an integer (bit *i* = latch *i*)."""
        if self._vec is not None:
            return self._vec.latch_state_scalar(lane)
        state = 0
        for i, q_id in enumerate(self.circuit.latch_q):
            state |= ((self._values[q_id] >> lane) & 1) << i
        return state

    def net_value(self, name: str, lane: int = 0) -> int:
        """Return the current value (0/1) of net *name* in *lane*."""
        if self._vec is not None:
            return self._vec.net_value(name, lane)
        return (self._values[self.circuit.net_id(name)] >> lane) & 1

    # ------------------------------------------------------------- evaluation
    def apply_inputs(self, pattern) -> None:
        """Drive the primary inputs with lane-packed *pattern* values.

        Patterns are a sequence of lane-packed integers (one per primary
        input); the numpy backend additionally accepts a
        ``(num_inputs, num_words)`` uint64 word array.
        """
        if self._vec is not None:
            self._vec.apply_inputs(pattern)
            return
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            self._values[pi_id] = value & self.mask

    def evaluate(self) -> None:
        """Propagate the combinational logic (one pass in topological order)."""
        if self._vec is not None:
            self._vec.evaluate()
            return
        values = self._values
        mask = self.mask
        for gate in self.circuit.gates:
            gate_type = gate.gate_type
            name = gate_type.value
            inputs = gate.inputs
            if name == "AND" or name == "NAND":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result &= values[src]
                if name == "NAND":
                    result ^= mask
            elif name == "OR" or name == "NOR":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result |= values[src]
                if name == "NOR":
                    result ^= mask
            elif name == "XOR" or name == "XNOR":
                result = values[inputs[0]]
                for src in inputs[1:]:
                    result ^= values[src]
                if name == "XNOR":
                    result ^= mask
            elif name == "NOT":
                result = values[inputs[0]] ^ mask
            elif name == "BUFF":
                result = values[inputs[0]]
            elif name == "CONST0":
                result = 0
            else:  # CONST1
                result = mask
            values[gate.output] = result
        self._settled = True

    def clock(self) -> None:
        """Clock edge: copy each latch's settled D value onto its Q output."""
        if self._vec is not None:
            self._vec.clock()
            return
        values = self._values
        new_q = [values[d_id] for d_id in self.circuit.latch_d]
        for q_id, value in zip(self.circuit.latch_q, new_q):
            values[q_id] = value
        self._settled = False

    def settle(self, pattern) -> None:
        """Apply *pattern* and settle the logic without counting transitions.

        Used once after :meth:`reset`/:meth:`randomize_state` so the very
        first measured cycle starts from a consistent settled network.
        """
        if self._vec is not None:
            self._vec.settle(pattern)
            return
        self.apply_inputs(pattern)
        self.evaluate()

    def step(self, pattern) -> None:
        """Advance one clock cycle without measuring power.

        Sequence: clock edge (capture previous D values), drive the new input
        *pattern*, settle the combinational logic.
        """
        if self._vec is not None:
            self._vec.step(pattern)
            return
        if not self._settled:
            self.evaluate()
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self._cycles += 1

    def step_and_measure(self, pattern) -> float:
        """Advance one clock cycle and return the lane-summed switched capacitance.

        With ``width == 1`` the return value is the switched capacitance of
        that single cycle; with more lanes it is the sum over all lanes (used
        by the ensemble reference estimator, which only needs the aggregate).
        """
        if self._vec is not None:
            return self._vec.step_and_measure(pattern)
        if not self._settled:
            self.evaluate()
        previous = list(self._values)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self._cycles += 1

        switched = 0.0
        values = self._values
        capacitance = self.node_capacitance
        for net_id in range(self.circuit.num_nets):
            diff = previous[net_id] ^ values[net_id]
            if diff:
                switched += capacitance[net_id] * diff.bit_count()
        return switched

    def step_and_measure_lanes(self, pattern) -> np.ndarray:
        """Advance one clock cycle; return the switched capacitance of every lane.

        One gate sweep yields ``width`` independent per-chain power
        observations — the primitive the multi-chain Monte Carlo sampler is
        built on.  The numpy backend resolves lanes with vectorized popcounts;
        this big-int implementation walks the set bits of every net's
        transition word and exists mainly so narrow ensembles and equivalence
        tests can use either backend.
        """
        if self._vec is not None:
            return self._vec.step_and_measure_lanes(pattern)
        if not self._settled:
            self.evaluate()
        previous = list(self._values)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self._cycles += 1

        switched = np.zeros(self.width, dtype=np.float64)
        values = self._values
        capacitance = self.node_capacitance
        for net_id in range(self.circuit.num_nets):
            diff = previous[net_id] ^ values[net_id]
            cap = capacitance[net_id]
            while diff:
                low = diff & -diff
                switched[low.bit_length() - 1] += cap
                diff ^= low
        return switched

    def step_and_count(self, pattern) -> list[int]:
        """Advance one cycle and return the per-net toggle count (summed over lanes)."""
        if self._vec is not None:
            return self._vec.step_and_count(pattern)
        if not self._settled:
            self.evaluate()
        previous = list(self._values)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self._cycles += 1
        return [
            (previous[net_id] ^ self._values[net_id]).bit_count()
            for net_id in range(self.circuit.num_nets)
        ]

    # --------------------------------------------------------------- sequences
    def run(self, patterns: Sequence, measure: bool = True) -> list[float]:
        """Run one cycle per pattern; return the switched capacitance per cycle.

        With ``measure=False`` an empty list is returned and only the state is
        advanced (the zero-delay phase of the two-phase sampling scheme).
        """
        energies: list[float] = []
        for pattern in patterns:
            if measure:
                energies.append(self.step_and_measure(pattern))
            else:
                self.step(pattern)
        return energies
