"""Switching-activity collection (signal probabilities and transition densities).

The paper contrasts its direct-simulation approach with probabilistic methods
that summarise latch behaviour by signal probabilities and transition
densities.  This module measures those quantities by simulation so they can
be compared against FSM-derived values in tests and examples, and so users
can inspect which nets dominate the power of a circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.compiled import CompiledCircuit
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.stimulus.base import Stimulus
from repro.utils.rng import RandomSource, spawn_rng


@dataclass
class ActivityRecord:
    """Per-net switching statistics measured over a simulation run.

    Attributes
    ----------
    circuit_name:
        Name of the measured circuit.
    cycles:
        Number of measured clock cycles.
    signal_probability:
        Fraction of cycles each net spent at logic 1.
    transition_density:
        Average number of (zero-delay) transitions per cycle for each net.
    net_names:
        Net name for each index.
    """

    circuit_name: str
    cycles: int
    signal_probability: list[float]
    transition_density: list[float]
    net_names: list[str]

    def by_name(self) -> dict[str, tuple[float, float]]:
        """Return ``{net: (signal_probability, transition_density)}``."""
        return {
            name: (self.signal_probability[i], self.transition_density[i])
            for i, name in enumerate(self.net_names)
        }

    def busiest_nets(self, count: int = 10) -> list[tuple[str, float]]:
        """Return the *count* nets with the highest transition density."""
        ranked = sorted(zip(self.net_names, self.transition_density), key=lambda item: -item[1])
        return ranked[:count]


def collect_activity(
    circuit: CompiledCircuit,
    stimulus: Stimulus,
    cycles: int,
    warmup_cycles: int = 64,
    rng: RandomSource = None,
) -> ActivityRecord:
    """Measure signal probabilities and transition densities by simulation.

    The circuit is warmed up for *warmup_cycles* (not measured) and then
    simulated for *cycles* measured clock cycles under *stimulus*.
    """
    if cycles < 1:
        raise ValueError("cycles must be at least 1")
    generator = spawn_rng(rng)
    simulator = ZeroDelaySimulator(circuit, width=1)
    simulator.randomize_state(generator)
    simulator.settle(stimulus.next_pattern(generator, width=1))

    for _ in range(warmup_cycles):
        simulator.step(stimulus.next_pattern(generator, width=1))

    ones = [0] * circuit.num_nets
    toggles = [0] * circuit.num_nets
    for _ in range(cycles):
        counts = simulator.step_and_count(stimulus.next_pattern(generator, width=1))
        for net_id in range(circuit.num_nets):
            toggles[net_id] += counts[net_id]
            ones[net_id] += simulator.values[net_id] & 1

    return ActivityRecord(
        circuit_name=circuit.name,
        cycles=cycles,
        signal_probability=[count / cycles for count in ones],
        transition_density=[count / cycles for count in toggles],
        net_names=list(circuit.net_names),
    )
