"""Shared backend-resolution helper for the simulator facades.

Both facades (:class:`~repro.simulation.zero_delay.ZeroDelaySimulator` and
:class:`~repro.simulation.event_driven.EventDrivenSimulator`) expose the same
user-facing choice — a narrow scalar engine, a wide vectorized engine, or
``"auto"`` picking by ensemble width — and used to duplicate the validation
and width-threshold logic.  :func:`resolve_backend_choice` is the one shared
rule; each facade supplies its option tuple, engine names and threshold.
"""

from __future__ import annotations

from typing import Callable, Sequence


def resolve_backend_choice(
    backend: str,
    width: int,
    *,
    options: Sequence[str],
    narrow: str,
    wide: str,
    wide_threshold: int | Callable[[], int],
) -> str:
    """Resolve a user-facing backend choice to a concrete engine name.

    ``backend`` must be one of *options*; anything but ``"auto"`` is returned
    verbatim.  ``"auto"`` selects *wide* at widths of *wide_threshold* lanes
    and above, *narrow* below it.  A callable threshold is only invoked on
    the ``"auto"`` path, so probing work (e.g. native-kernel availability)
    is skipped when the caller chose an engine explicitly.
    """
    if backend not in options:
        raise ValueError(f"backend must be one of {tuple(options)}, got {backend!r}")
    if backend != "auto":
        return backend
    threshold = wide_threshold() if callable(wide_threshold) else wide_threshold
    return wide if width >= threshold else narrow
