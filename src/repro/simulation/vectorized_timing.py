"""Word-sliced, time-wheel event-driven simulator (general delays, glitches).

This is the numpy backend of
:class:`~repro.simulation.event_driven.EventDrivenSimulator`.  Where the
scalar backend walks a Python ``heapq`` of single-chain net updates, this
engine advances ``width`` independent chains *and* all 64-lane words together
through one discrete time wheel:

* Gate delays are quantized onto a shared integer tick base
  (:func:`~repro.simulation.delay_models.quantize_delays`), so every event
  time is an exact integer and both backends group "simultaneous" events
  identically — the property that makes their glitch counts bit-identical.
* Net values live in the same ``(num_nets, num_words)`` uint64 lane matrix as
  the zero-delay engine (lane *k* of net *i* in bit ``k % 64`` of
  ``words[i, k // 64]``; see :mod:`repro.utils.bitpack`).
* Per time point, the pending net updates are applied with one vectorized
  XOR/popcount pass, and the *active gate frontier* — the union over
  lanes of every gate fed by a changed net — is re-evaluated level by level
  with grouped ufunc reductions, or with the optional runtime-compiled C
  kernel from :mod:`repro.simulation._native`.  Zero-delay gates cascade
  within the instant; positive-delay gates schedule their computed output
  words ``ticks`` later on the wheel.

Evaluating the frontier for *all* lanes whenever *any* lane is active is
safe: a lane whose gate inputs did not change at this instant re-computes the
same output it scheduled at its own last active instant, which necessarily
lands on the wheel no later than the new event — re-applying an equal value
changes nothing and counts nothing.  The union-activity engine therefore does
(bounded) redundant evaluation work but counts exactly the per-lane
transitions of the scalar engine, a property pinned by the equivalence tests
in ``tests/property_based``.

Two refinements ride on that invariant:

* **Wavefront compaction**: before re-evaluating the frontier, the pending
  XOR is inspected per value *word* (64 lanes); word columns whose pending
  XOR is all-zero carry no new event anywhere in their 64 lanes, so the
  evaluation, scheduling and apply passes of the instant are restricted to
  the still-active columns.  Glitch tails typically collapse onto a few
  lanes, so wide ensembles skip most of the value words of late instants.
  Disable with ``wavefront_compaction=False`` (the engine then always
  processes every word, as before) — results are bit-identical either way.
* **Order-independent lane energies**: per-lane switched capacitance is
  accumulated as *integer* transition counts per ``(net, lane)`` during the
  cycle and converted to energy with a single ``capacitance @ counts``
  matmul when the cycle ends.  Integer accumulation is exact in any order,
  and the final reduction always runs over the full net axis, so a lane's
  energy does not depend on which other lanes share the engine — the
  property that lets the process-sharded sampler split an ensemble across
  engine instances and merge per-lane samples bit-identically.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.simulation import _native
from repro.simulation.delay_models import DelayModel, FanoutDelay
from repro.utils.bitpack import (
    bits_to_words,
    lane_mask_words,
    pack_int_to_words,
    unpack_words_to_int,
    words_per_width,
)
from repro.utils.rng import RandomSource, spawn_rng

__all__ = ["VectorizedEventDrivenSimulator"]

_REDUCERS = {
    _native.OP_AND: np.bitwise_and,
    _native.OP_OR: np.bitwise_or,
    _native.OP_XOR: np.bitwise_xor,
}


class VectorizedEventDrivenSimulator:
    """Event-driven general-delay simulator over word-sliced uint64 lane arrays.

    Mirrors the cycle semantics of the scalar backend (same clock-edge
    ordering, same instant grouping, same glitch counting) so the two are
    interchangeable behind :class:`~repro.simulation.event_driven.EventDrivenSimulator`.
    """

    backend = "numpy"

    def __init__(
        self,
        circuit,
        delay_model: DelayModel | None = None,
        node_capacitance: Sequence[float] | np.ndarray | None = None,
        width: int = 1,
        schedule=None,
        wavefront_compaction: bool = True,
        codegen: bool = False,
    ):
        # Imported lazily: the program module imports from repro.simulation.
        from repro.circuits.program import CircuitProgram, node_capacitance_array

        if width < 1:
            raise ValueError("width must be at least 1")
        self.wavefront_compaction = bool(wavefront_compaction)
        self.program = CircuitProgram.of(circuit)
        circuit = self.circuit = self.program.circuit
        self.width = width
        self.num_words = words_per_width(width)
        self.mask = (1 << width) - 1
        self.delay_model = delay_model or FanoutDelay()
        # The facade passes its already-computed (memoized) schedule so the
        # model is quantized exactly once per program; standalone users get
        # the same schedule through the program memo.
        if schedule is None:
            schedule = self.program.delay_schedule(self.delay_model)
        self.gate_delays = list(schedule.delays)
        self.tick = schedule.tick
        self.node_capacitance = node_capacitance_array(self.program, node_capacitance)
        self._caps = self.node_capacitance
        self._mask_words = lane_mask_words(width)
        self._partial_last_word = bool(width % 64)

        num_nets = circuit.num_nets
        num_words = self.num_words
        # Two virtual rows behind the real nets: an all-ones row (AND-group
        # fan-in padding) and an all-zeros row (OR/XOR-group padding).  The
        # program's padded fan-in tables reference exactly these row ids.
        self._row_one = self.program.row_one
        self._row_zero = self.program.row_zero
        self._flat = np.zeros((num_nets + 2) * num_words, dtype=np.uint64)
        self.words = self._flat[: num_nets * num_words].reshape(num_nets, num_words)
        self._flat[self._row_one * num_words : (self._row_one + 1) * num_words] = self._mask_words

        self._latch_q_rows = np.asarray(circuit.latch_q, dtype=np.intp)
        self._latch_d_rows = np.asarray(circuit.latch_d, dtype=np.intp)
        self._input_rows = np.asarray(circuit.primary_inputs, dtype=np.intp)

        self._adopt_program_tables(schedule)
        #: How gate frontiers evaluate: "codegen" (per-program generated C),
        #: "native" (generic C kernel) or "groups" (pure numpy); requesting
        #: codegen degrades down this chain when kernels are unavailable.
        self.eval_mode = "groups"
        self._cg_sweep = None
        self._native_eval = None
        if codegen:
            self._native_eval = self._build_codegen_eval()
        if self._native_eval is None:
            self._native_eval = self._build_native_eval()
            if self._native_eval is not None:
                self.eval_mode = "native"

        self._counts = np.zeros(num_nets, dtype=np.int64)
        # Per-(net, lane) transition counts of the cycle in flight.  uint16
        # keeps the per-event scatter-add memory traffic low (a net toggling
        # 65k times within one cycle is far beyond any acyclic cascade); only
        # rows touched by events are written and re-zeroed, tracked in
        # `_touched_rows`.
        self._lane_counts = np.zeros((num_nets, width), dtype=np.uint16)
        self._touched_rows: list[np.ndarray] = []
        self._wheel: dict[int, list[tuple[np.ndarray, np.ndarray, np.ndarray | None]]] = {}
        self._times: list[int] = []

        self._settled = False
        self.cycles_simulated = 0
        self.reset()

    # --------------------------------------------------------------- schedules
    def _adopt_program_tables(self, schedule) -> None:
        """Bind the program's shared gate/fan-out tables and this model's ticks.

        Everything here is read-only shared state from the
        :class:`~repro.circuits.program.CircuitProgram`; the only array built
        locally is the width-dependent flat gather index.
        """
        program = self.program
        num_words = self.num_words
        word_span = np.arange(num_words, dtype=np.intp)

        self._gate_op = program.gate_op
        self._gate_invert = program.gate_invert
        self._gate_out = program.gate_out
        self._gate_tick = schedule.ticks
        self._gate_level = program.gate_level
        self._const_rows = program.const_rows
        self._max_arity = program.max_arity
        self._padded_rows = program.padded_rows
        self._in_ptr = program.in_ptr
        self._in_rows = program.in_rows
        #: With no zero-delay gate anywhere there can be no intra-instant
        #: cascade, so each instant's frontier is evaluated in one batch
        #: instead of level by level (the hot path for realistic delay models).
        self._any_zero_ticks = schedule.any_zero_ticks
        self._gate_gather = (program.padded_rows[:, :, None] * num_words + word_span).reshape(
            len(self.circuit.gates), -1
        )
        #: Non-const gate ids grouped by level, ascending — the full-sweep
        #: schedule used by :meth:`settle`.
        self._levels_all = program.levels_all
        self._fanout_ptr = program.fanout_ptr
        self._fanout_idx = program.fanout_idx

    def _build_codegen_eval(self):
        # Imported lazily: codegen imports from this package at module scope.
        from repro.simulation import codegen

        kernel = codegen.load_program_kernel(self.program)
        if kernel is None:
            return None
        self.eval_mode = "codegen"
        # settle()'s full sweep can skip the frontier machinery entirely and
        # run the straight-line level schedule baked into the kernel.
        self._cg_sweep = codegen.bind_sweep(
            kernel, self._flat, int(self.num_words), self._mask_words
        )
        flat = self._flat
        num_words = int(self.num_words)
        mask = self._mask_words

        def evaluate(gate_ids: np.ndarray, out: np.ndarray, cols: np.ndarray | None) -> bool:
            if cols is None:
                kernel.cg_ed_eval(flat, num_words, gate_ids, gate_ids.size, mask, out)
            else:
                kernel.cg_ed_eval_cols(
                    flat, num_words, gate_ids, gate_ids.size, mask, cols, cols.size, out
                )
            return True

        return evaluate

    def _build_native_eval(self):
        kernel = _native.load_kernel()
        if kernel is None or not hasattr(kernel, "ed_eval"):
            return None
        flat = self._flat
        num_words = int(self.num_words)
        invert_flag = np.where(self._gate_invert != 0, _native.OP_INVERT, 0)
        ops_invert = (self._gate_op | invert_flag).astype(np.uint8)
        in_ptr = self._in_ptr
        in_rows = self._in_rows
        mask = self._mask_words
        # Keep every table alive on the instance; the closure passes the
        # varying frontier/output arrays per call.
        self._native_tables = (ops_invert, in_ptr, in_rows, mask)
        has_cols = hasattr(kernel, "ed_eval_cols")

        def evaluate(gate_ids: np.ndarray, out: np.ndarray, cols: np.ndarray | None) -> bool:
            if cols is None:
                kernel.ed_eval(
                    flat, num_words, gate_ids, gate_ids.size, ops_invert, in_ptr, in_rows,
                    mask, out,
                )
                return True
            if not has_cols:
                return False
            kernel.ed_eval_cols(
                flat, num_words, gate_ids, gate_ids.size, ops_invert, in_ptr, in_rows,
                mask, cols, cols.size, out,
            )
            return True

        return evaluate

    # ------------------------------------------------------------------- state
    def reset(self, latch_state: int | Sequence[int] | None = None) -> None:
        """Reset all nets to 0, load *latch_state* into the flip-flops, clear counters."""
        self.words[:] = 0
        for row, is_one in self._const_rows:
            self.words[row] = self._mask_words if is_one else 0
        if latch_state is None:
            packed = [
                self._mask_words if init else np.zeros(self.num_words, dtype=np.uint64)
                for init in self.circuit.latch_init
            ]
        elif isinstance(latch_state, int):
            packed = [
                self._mask_words
                if (latch_state >> i) & 1
                else np.zeros(self.num_words, dtype=np.uint64)
                for i in range(self.circuit.num_latches)
            ]
        else:
            if len(latch_state) != self.circuit.num_latches:
                raise ValueError(f"latch_state must have {self.circuit.num_latches} entries")
            packed = [
                pack_int_to_words(int(value) & self.mask, self.num_words)
                for value in latch_state
            ]
        for row, value in zip(self._latch_q_rows, packed):
            self.words[row] = value
        self._counts[:] = 0
        self._lane_counts[:] = 0
        self._touched_rows.clear()
        self.cycles_simulated = 0
        self._settled = False

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load an independent uniform-random state into every latch of every lane.

        Draws the same RNG stream as the vectorized zero-delay engine (one
        ``integers(0, 2, size=width)`` call per latch).
        """
        generator = spawn_rng(rng)
        for row in self._latch_q_rows:
            bits = generator.integers(0, 2, size=self.width, dtype="uint8")
            self.words[row] = bits_to_words(bits, self.num_words)
        self._settled = False

    def load_settled_state(self, values) -> None:
        """Adopt an externally settled network (zero-delay words or packed ints)."""
        if isinstance(values, np.ndarray) and values.dtype == np.uint64:
            if values.shape != self.words.shape:
                raise ValueError(
                    f"expected settled words of shape {self.words.shape}, got {values.shape}"
                )
            np.copyto(self.words, values)
            if self._partial_last_word:
                self.words &= self._mask_words
        else:
            if len(values) != self.circuit.num_nets:
                raise ValueError(
                    f"expected {self.circuit.num_nets} net values, got {len(values)}"
                )
            for row, value in enumerate(values):
                self.words[row] = pack_int_to_words(int(value) & self.mask, self.num_words)
        self._settled = True

    def get_state(self) -> dict:
        """Snapshot the word matrix and counters (checkpoint support; owns its storage)."""
        return {
            "backend": "numpy",
            "words": self.words.copy(),
            "transition_counts": self._counts.copy(),
            "settled": self._settled,
            "cycles": self.cycles_simulated,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` (same backend only)."""
        if state.get("backend") != "numpy":
            raise ValueError(
                f"cannot restore a {state.get('backend')!r} snapshot into a numpy simulator"
            )
        if state["words"].shape != self.words.shape:
            raise ValueError("snapshot does not match this circuit/width")
        self.words[:] = state["words"]
        self._counts[:] = state["transition_counts"]
        self._settled = state["settled"]
        self.cycles_simulated = state["cycles"]

    @property
    def values(self) -> list[int]:
        """Current net values as lane-packed integers (scalar-compatible view)."""
        return [unpack_words_to_int(self.words[row]) for row in range(self.circuit.num_nets)]

    @property
    def transition_counts(self) -> np.ndarray:
        """Per-net transition count since the last reset, summed over lanes."""
        return self._counts

    def latch_state_scalar(self, lane: int = 0) -> int:
        """Return the state of one lane as an integer (bit *i* = latch *i*)."""
        word, bit = divmod(lane, 64)
        state = 0
        for i, row in enumerate(self._latch_q_rows):
            state |= ((int(self.words[row, word]) >> bit) & 1) << i
        return state

    def net_value(self, name: str, lane: int = 0) -> int:
        """Return the current settled value (0/1) of net *name* in *lane*."""
        word, bit = divmod(lane, 64)
        return (int(self.words[self.circuit.net_id(name), word]) >> bit) & 1

    # ------------------------------------------------------------- evaluation
    def _pattern_words(self, pattern) -> np.ndarray:
        """Coerce a pattern (packed ints or a word array) to (num_inputs, W)."""
        if isinstance(pattern, np.ndarray) and pattern.dtype == np.uint64:
            if pattern.shape != (self.circuit.num_inputs, self.num_words):
                raise ValueError(
                    f"pattern words must have shape "
                    f"({self.circuit.num_inputs}, {self.num_words}), got {pattern.shape}"
                )
            if not self._partial_last_word:
                return pattern
            return pattern & self._mask_words
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        words = np.empty((self.circuit.num_inputs, self.num_words), dtype=np.uint64)
        for index, value in enumerate(pattern):
            words[index] = pack_int_to_words(int(value) & self.mask, self.num_words)
        return words

    def _evaluate_gates(self, gates: np.ndarray, cols: np.ndarray | None = None) -> np.ndarray:
        """Re-evaluate *gates* (sorted non-const ids); return their output words.

        With ``cols=None`` all ``num_words`` value words are evaluated
        (shape ``(len(gates), num_words)``); otherwise only the given word
        columns (shape ``(len(gates), len(cols))``) — the wavefront-compacted
        path, where quiescent 64-lane words are skipped.
        """
        num_cols = self.num_words if cols is None else cols.size
        out = np.empty((gates.size, num_cols), dtype=np.uint64)
        if self._native_eval is not None and self._native_eval(gates, out, cols):
            return out
        flat = self._flat
        ops = self._gate_op[gates]
        mask = self._mask_words if cols is None else self._mask_words[cols]
        for opcode, reducer in _REDUCERS.items():
            member = ops == opcode
            if not member.any():
                continue
            selected = gates[member]
            if cols is None:
                gathered = flat[self._gate_gather[selected]].reshape(
                    selected.size, self._max_arity, self.num_words
                )
            else:
                gather = self._padded_rows[selected][:, :, None] * self.num_words + cols
                gathered = flat[gather.reshape(-1)].reshape(
                    selected.size, self._max_arity, num_cols
                )
            acc = reducer.reduce(gathered, axis=1)
            invert = self._gate_invert[selected]
            if invert.any():
                np.bitwise_xor(acc, invert[:, None], out=acc)
                if self._partial_last_word:
                    np.bitwise_and(acc, mask, out=acc)
            out[member] = acc
        return out

    def settle(self, pattern) -> None:
        """Drive *pattern*, settle the logic with one full sweep, count nothing."""
        self._apply_inputs(pattern)
        self._full_sweep()
        self._settled = True

    def _apply_inputs(self, pattern) -> None:
        words = self._pattern_words(pattern)
        self.words[self._input_rows] = words

    def _full_sweep(self) -> None:
        if self._cg_sweep is not None:
            self._cg_sweep()
            return
        for level_gates in self._levels_all:
            outs = self._evaluate_gates(level_gates)
            self.words[self._gate_out[level_gates]] = outs

    # ----------------------------------------------------------------- cycle
    def _schedule(
        self, time: int, rows: np.ndarray, vals: np.ndarray, cols: np.ndarray | None
    ) -> None:
        bucket = self._wheel.get(time)
        if bucket is None:
            self._wheel[time] = bucket = []
            heapq.heappush(self._times, time)
        bucket.append((rows, vals, cols))

    def _fanout_of(self, rows: np.ndarray) -> np.ndarray:
        """Gate ids reading any of *rows* (duplicates possible, unique'd later)."""
        ptr = self._fanout_ptr
        counts = ptr[rows + 1] - ptr[rows]
        total = int(counts.sum())
        if total == 0:
            return self._fanout_idx[:0]
        base = np.repeat(ptr[rows] - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        return self._fanout_idx[base + np.arange(total, dtype=np.int64)]

    def _apply_rows(
        self, rows: np.ndarray, vals: np.ndarray, cols: np.ndarray | None
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Apply scheduled values restricted to word columns *cols* (``None`` = all).

        Counts per-net and per-``(net, lane)`` transitions and returns
        ``(changed_rows, active_cols)``: the rows whose value changed and the
        word columns in which any lane actually changed (``None`` when every
        column is still active).  Both are ``None`` when nothing changed.
        """
        if cols is None:
            current = self.words[rows]
        else:
            current = self.words[np.ix_(rows, cols)]
        diff = current ^ vals
        changed = diff.any(axis=1)
        if not changed.any():
            return None, None
        rows_changed = rows[changed]
        diff_changed = diff[changed]
        if cols is None:
            self.words[rows_changed] = vals[changed]
        else:
            self.words[np.ix_(rows_changed, cols)] = vals[changed]
        self._counts[rows_changed] += np.bitwise_count(diff_changed).sum(axis=1, dtype=np.int64)
        bits = np.unpackbits(
            np.ascontiguousarray(diff_changed).view(np.uint8).reshape(rows_changed.size, -1),
            axis=1,
            bitorder="little",
        )
        if cols is None:
            self._lane_counts[rows_changed] += bits[:, : self.width]
        else:
            for index, col in enumerate(cols):
                low = int(col) * 64
                high = min(self.width, low + 64)
                self._lane_counts[rows_changed, low:high] += bits[
                    :, index * 64 : index * 64 + (high - low)
                ]
        self._touched_rows.append(rows_changed)

        active: np.ndarray | None = None
        if self.wavefront_compaction and self.num_words >= 8:
            live = diff_changed.any(axis=0)
            # Restricting to a column subset trades slab indexing for fancy
            # indexing on every downstream pass, so the word count must be
            # substantial (>= 8 words, i.e. 512+ lanes) and at most an eighth
            # of the (remaining) words may still carry events before the
            # narrow path pays for itself.
            if 8 * int(live.sum()) <= live.size:
                active = (
                    np.flatnonzero(live) if cols is None else cols[live]
                ).astype(np.int64, copy=False)
        if active is None and cols is not None:
            active = cols
        return rows_changed, active

    def _push_levels(self, buckets: dict[int, list], gates: np.ndarray) -> None:
        levels = self._gate_level[gates]
        for level in np.unique(levels):
            buckets.setdefault(int(level), []).append(gates[levels == level])

    def _run_instant(self, time: int) -> None:
        batches = self._wheel.pop(time)
        # Each output row is scheduled at most once per instant, but batches
        # may carry different column subsets; batches sharing a column set
        # (the overwhelmingly common case — one instant usually schedules one
        # subset) merge into a single apply pass.
        changed: list[np.ndarray] = []
        col_sets: list[np.ndarray | None] = []
        if len(batches) == 1:
            groups = [(batches[0][2], [batches[0]])]
        else:
            grouped: dict = {}
            for batch in batches:
                cols = batch[2]
                key = None if cols is None else cols.tobytes()
                grouped.setdefault(key, (cols, []))[1].append(batch)
            groups = list(grouped.values())
        for cols, members in groups:
            if len(members) == 1:
                rows, vals = members[0][0], members[0][1]
            else:
                rows = np.concatenate([batch[0] for batch in members])
                vals = np.concatenate([batch[1] for batch in members])
            rows_changed, active = self._apply_rows(rows, vals, cols)
            if rows_changed is not None:
                changed.append(rows_changed)
                col_sets.append(active)
        if not changed:
            return
        changed_rows = changed[0] if len(changed) == 1 else np.concatenate(changed)
        # Word columns the instant's evaluation has to cover: the union of the
        # columns that actually changed.  None means every column is active
        # (the uncompacted fast path).
        if any(cols is None for cols in col_sets):
            eval_cols: np.ndarray | None = None
        else:
            eval_cols = (
                col_sets[0]
                if len(col_sets) == 1
                else np.unique(np.concatenate(col_sets))
            )
            if eval_cols.size == self.num_words:
                eval_cols = None
        frontier = self._fanout_of(changed_rows)
        if frontier.size == 0:
            return
        if not self._any_zero_ticks:
            # Purely positive delays: no same-instant cascade is possible, so
            # the whole frontier evaluates as one batch and every output is
            # scheduled — the per-level worklist below exists only for
            # zero-delay gates.
            gates = np.unique(frontier)
            outs = self._evaluate_gates(gates, eval_cols)
            ticks = self._gate_tick[gates]
            for tick_delay in np.unique(ticks):
                member = ticks == tick_delay
                # Boolean indexing copies, so the scheduled batch owns its rows.
                self._schedule(
                    time + int(tick_delay),
                    self._gate_out[gates[member]],
                    outs if member.all() else outs[member],
                    eval_cols,
                )
            return
        buckets: dict[int, list] = {}
        self._push_levels(buckets, frontier)
        while buckets:
            level = min(buckets)
            arrays = buckets.pop(level)
            gates = np.unique(arrays[0] if len(arrays) == 1 else np.concatenate(arrays))
            outs = self._evaluate_gates(gates, eval_cols)
            ticks = self._gate_tick[gates]
            zero = ticks == 0
            if zero.any():
                applied, _ = self._apply_rows(self._gate_out[gates[zero]], outs[zero], eval_cols)
                if applied is not None:
                    cascade = self._fanout_of(applied)
                    if cascade.size:
                        self._push_levels(buckets, cascade)
            delayed = ~zero
            if delayed.any():
                delayed_gates = gates[delayed]
                delayed_outs = outs[delayed]
                delayed_ticks = ticks[delayed]
                for tick_delay in np.unique(delayed_ticks):
                    member = delayed_ticks == tick_delay
                    self._schedule(
                        time + int(tick_delay),
                        self._gate_out[delayed_gates[member]],
                        delayed_outs[member],
                        eval_cols,
                    )

    def cycle_lanes(self, pattern) -> np.ndarray:
        """Simulate one clock cycle; return each lane's switched capacitance.

        Mirrors the scalar backend cycle: clock edge (latches capture the
        settled D values), new input pattern, event-driven propagation over
        the integer time wheel until quiescence.  Entry *k* of the result is
        the capacitance-weighted transition count of chain *k*, glitches
        included.
        """
        pattern_words = self._pattern_words(pattern)
        if not self._settled:
            self._full_sweep()
            self._settled = True

        captured = self.words[self._latch_d_rows].copy()

        seed_rows = [self._latch_q_rows.astype(np.int64), self._input_rows.astype(np.int64)]
        seed_vals = [captured, pattern_words]
        rows = np.concatenate(seed_rows)
        vals = (
            np.concatenate(seed_vals)
            if rows.size
            else np.empty((0, self.num_words), dtype=np.uint64)
        )
        if rows.size:
            self._schedule(0, rows, vals, None)

        while self._times:
            self._run_instant(heapq.heappop(self._times))

        self.cycles_simulated += 1
        # One fixed-shape reduction over the full net axis converts the exact
        # integer transition counts to energies: a lane's value is independent
        # of event order and of which other lanes share this engine.
        energy = self._caps @ self._lane_counts
        for touched in self._touched_rows:
            self._lane_counts[touched] = 0
        self._touched_rows.clear()
        return energy

    def cycle(self, pattern) -> float:
        """Simulate one clock cycle; return the switched capacitance summed over lanes."""
        return float(self.cycle_lanes(pattern).sum())

    def run(self, patterns: Sequence) -> list[float]:
        """Simulate one cycle per pattern; return per-cycle lane-summed energies."""
        return [self.cycle(pattern) for pattern in patterns]

    # ------------------------------------------------------------- statistics
    def total_transitions(self) -> int:
        """Total transitions counted since the last reset, over all lanes."""
        return int(self._counts.sum())

    def transition_density(self) -> np.ndarray:
        """Average transitions per cycle *per lane* for every net (float64)."""
        if self.cycles_simulated == 0:
            return np.zeros(self.circuit.num_nets, dtype=np.float64)
        return self._counts / float(self.cycles_simulated * self.width)
