"""Compilation of a :class:`~repro.netlist.netlist.Netlist` into simulator tables.

Simulation touches every gate on every clock cycle, so the structural netlist
(string-keyed, validation-friendly) is first *compiled* into flat
integer-indexed tables: each net gets a dense id, gates are stored in
topological order with pre-resolved fan-in ids, and latches become
``(q, d)`` id pairs.  Both simulators and the FSM enumeration code work on
this compiled form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cell_library import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.validate import assert_valid


@dataclass(frozen=True)
class CompiledGate:
    """A gate in compiled form: operation, output net id and fan-in net ids."""

    gate_type: GateType
    output: int
    inputs: tuple[int, ...]


@dataclass
class CompiledCircuit:
    """Flat, integer-indexed view of a sequential circuit.

    Attributes
    ----------
    name:
        Circuit name carried over from the netlist.
    net_names:
        Net name for each net id (index in this list is the id).
    primary_inputs / primary_outputs:
        Net ids of the primary inputs / outputs, in declaration order.
    latch_q / latch_d:
        Parallel lists: latch *i* copies net ``latch_d[i]`` into net
        ``latch_q[i]`` at each clock edge.
    latch_init:
        Reset value (0/1) for each latch.
    gates:
        Combinational gates in topological evaluation order.
    fanout_counts:
        Number of sinks (gate inputs, latch D pins, primary outputs) each net
        drives; used by the capacitance and delay models.
    """

    name: str
    net_names: list[str]
    primary_inputs: list[int]
    primary_outputs: list[int]
    latch_q: list[int]
    latch_d: list[int]
    latch_init: list[int]
    gates: list[CompiledGate]
    fanout_counts: list[int]
    net_index: dict[str, int] = field(repr=False, default_factory=dict)
    fanout_gates: list[tuple[int, ...]] = field(repr=False, default_factory=list)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_netlist(cls, netlist: Netlist, validate: bool = True) -> "CompiledCircuit":
        """Compile *netlist*; with ``validate=True`` structural errors raise."""
        if validate:
            assert_valid(netlist)

        net_names = netlist.all_nets()
        net_index = {name: idx for idx, name in enumerate(net_names)}

        def nid(name: str) -> int:
            try:
                return net_index[name]
            except KeyError as exc:  # pragma: no cover - guarded by validation
                raise NetlistError(f"unknown net {name!r}") from exc

        ordered_gates = levelize(netlist)
        gates = [
            CompiledGate(
                gate_type=gate.gate_type,
                output=nid(gate.output),
                inputs=tuple(nid(src) for src in gate.inputs),
            )
            for gate in ordered_gates
        ]

        fanout_counts = [0] * len(net_names)
        for gate in netlist.gates:
            for src in gate.inputs:
                fanout_counts[nid(src)] += 1
        for latch in netlist.latches:
            fanout_counts[nid(latch.data)] += 1
        for po in netlist.primary_outputs:
            fanout_counts[nid(po)] += 1

        # For the event-driven simulator: which compiled gates read each net.
        fanout_gates_lists: list[list[int]] = [[] for _ in net_names]
        for gate_index, gate in enumerate(gates):
            for src in gate.inputs:
                fanout_gates_lists[src].append(gate_index)
        fanout_gates = [tuple(indices) for indices in fanout_gates_lists]

        return cls(
            name=netlist.name,
            net_names=net_names,
            primary_inputs=[nid(pi) for pi in netlist.primary_inputs],
            primary_outputs=[nid(po) for po in netlist.primary_outputs],
            latch_q=[nid(latch.output) for latch in netlist.latches],
            latch_d=[nid(latch.data) for latch in netlist.latches],
            latch_init=[latch.init_value for latch in netlist.latches],
            gates=gates,
            fanout_counts=fanout_counts,
            net_index=net_index,
            fanout_gates=fanout_gates,
        )

    # ------------------------------------------------------------------ query
    @property
    def num_nets(self) -> int:
        """Total number of nets."""
        return len(self.net_names)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates."""
        return len(self.gates)

    @property
    def num_latches(self) -> int:
        """Number of D flip-flops."""
        return len(self.latch_q)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.primary_inputs)

    def net_id(self, name: str) -> int:
        """Return the net id of *name* (raises ``KeyError`` if unknown)."""
        return self.net_index[name]

    def state_space_size(self) -> int:
        """Number of distinct latch-state vectors."""
        return 1 << self.num_latches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledCircuit({self.name!r}, nets={self.num_nets}, gates={self.num_gates}, "
            f"latches={self.num_latches}, inputs={self.num_inputs})"
        )
