"""Per-circuit C code generation: straight-line compiled sweeps.

The generic kernels in :mod:`repro.simulation._native` interpret the lowered
:class:`~repro.circuits.program.CircuitProgram` tables at run time: every
gate of every sweep pays an opcode dispatch and a CSR gather through pointer
chasing.  This module removes that last interpreter layer by emitting a C
translation unit *for one specific program* — every gate becomes a literal
expression over its fan-in row slots::

    V[123*NW + w] = ~(V[41*NW + w] & V[87*NW + w]) & M[w];

with the level schedule unrolled into straight-line functions, constants
folded away (constant cells are materialised at reset and never re-swept)
and all gather indices baked into the instruction stream.  The generated
code is **width-independent**: row offsets are scaled by the runtime word
count ``NW``, and inverted outputs are masked with the caller's per-word
lane mask ``M``, so one shared object serves every ensemble width of its
circuit — which is what lets the object be cached under the program's
content key.

Three entry points are emitted per program:

* ``cg_zd_sweep(V, NW, M)`` — the full zero-delay combinational sweep, one
  fused ``w``-loop per level chunk (gates within a level are independent,
  so their expressions share one loop over the lane words);
* ``cg_ed_eval(V, NW, ids, n, M, out)`` — evaluate an arbitrary gate subset
  (the event-driven engine's active frontier) into ``out`` without touching
  the net rows, via a per-gate function-pointer table;
* ``cg_ed_eval_cols(...)`` — the same restricted to a subset of value-word
  columns (wavefront compaction).

Compilation and caching ride the shared machinery of
:func:`repro.simulation._native.compile_and_load`: with
``REPRO_PROGRAM_CACHE`` set, the object lands next to the pickled program as
``{program.key}.cg{CODEGEN_VERSION}.k*.{source_digest}.so`` (atomic rename,
corrupt/stale objects silently recompiled), so sharded workers and batch
subprocesses ``dlopen`` the cached object instead of re-invoking the
compiler.  ``REPRO_NATIVE=0`` and compiler-less environments make
:func:`load_program_kernel` return ``None`` and every consumer falls back
to the grouped-numpy path — the generated kernels are a pure performance
layer, bit-identical to the portable sweeps (pinned by the engine matrix).
"""

from __future__ import annotations

import ctypes
import os
import threading

import numpy as np

from repro.simulation import _native

__all__ = [
    "CODEGEN_VERSION",
    "bind_sweep",
    "clear_codegen_memo",
    "ensure_program_kernel",
    "generate_source",
    "load_program_kernel",
    "program_kernel_path",
]

#: Bumped whenever the generated code's ABI or semantics change; the version
#: is part of the cached object's file name, so stale objects simply miss.
CODEGEN_VERSION = 1

#: Gates per fused zero-delay loop body.  Levels wider than this split into
#: several functions, bounding the optimizer's per-function work so compile
#: time stays linear in circuit size.
_ZD_CHUNK = 256

_MEMO: dict[str, ctypes.CDLL | None] = {}
_MEMO_LOCK = threading.Lock()

_OP_CHAR = {_native.OP_AND: "&", _native.OP_OR: "|", _native.OP_XOR: "^"}

_PREAMBLE = """\
#include <stdint.h>

typedef uint64_t (*cg_word_fn)(const uint64_t *, int64_t, const uint64_t *, int64_t);

static uint64_t cg_word_zero(const uint64_t *V, int64_t NW, const uint64_t *M,
                             int64_t w)
{
    (void)V; (void)NW; (void)M; (void)w;
    return 0;
}
"""


def _gate_expr(program, gate_index: int, lane: str) -> str:
    """The C expression for one gate's output at lane-word index *lane*."""
    lo = int(program.in_ptr[gate_index])
    hi = int(program.in_ptr[gate_index + 1])
    rows = program.in_rows[lo:hi]
    op = _OP_CHAR[int(program.gate_op[gate_index])]
    terms = f" {op} ".join(f"V[{int(row)}*NW+{lane}]" for row in rows)
    if not program.gate_invert[gate_index]:
        return terms
    if len(rows) == 1:
        return f"~{terms} & M[{lane}]"
    return f"~({terms}) & M[{lane}]"


def generate_source(program) -> str:
    """Emit the full C translation unit specializing *program*'s sweeps."""
    parts = [_PREAMBLE]

    # Zero-delay sweep: one fused w-loop per level chunk.  Gates sharing a
    # level never feed each other (level = 1 + deepest fan-in level), so
    # their statements are independent within one w iteration.
    chunk_names: list[str] = []
    for level_pos, level_gates in enumerate(program.levels_all):
        for chunk_pos in range(0, level_gates.size, _ZD_CHUNK):
            chunk = level_gates[chunk_pos : chunk_pos + _ZD_CHUNK]
            name = f"cg_zd_l{level_pos}_c{chunk_pos // _ZD_CHUNK}"
            chunk_names.append(name)
            lines = [
                f"static void {name}(uint64_t *restrict V, const int64_t NW,",
                f"{' ' * (len(name) + 13)}const uint64_t *restrict M)",
                "{",
                "    for (int64_t w = 0; w < NW; w++) {",
            ]
            for gate_index in chunk:
                out_row = int(program.gate_out[gate_index])
                lines.append(
                    f"        V[{out_row}*NW+w] = {_gate_expr(program, int(gate_index), 'w')};"
                )
            lines.extend(["    }", "}", ""])
            parts.append("\n".join(lines))

    sweep_calls = "\n".join(f"    {name}(V, NW, M);" for name in chunk_names)
    parts.append(
        "void cg_zd_sweep(uint64_t *V, int64_t NW, const uint64_t *M)\n"
        "{\n" + sweep_calls + ("\n" if sweep_calls else "") + "}\n"
    )

    # Event-driven eval: one single-expression function per gate returning
    # its value at one lane-word index, plus a function-pointer table
    # indexed by gate id.  Keeping the per-word loop in the *drivers* (and
    # out of the per-gate bodies) keeps compile time linear in circuit size
    # — per-gate loop bodies made the optimizer's cost blow up 6x on s5378.
    # The same word functions serve the column-subset variant by passing
    # ``C[k]`` as the word index.  Constant cells (never scheduled, but the
    # generic kernel zero-fills them defensively) map to ``cg_word_zero``.
    num_gates = len(program.gate_out)
    table: list[str] = []
    for gate_index in range(num_gates):
        if not program.non_const[gate_index]:
            table.append("cg_word_zero")
            continue
        table.append(f"cg_w{gate_index}")
        expr = _gate_expr(program, gate_index, "w")
        parts.append(
            f"static uint64_t cg_w{gate_index}(const uint64_t *V, int64_t NW,\n"
            "        const uint64_t *M, int64_t w)\n"
            "{\n"
            "    (void)M;\n"
            f"    return {expr};\n"
            "}\n"
        )

    parts.append(
        "static const cg_word_fn CG_GATES[] = {\n    "
        + ",\n    ".join(table)
        + "\n};\n"
        "\n"
        "void cg_ed_eval(const uint64_t *V, int64_t NW, const int64_t *ids,\n"
        "                int64_t n, const uint64_t *M, uint64_t *out)\n"
        "{\n"
        "    for (int64_t i = 0; i < n; i++) {\n"
        "        const cg_word_fn fn = CG_GATES[ids[i]];\n"
        "        uint64_t *dst = out + i * NW;\n"
        "        for (int64_t w = 0; w < NW; w++)\n"
        "            dst[w] = fn(V, NW, M, w);\n"
        "    }\n"
        "}\n"
        "\n"
        "void cg_ed_eval_cols(const uint64_t *V, int64_t NW, const int64_t *ids,\n"
        "                     int64_t n, const uint64_t *M, const int64_t *C,\n"
        "                     int64_t NC, uint64_t *out)\n"
        "{\n"
        "    for (int64_t i = 0; i < n; i++) {\n"
        "        const cg_word_fn fn = CG_GATES[ids[i]];\n"
        "        uint64_t *dst = out + i * NC;\n"
        "        for (int64_t k = 0; k < NC; k++)\n"
        "            dst[k] = fn(V, NW, M, C[k]);\n"
        "    }\n"
        "}\n"
    )
    return "\n".join(parts)


def _configure(library: ctypes.CDLL) -> ctypes.CDLL | None:
    """Attach argtypes; None when the object lacks the expected symbols."""
    for symbol in ("cg_zd_sweep", "cg_ed_eval", "cg_ed_eval_cols"):
        if not hasattr(library, symbol):
            return None
    uint64_p = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
    int64_p = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    library.cg_zd_sweep.restype = None
    library.cg_zd_sweep.argtypes = [uint64_p, ctypes.c_int64, uint64_p]
    library.cg_ed_eval.restype = None
    library.cg_ed_eval.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint64_p,  # lane mask
        uint64_p,  # out
    ]
    library.cg_ed_eval_cols.restype = None
    library.cg_ed_eval_cols.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint64_p,  # lane mask
        int64_p,  # cols
        ctypes.c_int64,  # num_cols
        uint64_p,  # out
    ]
    return library


def _cache_tag(program) -> str:
    return f"{program.key}.cg{CODEGEN_VERSION}"


def program_kernel_path(program) -> str | None:
    """Cache-file path the program's compiled object would use, or ``None``.

    ``None`` when no cache directory is configured; the path may not exist
    yet (``ensure_program_kernel`` builds it).
    """
    directory = _native._kernel_cache_dir()
    if directory is None:
        return None
    digest = _native.source_digest(generate_source(program))
    return os.path.join(
        directory,
        f"{_cache_tag(program)}.k{_native.KERNEL_CACHE_VERSION}.{digest}.so",
    )


def load_program_kernel(program) -> ctypes.CDLL | None:
    """The compiled per-program kernel, or ``None`` when unavailable.

    Memoized in-process by the program's content key (a failed compile is
    remembered too, so one broken environment does not retry the compiler
    per engine).  ``REPRO_NATIVE=0`` disables code generation exactly like
    the generic kernels.
    """
    if not _native.native_enabled():
        return None
    key = program.key
    with _MEMO_LOCK:
        if key in _MEMO:
            return _MEMO[key]
    source = generate_source(program)
    # -O1: measured identical sweep throughput to -O2 on these straight-line
    # bitwise bodies, at roughly half the compile time (per-function RTL
    # expansion dominates and scales with circuit size).
    library = _native.compile_and_load(source, _cache_tag(program), optimize="-O1")
    if library is not None:
        library = _configure(library)
    with _MEMO_LOCK:
        library = _MEMO.setdefault(key, library)
    return library


def clear_codegen_memo() -> None:
    """Drop the in-process kernel memo (testing support; disk cache untouched)."""
    with _MEMO_LOCK:
        _MEMO.clear()


def ensure_program_kernel(program) -> dict:
    """Pre-build the program's kernel and report the cache state.

    The ``repro compile --codegen`` payload: whether code generation is
    enabled at all, the cache path (``None`` without ``REPRO_PROGRAM_CACHE``),
    the object's size, and whether this call hit the disk cache (``None``
    when nothing could be built).  Operators use it to warm caches before
    serving.
    """
    source = generate_source(program)
    path = program_kernel_path(program)
    hit = path is not None and os.path.exists(path)
    library = load_program_kernel(program)
    return {
        "enabled": _native.native_enabled() and library is not None,
        "path": path,
        "cache_hit": hit if library is not None else None,
        "size_bytes": (
            os.path.getsize(path) if path is not None and os.path.exists(path) else None
        ),
        "source_bytes": len(source),
        "source_digest": _native.source_digest(source),
        "functions": 3,
    }


_SWEEP_PROTOTYPE = ctypes.CFUNCTYPE(
    None,
    ctypes.c_void_p,  # values
    ctypes.c_int64,  # num_words
    ctypes.c_void_p,  # lane mask
)


def bind_sweep(kernel: ctypes.CDLL, flat: np.ndarray, num_words: int, mask: np.ndarray):
    """Bind ``cg_zd_sweep`` to fixed buffers and return a 0-arg call.

    Same contract as :func:`repro.simulation._native.bind_sweep`: the caller
    guarantees the arrays outlive the closure and are never reallocated, so
    the raw data pointers are captured once and the per-sweep ctypes
    marshalling cost stays off the hot path.
    """
    sweep = _SWEEP_PROTOTYPE(("cg_zd_sweep", kernel))
    arguments = (flat.ctypes.data, num_words, mask.ctypes.data)

    def call() -> None:
        sweep(*arguments)

    return call
