"""Logic simulation engines.

Two complementary simulators are provided, matching the two-phase simulation
strategy of the paper (Section IV):

* :class:`~repro.simulation.zero_delay.ZeroDelaySimulator` — a cycle-based,
  zero-delay simulator.  It is bit-parallel: every net value is a Python
  integer whose bit *k* belongs to an independent simulation lane, so one
  pass over the gates advances up to hundreds of statistically independent
  chains at once.  It is used (a) to advance the circuit state cheaply during
  the independence interval and (b) with many lanes for the long-run
  reference ("SIM") power estimate.
* :class:`~repro.simulation.event_driven.EventDrivenSimulator` — a
  general-delay, event-driven simulator that counts every transition,
  including glitches, for the cycles in which power is actually sampled.

Both simulators are backend-switching facades: a scalar/big-int engine for
narrow ensembles and a word-sliced numpy engine
(:class:`~repro.simulation.vectorized.VectorizedZeroDelaySimulator`,
:class:`~repro.simulation.vectorized_timing.VectorizedEventDrivenSimulator`)
that advances all chains and lanes together.
"""

from repro.simulation.activity import ActivityRecord, collect_activity
from repro.simulation.compiled import CompiledCircuit, CompiledGate
from repro.simulation.delay_models import (
    DelayModel,
    FanoutDelay,
    TypeTableDelay,
    UnitDelay,
    ZeroDelay,
    quantize_delays,
)
from repro.simulation.event_driven import EventDrivenSimulator, resolve_event_backend
from repro.simulation.power_engines import EventDrivenPowerEngine, ZeroDelayPowerEngine
from repro.simulation.vectorized import VectorizedZeroDelaySimulator
from repro.simulation.vectorized_timing import VectorizedEventDrivenSimulator
from repro.simulation.zero_delay import ZeroDelaySimulator, resolve_backend

__all__ = [
    "EventDrivenPowerEngine",
    "ZeroDelayPowerEngine",
    "CompiledCircuit",
    "CompiledGate",
    "DelayModel",
    "UnitDelay",
    "ZeroDelay",
    "FanoutDelay",
    "TypeTableDelay",
    "EventDrivenSimulator",
    "ZeroDelaySimulator",
    "VectorizedZeroDelaySimulator",
    "VectorizedEventDrivenSimulator",
    "resolve_backend",
    "resolve_event_backend",
    "quantize_delays",
    "ActivityRecord",
    "collect_activity",
]
