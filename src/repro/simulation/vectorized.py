"""Word-sliced, array-backed zero-delay simulator.

This is the numpy backend of :class:`~repro.simulation.zero_delay.ZeroDelaySimulator`.
Where the big-int backend packs all simulation lanes into one Python integer
per net, this engine stores each net as a row of ``num_words`` ``uint64``
words — lane *k* of net *i* lives in bit ``k % 64`` of ``words[i, k // 64]``
— so the whole Monte Carlo ensemble advances through one gate sweep with
C-speed bitwise operations instead of per-gate Python big-int arithmetic.

Three sweep strategies share the same word tables:

* **grouped numpy** (always available): gates are levelized and grouped by
  reduction kind (AND-like, OR-like, XOR-like); each group is evaluated with
  one gather / one ``ufunc.reduce`` / one scatter, so the interpreter cost is
  per *level group*, not per gate;
* **generic compiled kernel** (optional, see :mod:`repro.simulation._native`):
  a small C routine runs the topologically ordered gate list directly over the
  same flat word buffer, removing the remaining per-group dispatch overhead;
* **per-program codegen kernel** (optional, see
  :mod:`repro.simulation.codegen`, requested via ``sweep="codegen"``): C
  generated *for this specific circuit* with every gate a literal expression,
  removing even the generic kernel's per-gate opcode dispatch and CSR gather.

Transition counting uses ``np.bitwise_count`` over the XOR of consecutive
settled states, either aggregated over all lanes (:meth:`step_and_measure`)
or resolved per lane (:meth:`step_and_measure_lanes`) for the multi-chain
sampler, which needs one power sample per chain.

Input patterns are accepted either in the lane-packed integer form used by
the big-int backend, or as ``(num_inputs, num_words)`` uint64 word arrays
(the fast path used by :class:`~repro.core.batch_sampler.BatchPowerSampler`).

All width-independent tables (level groups, native sweep tables, constant
rows) come from the shared :class:`~repro.circuits.program.CircuitProgram`
lowering; this engine only derives the width-dependent gather/scatter index
vectors and owns the lane-word storage.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simulation import _native
from repro.utils.bitpack import (
    bits_to_words,
    lane_mask_words,
    pack_int_to_words,
    unpack_words_to_int,
    words_per_width,
)
from repro.utils.rng import RandomSource, spawn_rng

__all__ = [
    "VectorizedZeroDelaySimulator",
    "bits_to_words",
    "lane_mask_words",
    "pack_int_to_words",
    "unpack_words_to_int",
    "words_per_width",
]

_REDUCERS = {
    _native.OP_AND: np.bitwise_and,
    _native.OP_OR: np.bitwise_or,
    _native.OP_XOR: np.bitwise_xor,
}


class _LevelGroup:
    """One gather/reduce/scatter unit of the grouped-numpy sweep."""

    __slots__ = ("reducer", "gather", "shape", "out_invert", "scatter", "buffer", "acc")

    def __init__(self, reducer, gather, shape, out_invert, scatter):
        self.reducer = reducer
        self.gather = gather
        self.shape = shape
        self.out_invert = out_invert  # (G, 1) uint64 or None
        self.scatter = scatter
        self.buffer = np.empty(gather.size, dtype=np.uint64)
        self.acc = np.empty((shape[0], shape[2]), dtype=np.uint64)


class VectorizedZeroDelaySimulator:
    """Cycle-based zero-delay simulator over word-sliced uint64 lane arrays.

    Mirrors the public API and semantics of the big-int
    :class:`~repro.simulation.zero_delay.ZeroDelaySimulator` (same RNG
    consumption, same cycle ordering, same return values) so the two are
    interchangeable backends.
    """

    backend = "numpy"

    #: Sweep strategy choices.  "auto" is the classic numpy backend: the
    #: generic native kernel when available, else grouped numpy.  "codegen"
    #: (the ``compiled`` facade backend) asks for the per-program generated
    #: kernel first and degrades codegen -> native -> groups, so a missing
    #: compiler never fails construction.  "native" and "groups" pin the
    #: generic kernel / pure-numpy strategies (tests and benchmarks).
    SWEEPS = ("auto", "codegen", "native", "groups")

    def __init__(
        self,
        circuit,
        width: int = 1,
        node_capacitance: Sequence[float] | None = None,
        sweep: str = "auto",
    ):
        # Imported lazily: the program module imports from repro.simulation,
        # so a module-level import here would be circular.
        from repro.circuits.program import CircuitProgram

        if width < 1:
            raise ValueError("width must be at least 1")
        self.program = CircuitProgram.of(circuit)
        self.circuit = self.program.circuit
        circuit = self.circuit
        self.width = width
        self.num_words = words_per_width(width)
        self.mask = (1 << width) - 1
        if node_capacitance is None:
            self.node_capacitance = [1.0] * circuit.num_nets
        else:
            if len(node_capacitance) != circuit.num_nets:
                raise ValueError(
                    "node_capacitance must have one entry per net "
                    f"({circuit.num_nets}), got {len(node_capacitance)}"
                )
            self.node_capacitance = [float(value) for value in node_capacitance]
        self._caps = np.asarray(self.node_capacitance, dtype=np.float64)
        self._mask_words = lane_mask_words(width)
        self._partial_last_word = bool(width % 64)

        num_nets = circuit.num_nets
        num_words = self.num_words
        # Two virtual rows behind the real nets: an all-ones row (AND-group
        # fan-in padding) and an all-zeros row (OR/XOR-group padding).  The
        # program's group plans are padded with exactly these row ids.
        self._row_one = self.program.row_one
        self._row_zero = self.program.row_zero
        self._flat = np.zeros((num_nets + 2) * num_words, dtype=np.uint64)
        self.words = self._flat[: num_nets * num_words].reshape(num_nets, num_words)
        self._flat[self._row_one * num_words : (self._row_one + 1) * num_words] = self._mask_words

        word_span = np.arange(num_words, dtype=np.intp)
        self._latch_q_rows = np.asarray(circuit.latch_q, dtype=np.intp)
        self._latch_d_rows = np.asarray(circuit.latch_d, dtype=np.intp)
        self._input_rows = np.asarray(circuit.primary_inputs, dtype=np.intp)
        self._input_flat = (self._input_rows[:, None] * num_words + word_span).reshape(-1)
        self._latch_q_flat = (self._latch_q_rows[:, None] * num_words + word_span).reshape(-1)
        self._latch_d_flat = (self._latch_d_rows[:, None] * num_words + word_span).reshape(-1)

        self._const_rows = self.program.const_rows
        # The compiled kernels and the grouped-numpy schedule are alternative
        # sweep strategies; only materialise the (index-table heavy) groups
        # when no kernel is available.
        if sweep not in self.SWEEPS:
            raise ValueError(f"unknown sweep strategy {sweep!r}; choose from {self.SWEEPS}")
        self._native_call = None
        self.sweep = "groups"
        if sweep == "codegen":
            self._native_call = self._build_codegen_call()
            if self._native_call is not None:
                self.sweep = "codegen"
        if self._native_call is None and sweep in ("auto", "codegen", "native"):
            self._native_call = self._build_native_call()
            if self._native_call is not None:
                self.sweep = "native"
        self._groups = self._build_groups() if self._native_call is None else None
        self._prev = np.empty_like(self.words)
        self._diff = np.empty_like(self.words)
        self._toggle_words = np.empty_like(self.words, dtype=np.uint8)
        self._toggles = np.empty(num_nets, dtype=np.float64)

        self._settled = False
        self.cycles_simulated = 0
        self.reset()

    # ------------------------------------------------------------- schedules
    def _build_groups(self) -> list[_LevelGroup]:
        """Derive the width-dependent gather/scatter units from the program plan."""
        num_words = self.num_words
        word_span = np.arange(num_words, dtype=np.intp)
        groups = []
        for plan in self.program.level_groups:
            gather = (plan.rows[:, :, None] * num_words + word_span).reshape(-1)
            scatter = (plan.outs[:, None] * num_words + word_span).reshape(-1)
            groups.append(
                _LevelGroup(
                    reducer=_REDUCERS[plan.opcode],
                    gather=gather,
                    shape=(plan.rows.shape[0], plan.rows.shape[1], num_words),
                    out_invert=plan.out_invert,
                    scatter=scatter,
                )
            )
        return groups

    def _build_codegen_call(self):
        # Imported lazily: codegen imports from this package at module scope.
        from repro.simulation import codegen

        kernel = codegen.load_program_kernel(self.program)
        if kernel is None:
            return None
        return codegen.bind_sweep(kernel, self._flat, int(self.num_words), self._mask_words)

    def _build_native_call(self):
        kernel = _native.load_kernel()
        if kernel is None:
            return None
        program = self.program
        # The table arrays live on the shared program; bind their raw
        # pointers once so the per-sweep call avoids ctypes argument
        # marshalling on the hot path.
        self._native_arrays = (
            program.sweep_ops,
            program.sweep_out_rows,
            program.sweep_in_ptr,
            program.sweep_in_rows,
        )
        return _native.bind_sweep(
            kernel,
            self._flat,
            int(self.num_words),
            int(program.num_sweep_gates),
            *self._native_arrays,
            self._mask_words,
        )

    # ----------------------------------------------------------------- state
    def reset(self, latch_state: int | Sequence[int] | None = None) -> None:
        """Reset all nets to 0 and load *latch_state* into the flip-flops.

        Accepts the same forms as the big-int backend: ``None`` (declared
        init values), a scalar integer broadcast across lanes, or one
        lane-packed integer per latch.
        """
        self.words[:] = 0
        for row, is_one in self._const_rows:
            self.words[row] = self._mask_words if is_one else 0
        if latch_state is None:
            packed = [
                self._mask_words if init else np.zeros(self.num_words, dtype=np.uint64)
                for init in self.circuit.latch_init
            ]
        elif isinstance(latch_state, int):
            packed = [
                self._mask_words
                if (latch_state >> i) & 1
                else np.zeros(self.num_words, dtype=np.uint64)
                for i in range(self.circuit.num_latches)
            ]
        else:
            if len(latch_state) != self.circuit.num_latches:
                raise ValueError(f"latch_state must have {self.circuit.num_latches} entries")
            packed = [
                pack_int_to_words(int(value) & self.mask, self.num_words)
                for value in latch_state
            ]
        for row, value in zip(self._latch_q_rows, packed):
            self.words[row] = value
        self._settled = False
        self.cycles_simulated = 0

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load an independent uniform-random state into every latch of every lane.

        Draws exactly the same RNG stream as the big-int backend (one
        ``integers(0, 2, size=width)`` call per latch) so the two backends
        are reproducible from the same seed.
        """
        generator = spawn_rng(rng)
        for row in self._latch_q_rows:
            bits = generator.integers(0, 2, size=self.width, dtype="uint8")
            self.words[row] = bits_to_words(bits, self.num_words)
        self._settled = False

    def load_latch_lanes(self, latch_words: np.ndarray) -> None:
        """Load externally drawn latch bits (see the facade's docstring)."""
        latch_words = np.asarray(latch_words, dtype=np.uint64)
        if latch_words.shape != (self.circuit.num_latches, self.num_words):
            raise ValueError(
                f"expected latch words of shape "
                f"({self.circuit.num_latches}, {self.num_words}), got {latch_words.shape}"
            )
        self.words[self._latch_q_rows] = latch_words & self._mask_words
        self._settled = False

    def get_state(self) -> dict:
        """Snapshot the word matrix (checkpoint support; owns its storage)."""
        return {
            "backend": "numpy",
            "words": self.words.copy(),
            "settled": self._settled,
            "cycles": self.cycles_simulated,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` (same backend only)."""
        if state.get("backend") != "numpy":
            raise ValueError(
                f"cannot restore a {state.get('backend')!r} snapshot into a numpy simulator"
            )
        if state["words"].shape != self.words.shape:
            raise ValueError("snapshot does not match this circuit/width")
        self.words[:] = state["words"]
        self._settled = state["settled"]
        self.cycles_simulated = state["cycles"]

    @property
    def values(self) -> list[int]:
        """Current net values as lane-packed integers (big-int compatible view)."""
        return [unpack_words_to_int(self.words[row]) for row in range(self.circuit.num_nets)]

    def latch_state(self) -> list[int]:
        """Return the current lane-packed value of every latch output."""
        return [unpack_words_to_int(self.words[row]) for row in self._latch_q_rows]

    def latch_state_scalar(self, lane: int = 0) -> int:
        """Return the state of one lane as an integer (bit *i* = latch *i*)."""
        word, bit = divmod(lane, 64)
        state = 0
        for i, row in enumerate(self._latch_q_rows):
            state |= ((int(self.words[row, word]) >> bit) & 1) << i
        return state

    def net_value(self, name: str, lane: int = 0) -> int:
        """Return the current value (0/1) of net *name* in *lane*."""
        word, bit = divmod(lane, 64)
        return (int(self.words[self.circuit.net_id(name), word]) >> bit) & 1

    # ------------------------------------------------------------- evaluation
    def _pattern_words(self, pattern) -> np.ndarray:
        """Coerce a pattern (packed ints or a word array) to (num_inputs, W)."""
        if isinstance(pattern, np.ndarray) and pattern.dtype == np.uint64:
            if pattern.shape != (self.circuit.num_inputs, self.num_words):
                raise ValueError(
                    f"pattern words must have shape "
                    f"({self.circuit.num_inputs}, {self.num_words}), got {pattern.shape}"
                )
            if not self._partial_last_word:
                return pattern
            return pattern & self._mask_words
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        words = np.empty((self.circuit.num_inputs, self.num_words), dtype=np.uint64)
        for index, value in enumerate(pattern):
            words[index] = pack_int_to_words(int(value) & self.mask, self.num_words)
        return words

    def apply_inputs(self, pattern) -> None:
        """Drive the primary inputs with *pattern* (packed ints or word array)."""
        self._flat[self._input_flat] = self._pattern_words(pattern).reshape(-1)

    def evaluate(self) -> None:
        """Propagate the combinational logic (one word-sliced gate sweep)."""
        if self._native_call is not None:
            self._native_call()
        else:
            flat = self._flat
            partial = self._partial_last_word
            mask = self._mask_words
            for group in self._groups:
                np.take(flat, group.gather, out=group.buffer)
                inputs = group.buffer.reshape(group.shape)
                group.reducer.reduce(inputs, axis=1, out=group.acc)
                if group.out_invert is not None:
                    np.bitwise_xor(group.acc, group.out_invert, out=group.acc)
                    if partial:
                        np.bitwise_and(group.acc, mask, out=group.acc)
                flat[group.scatter] = group.acc.reshape(-1)
        self._settled = True

    def clock(self) -> None:
        """Clock edge: copy each latch's settled D value onto its Q output."""
        captured = self._flat.take(self._latch_d_flat)
        self._flat[self._latch_q_flat] = captured
        self._settled = False

    def settle(self, pattern) -> None:
        """Apply *pattern* and settle the logic without counting transitions."""
        self.apply_inputs(pattern)
        self.evaluate()

    def step(self, pattern) -> None:
        """Advance one clock cycle without measuring power."""
        if not self._settled:
            self.evaluate()
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self.cycles_simulated += 1

    def _advance_and_diff(self, pattern) -> np.ndarray:
        if not self._settled:
            self.evaluate()
        np.copyto(self._prev, self.words)
        self.clock()
        self.apply_inputs(pattern)
        self.evaluate()
        self.cycles_simulated += 1
        np.bitwise_xor(self._prev, self.words, out=self._diff)
        return self._diff

    def step_and_measure(self, pattern) -> float:
        """Advance one clock cycle and return the lane-summed switched capacitance."""
        diff = self._advance_and_diff(pattern)
        np.bitwise_count(diff, out=self._toggle_words)
        self._toggle_words.sum(axis=1, dtype=np.float64, out=self._toggles)
        return float(self._caps @ self._toggles)

    def step_and_measure_lanes(self, pattern) -> np.ndarray:
        """Advance one clock cycle; return the switched capacitance of every lane.

        This is the per-chain measurement the multi-chain Monte Carlo sampler
        is built on: one gate sweep yields ``width`` independent power
        observations.
        """
        diff = self._advance_and_diff(pattern)
        bits = np.unpackbits(
            diff.view(np.uint8).reshape(self.circuit.num_nets, -1),
            axis=1,
            bitorder="little",
        )[:, : self.width]
        return self._caps @ bits

    def step_and_count(self, pattern) -> list[int]:
        """Advance one cycle and return the per-net toggle count (summed over lanes)."""
        diff = self._advance_and_diff(pattern)
        return [int(count) for count in np.bitwise_count(diff).sum(axis=1)]

    # --------------------------------------------------------------- sequences
    def run(self, patterns: Sequence, measure: bool = True) -> list[float]:
        """Run one cycle per pattern; return the switched capacitance per cycle."""
        energies: list[float] = []
        for pattern in patterns:
            if measure:
                energies.append(self.step_and_measure(pattern))
            else:
                self.step(pattern)
        return energies
