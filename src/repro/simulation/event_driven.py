"""Event-driven general-delay simulator with glitch-aware transition counting.

The independence-interval machinery of the paper only needs cheap zero-delay
simulation, but the power *samples* are taken with a general-delay simulator
so that hazard/glitch transitions contribute to the switched capacitance.
This module implements a transport-delay event-driven simulator over scalar
(single-chain) logic values:

1. At the start of a cycle the latch outputs take their newly captured values
   and the primary inputs take the new pattern; every net that changes seeds
   an event at time 0.
2. Events are processed in time order.  When a net actually changes value the
   transition is counted (capacitance-weighted) and the gates it feeds are
   re-evaluated; their outputs are scheduled ``delay(gate)`` later.
3. The cycle ends when the event queue drains; because the combinational
   block is acyclic the queue always drains.

With a :class:`~repro.simulation.delay_models.ZeroDelay` model the counted
transitions match the zero-delay simulator exactly (a property exercised by
the test suite); with unequal delays reconvergent paths produce additional
glitch transitions.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.netlist.cell_library import evaluate_gate_bitparallel
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import DelayModel, FanoutDelay
from repro.utils.rng import RandomSource, spawn_rng


class EventDrivenSimulator:
    """General-delay event-driven simulator (single chain, scalar values).

    Parameters
    ----------
    circuit:
        Compiled circuit to simulate.
    delay_model:
        Gate delay model; defaults to :class:`FanoutDelay`.
    node_capacitance:
        Optional per-net capacitance (farads); defaults to 1.0 per net so the
        simulator reports raw transition counts.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        delay_model: DelayModel | None = None,
        node_capacitance: Sequence[float] | None = None,
    ):
        self.circuit = circuit
        self.delay_model = delay_model or FanoutDelay()
        self.gate_delays = self.delay_model.delays(circuit)
        if node_capacitance is None:
            self.node_capacitance = [1.0] * circuit.num_nets
        else:
            if len(node_capacitance) != circuit.num_nets:
                raise ValueError(
                    "node_capacitance must have one entry per net "
                    f"({circuit.num_nets}), got {len(node_capacitance)}"
                )
            self.node_capacitance = list(node_capacitance)
        self.values: list[int] = [0] * circuit.num_nets
        self.transition_counts: list[int] = [0] * circuit.num_nets
        self.cycles_simulated = 0
        self._sequence = 0
        self.reset()

    # ----------------------------------------------------------------- state
    def reset(self, latch_state: int | None = None) -> None:
        """Reset nets to 0, load *latch_state* (or init values) and clear counters."""
        self.values = [0] * self.circuit.num_nets
        if latch_state is None:
            bits = self.circuit.latch_init
        else:
            bits = [(latch_state >> i) & 1 for i in range(self.circuit.num_latches)]
        for q_id, bit in zip(self.circuit.latch_q, bits):
            self.values[q_id] = bit
        self.transition_counts = [0] * self.circuit.num_nets
        self.cycles_simulated = 0
        self._settled = False

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load a uniform-random state into the latches."""
        generator = spawn_rng(rng)
        for q_id in self.circuit.latch_q:
            self.values[q_id] = int(generator.integers(0, 2))
        self._settled = False

    def load_settled_state(self, values: Sequence[int]) -> None:
        """Adopt an externally settled network (e.g. from the zero-delay simulator).

        Used by the two-phase sampler: the cheap zero-delay simulator advances
        the circuit through the independence interval, then its settled net
        values are loaded here so the sampled cycle can be re-simulated with
        general delays (glitches included) from the correct starting network.
        """
        if len(values) != self.circuit.num_nets:
            raise ValueError(f"expected {self.circuit.num_nets} net values, got {len(values)}")
        self.values = [value & 1 for value in values]
        self._settled = True

    def latch_state_scalar(self) -> int:
        """Return the present state as an integer (bit *i* = latch *i*)."""
        state = 0
        for i, q_id in enumerate(self.circuit.latch_q):
            state |= (self.values[q_id] & 1) << i
        return state

    def net_value(self, name: str) -> int:
        """Return the current settled value (0/1) of net *name*."""
        return self.values[self.circuit.net_id(name)]

    # ------------------------------------------------------------- evaluation
    def _evaluate_gate(self, gate_index: int) -> int:
        gate = self.circuit.gates[gate_index]
        operands = [self.values[src] for src in gate.inputs]
        return evaluate_gate_bitparallel(gate.gate_type, operands, mask=1)

    def settle(self, pattern: Sequence[int]) -> None:
        """Drive *pattern*, settle the logic, count nothing.

        Used to establish the initial settled network before the first
        measured cycle (mirrors :meth:`ZeroDelaySimulator.settle`).
        """
        self._apply_pattern(pattern)
        for gate_index in range(len(self.circuit.gates)):
            gate = self.circuit.gates[gate_index]
            self.values[gate.output] = self._evaluate_gate(gate_index)
        self._settled = True

    def _apply_pattern(self, pattern: Sequence[int]) -> list[int]:
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        changed = []
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            bit = value & 1
            if self.values[pi_id] != bit:
                changed.append((pi_id, bit))
            self.values[pi_id] = bit
        return changed

    def cycle(self, pattern: Sequence[int]) -> float:
        """Simulate one full clock cycle and return the switched capacitance.

        The cycle consists of the clock edge (latch outputs take the D values
        settled at the end of the previous cycle), application of the new
        input *pattern*, and event-driven propagation until quiescence.  Every
        transition — functional or glitch — adds its net's capacitance.

        Events are processed one *time point* at a time: all net updates
        scheduled for the same instant are applied together (a net changes at
        most once per instant), then the affected gates are evaluated.
        Zero-delay gates are resolved within the same time point in
        topological order, so with a pure zero-delay model the counted
        transitions equal the functional (zero-delay simulator) transitions;
        positive, unequal delays expose hazard glitches on reconvergent paths.
        """
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        if not self._settled:
            # Establish a settled network from the current (reset) values with
            # an all-unchanged pseudo-pattern so the first cycle has a
            # well-defined "previous" state.
            self.settle([self.values[pi] for pi in self.circuit.primary_inputs])

        # Clock edge: capture settled D values.
        new_q = [self.values[d_id] for d_id in self.circuit.latch_d]

        events: list[tuple[float, int, int, int]] = []
        self._sequence = 0

        def schedule(time: float, net_id: int, value: int) -> None:
            self._sequence += 1
            heapq.heappush(events, (time, self._sequence, net_id, value))

        for q_id, value in zip(self.circuit.latch_q, new_q):
            if self.values[q_id] != value:
                schedule(0.0, q_id, value)
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            bit = value & 1
            if self.values[pi_id] != bit:
                schedule(0.0, pi_id, bit)

        switched = 0.0
        values = self.values
        capacitance = self.node_capacitance
        counts = self.transition_counts
        fanout_gates = self.circuit.fanout_gates
        gates = self.circuit.gates
        delays = self.gate_delays

        while events:
            current_time = events[0][0]
            # Gather every event scheduled for this instant; the last scheduled
            # value per net wins (it was computed with the freshest inputs).
            pending: dict[int, int] = {}
            while events and events[0][0] == current_time:
                _time, _seq, net_id, value = heapq.heappop(events)
                pending[net_id] = value

            # Apply the updates of this instant and collect the gates to
            # (re-)evaluate, keyed by gate index so they run in topological
            # order — zero-delay gates cascade within the same instant.
            affected: set[int] = set()
            for net_id, value in pending.items():
                if values[net_id] == value:
                    continue
                values[net_id] = value
                counts[net_id] += 1
                switched += capacitance[net_id]
                affected.update(fanout_gates[net_id])

            # Gate indices are topological, and a gate's fanout always has a
            # larger index, so a min-heap of gate indices evaluates this
            # instant's cone of influence in topological order.
            worklist = list(affected)
            heapq.heapify(worklist)
            queued = set(worklist)
            while worklist:
                gate_index = heapq.heappop(worklist)
                queued.discard(gate_index)
                gate = gates[gate_index]
                operands = [values[src] for src in gate.inputs]
                new_output = evaluate_gate_bitparallel(gate.gate_type, operands, mask=1)
                delay = delays[gate_index]
                if delay == 0.0:
                    if values[gate.output] != new_output:
                        values[gate.output] = new_output
                        counts[gate.output] += 1
                        switched += capacitance[gate.output]
                        for successor in fanout_gates[gate.output]:
                            if successor not in queued:
                                heapq.heappush(worklist, successor)
                                queued.add(successor)
                else:
                    schedule(current_time + delay, gate.output, new_output)

        self.cycles_simulated += 1
        return switched

    def run(self, patterns: Sequence[Sequence[int]]) -> list[float]:
        """Simulate one cycle per pattern; return per-cycle switched capacitance."""
        return [self.cycle(pattern) for pattern in patterns]

    # ------------------------------------------------------------- statistics
    def total_transitions(self) -> int:
        """Total number of transitions counted since the last reset."""
        return sum(self.transition_counts)

    def transition_density(self) -> list[float]:
        """Average transitions per cycle for every net (0.0 if nothing simulated)."""
        if self.cycles_simulated == 0:
            return [0.0] * self.circuit.num_nets
        return [count / self.cycles_simulated for count in self.transition_counts]
