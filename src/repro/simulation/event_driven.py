"""Event-driven general-delay simulation with glitch-aware transition counting.

The independence-interval machinery of the paper only needs cheap zero-delay
simulation, but the power *samples* are taken with a general-delay simulator
so that hazard/glitch transitions contribute to the switched capacitance.
:class:`EventDrivenSimulator` is the backend-switching facade over two
interchangeable engines:

* ``"scalar"`` — the transport-delay event loop in this module: one chain,
  one Python ``heapq`` of pending net updates.  Lowest constant overhead for
  a single trajectory, and the executable specification the vectorized
  engine is pinned against.
* ``"numpy"`` — :class:`~repro.simulation.vectorized_timing.VectorizedEventDrivenSimulator`,
  which advances ``width`` independent chains through one shared time wheel,
  re-evaluating the active gate frontier with grouped ufuncs (or a compiled
  kernel) over ``(num_nets, num_words)`` uint64 lane words.

Both engines schedule on the same *integer tick* time base (see
:func:`~repro.simulation.delay_models.quantize_delays`): float delay sums
along reconvergent paths would make "same instant" depend on rounding, and
the two backends must group simultaneous events identically to count the
same glitch transitions.  With a :class:`~repro.simulation.delay_models.ZeroDelay`
model the counted transitions match the zero-delay simulator exactly (a
property exercised by the test suite); with unequal delays reconvergent
paths produce additional glitch transitions.

The per-cycle algorithm (identical in both backends):

1. At the clock edge the latch outputs take their newly captured values and
   the primary inputs take the new pattern; every net that changes seeds an
   event at tick 0.
2. Events are processed one time point at a time.  When a net actually
   changes value the transition is counted (capacitance-weighted) and the
   gates it feeds are re-evaluated; their outputs are scheduled
   ``delay(gate)`` later.  Zero-delay gates cascade within the same instant
   in topological order.
3. The cycle ends when the event queue drains; because the combinational
   block is acyclic the queue always drains.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.netlist.cell_library import evaluate_gate_bitparallel
from repro.simulation.backends import resolve_backend_choice
from repro.simulation.delay_models import DelayModel, FanoutDelay
from repro.utils.rng import RandomSource, spawn_rng

#: Backends accepted by :class:`EventDrivenSimulator`.  ``"compiled"`` is the
#: numpy engine evaluating gate frontiers through the per-program codegen
#: kernel (:mod:`repro.simulation.codegen`); it degrades to the generic
#: kernel / grouped numpy when no compiler is available, so its results are
#: always bit-identical to ``"numpy"``.
EVENT_BACKENDS = ("auto", "scalar", "numpy", "compiled")


def resolve_event_backend(backend: str, width: int) -> str:
    """Resolve a user-facing backend choice to ``"scalar"`` or ``"numpy"``.

    The scalar engine carries one chain; ``"auto"`` therefore selects it only
    for ``width == 1`` and the vectorized engine for every wider ensemble.
    """
    if backend == "scalar" and width > 1:
        raise ValueError("the scalar event-driven backend is single-chain (width must be 1)")
    return resolve_backend_choice(
        backend, width, options=EVENT_BACKENDS, narrow="scalar", wide="numpy", wide_threshold=2
    )


class EventDrivenSimulator:
    """General-delay event-driven simulator over *width* parallel chains.

    Parameters
    ----------
    circuit:
        Compiled circuit to simulate.
    delay_model:
        Gate delay model; defaults to :class:`FanoutDelay`.
    node_capacitance:
        Optional per-net capacitance (farads); defaults to 1.0 per net so the
        simulator reports raw transition counts.  Sequences and numpy arrays
        are both accepted and held as a float64 array without list copies.
    width:
        Number of independent simulation chains (lanes) advanced per cycle.
    backend:
        ``"scalar"``, ``"numpy"``, ``"compiled"`` or ``"auto"`` (scalar at
        width 1, numpy otherwise).  All backends count identical transitions
        for identical stimuli, lane for lane; ``"compiled"`` only differs
        from ``"numpy"`` in how gate frontiers are evaluated.
    """

    def __init__(
        self,
        circuit,
        delay_model: DelayModel | None = None,
        node_capacitance: Sequence[float] | np.ndarray | None = None,
        width: int = 1,
        backend: str = "auto",
        wavefront_compaction: bool = True,
    ):
        # Imported lazily: the program module imports from repro.simulation.
        from repro.circuits.program import CircuitProgram, node_capacitance_array

        if width < 1:
            raise ValueError("width must be at least 1")
        self.program = CircuitProgram.of(circuit)
        circuit = self.circuit = self.program.circuit
        self.width = width
        self.delay_model = delay_model or FanoutDelay()
        self.backend = resolve_event_backend(backend, width)
        # One memoized quantization per (program, delay model): the public
        # gate_delays/ticks always describe the delays actually simulated.
        schedule = self.program.delay_schedule(self.delay_model)
        self.gate_delays = list(schedule.delays)
        self.gate_ticks = [int(tick) for tick in schedule.ticks]
        self.tick = schedule.tick
        self.node_capacitance = node_capacitance_array(self.program, node_capacitance)

        self._vec = None
        if self.backend in ("numpy", "compiled"):
            from repro.simulation.vectorized_timing import VectorizedEventDrivenSimulator

            self._vec = VectorizedEventDrivenSimulator(
                self.program,
                delay_model=self.delay_model,
                node_capacitance=self.node_capacitance,
                width=width,
                schedule=schedule,
                wavefront_compaction=wavefront_compaction,
                codegen=self.backend == "compiled",
            )
            return

        # Scalar-backend state.  The per-net capacitance stays exposed as an
        # array; the event loop reads a cached list view (scalar indexing of
        # numpy arrays would dominate the hot path).
        self._cap_list: list[float] = self.node_capacitance.tolist()
        self._values: list[int] = [0] * circuit.num_nets
        self._transition_counts: list[int] = [0] * circuit.num_nets
        self._cycles = 0
        self._sequence = 0
        self.reset()

    # ----------------------------------------------------------------- state
    @property
    def values(self) -> list[int]:
        """Lane-packed value of every net (0/1 per net on the scalar backend)."""
        if self._vec is not None:
            return self._vec.values
        return self._values

    @values.setter
    def values(self, new_values: list[int]) -> None:
        if self._vec is not None:
            raise AttributeError("values is read-only with the numpy backend")
        self._values = new_values

    @property
    def cycles_simulated(self) -> int:
        """Number of measured clock cycles since the last reset."""
        if self._vec is not None:
            return self._vec.cycles_simulated
        return self._cycles

    @cycles_simulated.setter
    def cycles_simulated(self, count: int) -> None:
        if self._vec is not None:
            self._vec.cycles_simulated = count
        else:
            self._cycles = count

    @property
    def transition_counts(self) -> np.ndarray:
        """Per-net transition count since the last reset (summed over lanes)."""
        if self._vec is not None:
            return self._vec.transition_counts
        return np.asarray(self._transition_counts, dtype=np.int64)

    def reset(self, latch_state: int | None = None) -> None:
        """Reset nets to 0, load *latch_state* (or init values) and clear counters."""
        if self._vec is not None:
            self._vec.reset(latch_state)
            return
        self.values = [0] * self.circuit.num_nets
        if latch_state is None:
            bits = self.circuit.latch_init
        else:
            bits = [(latch_state >> i) & 1 for i in range(self.circuit.num_latches)]
        for q_id, bit in zip(self.circuit.latch_q, bits):
            self.values[q_id] = bit
        self._transition_counts = [0] * self.circuit.num_nets
        self.cycles_simulated = 0
        self._settled = False

    def randomize_state(self, rng: RandomSource = None) -> None:
        """Load a uniform-random state into the latches of every lane.

        Draws one ``integers(0, 2, size=width)`` call per latch — the same
        stream as the vectorized backend, so the two are reproducible from
        the same seed at any width.
        """
        if self._vec is not None:
            self._vec.randomize_state(rng)
            return
        generator = spawn_rng(rng)
        for q_id in self.circuit.latch_q:
            self.values[q_id] = int(generator.integers(0, 2, size=1, dtype="uint8")[0])
        self._settled = False

    def load_settled_state(self, values) -> None:
        """Adopt an externally settled network (e.g. from the zero-delay simulator).

        Used by the two-phase sampler: the cheap zero-delay simulator advances
        the circuit through the independence interval, then its settled net
        values are loaded here so the sampled cycle can be re-simulated with
        general delays (glitches included) from the correct starting network.

        Accepts one lane-packed integer per net (any backend) or, on the
        numpy backend, a ``(num_nets, num_words)`` uint64 word matrix.
        """
        if self._vec is not None:
            self._vec.load_settled_state(values)
            return
        if len(values) != self.circuit.num_nets:
            raise ValueError(f"expected {self.circuit.num_nets} net values, got {len(values)}")
        self.values = [int(value) & 1 for value in values]
        self._settled = True

    def get_state(self) -> dict:
        """Snapshot net values and counters (checkpoint support; owns its storage)."""
        if self._vec is not None:
            return self._vec.get_state()
        return {
            "backend": "scalar",
            "values": list(self.values),
            "transition_counts": list(self._transition_counts),
            "settled": self._settled,
            "cycles": self.cycles_simulated,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` (same backend only)."""
        if self._vec is not None:
            self._vec.set_state(state)
            return
        if state.get("backend") != "scalar":
            raise ValueError(
                f"cannot restore a {state.get('backend')!r} snapshot into a scalar simulator"
            )
        if len(state["values"]) != self.circuit.num_nets:
            raise ValueError("snapshot does not match this circuit")
        self.values = list(state["values"])
        self._transition_counts = list(state["transition_counts"])
        self._settled = state["settled"]
        self.cycles_simulated = state["cycles"]

    def latch_state_scalar(self, lane: int = 0) -> int:
        """Return the present state of one lane as an integer (bit *i* = latch *i*)."""
        if self._vec is not None:
            return self._vec.latch_state_scalar(lane)
        if lane != 0:
            raise ValueError("the scalar backend carries a single lane")
        state = 0
        for i, q_id in enumerate(self.circuit.latch_q):
            state |= (self.values[q_id] & 1) << i
        return state

    def net_value(self, name: str, lane: int = 0) -> int:
        """Return the current settled value (0/1) of net *name* in *lane*."""
        if self._vec is not None:
            return self._vec.net_value(name, lane)
        if lane != 0:
            raise ValueError("the scalar backend carries a single lane")
        return self.values[self.circuit.net_id(name)]

    # ------------------------------------------------------------- evaluation
    def _evaluate_gate(self, gate_index: int) -> int:
        gate = self.circuit.gates[gate_index]
        operands = [self.values[src] for src in gate.inputs]
        return evaluate_gate_bitparallel(gate.gate_type, operands, mask=1)

    def settle(self, pattern) -> None:
        """Drive *pattern*, settle the logic, count nothing.

        Used to establish the initial settled network before the first
        measured cycle (mirrors :meth:`ZeroDelaySimulator.settle`).
        """
        if self._vec is not None:
            self._vec.settle(pattern)
            return
        self._apply_pattern(pattern)
        for gate_index in range(len(self.circuit.gates)):
            gate = self.circuit.gates[gate_index]
            self.values[gate.output] = self._evaluate_gate(gate_index)
        self._settled = True

    def _apply_pattern(self, pattern: Sequence[int]) -> None:
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            self.values[pi_id] = int(value) & 1

    def cycle(self, pattern) -> float:
        """Simulate one full clock cycle and return the switched capacitance.

        The cycle consists of the clock edge (latch outputs take the D values
        settled at the end of the previous cycle), application of the new
        input *pattern*, and event-driven propagation until quiescence.  Every
        transition — functional or glitch — adds its net's capacitance.  With
        multiple lanes the return value is summed over lanes (use
        :meth:`cycle_lanes` for per-chain resolution).

        Events are processed one *time point* at a time: all net updates
        scheduled for the same tick are applied together (a net changes at
        most once per tick), then the affected gates are evaluated.
        Zero-delay gates are resolved within the same time point in
        topological order, so with a pure zero-delay model the counted
        transitions equal the functional (zero-delay simulator) transitions;
        positive, unequal delays expose hazard glitches on reconvergent paths.
        """
        if self._vec is not None:
            return self._vec.cycle(pattern)
        if len(pattern) != self.circuit.num_inputs:
            raise ValueError(
                f"pattern must have {self.circuit.num_inputs} entries, got {len(pattern)}"
            )
        if not self._settled:
            # Establish a settled network from the current (reset) values with
            # an all-unchanged pseudo-pattern so the first cycle has a
            # well-defined "previous" state.
            self.settle([self.values[pi] for pi in self.circuit.primary_inputs])

        # Clock edge: capture settled D values.
        new_q = [self.values[d_id] for d_id in self.circuit.latch_d]

        events: list[tuple[int, int, int, int]] = []
        self._sequence = 0

        def schedule(tick: int, net_id: int, value: int) -> None:
            self._sequence += 1
            heapq.heappush(events, (tick, self._sequence, net_id, value))

        for q_id, value in zip(self.circuit.latch_q, new_q):
            if self.values[q_id] != value:
                schedule(0, q_id, value)
        for pi_id, value in zip(self.circuit.primary_inputs, pattern):
            bit = int(value) & 1
            if self.values[pi_id] != bit:
                schedule(0, pi_id, bit)

        switched = 0.0
        values = self.values
        capacitance = self._cap_list
        counts = self._transition_counts
        fanout_gates = self.circuit.fanout_gates
        gates = self.circuit.gates
        ticks = self.gate_ticks

        while events:
            current_tick = events[0][0]
            # Gather every event scheduled for this instant; the last scheduled
            # value per net wins (it was computed with the freshest inputs).
            pending: dict[int, int] = {}
            while events and events[0][0] == current_tick:
                _tick, _seq, net_id, value = heapq.heappop(events)
                pending[net_id] = value

            # Apply the updates of this instant and collect the gates to
            # (re-)evaluate, keyed by gate index so they run in topological
            # order — zero-delay gates cascade within the same instant.
            affected: set[int] = set()
            for net_id, value in pending.items():
                if values[net_id] == value:
                    continue
                values[net_id] = value
                counts[net_id] += 1
                switched += capacitance[net_id]
                affected.update(fanout_gates[net_id])

            # Gate indices are topological, and a gate's fanout always has a
            # larger index, so a min-heap of gate indices evaluates this
            # instant's cone of influence in topological order.
            worklist = list(affected)
            heapq.heapify(worklist)
            queued = set(worklist)
            while worklist:
                gate_index = heapq.heappop(worklist)
                queued.discard(gate_index)
                gate = gates[gate_index]
                operands = [values[src] for src in gate.inputs]
                new_output = evaluate_gate_bitparallel(gate.gate_type, operands, mask=1)
                delay = ticks[gate_index]
                if delay == 0:
                    if values[gate.output] != new_output:
                        values[gate.output] = new_output
                        counts[gate.output] += 1
                        switched += capacitance[gate.output]
                        for successor in fanout_gates[gate.output]:
                            if successor not in queued:
                                heapq.heappush(worklist, successor)
                                queued.add(successor)
                else:
                    schedule(current_tick + delay, gate.output, new_output)

        self.cycles_simulated += 1
        return switched

    def cycle_lanes(self, pattern) -> np.ndarray:
        """Simulate one clock cycle; return each lane's switched capacitance.

        The result has shape ``(width,)``: entry *k* is the capacitance-
        weighted transition count of chain *k* in this cycle — the per-chain
        power observation the multi-chain glitch sampler is built on.
        """
        if self._vec is not None:
            return self._vec.cycle_lanes(pattern)
        return np.array([self.cycle(pattern)], dtype=np.float64)

    def run(self, patterns: Sequence) -> list[float]:
        """Simulate one cycle per pattern; return per-cycle switched capacitance."""
        return [self.cycle(pattern) for pattern in patterns]

    # ------------------------------------------------------------- statistics
    def total_transitions(self) -> int:
        """Total number of transitions counted since the last reset (all lanes)."""
        if self._vec is not None:
            return self._vec.total_transitions()
        return sum(self._transition_counts)

    def transition_density(self) -> np.ndarray:
        """Average transitions per cycle per lane for every net.

        Returns a float64 array (0.0 everywhere if nothing was simulated) on
        every backend, so downstream consumers see one dtype regardless of
        which engine produced the counts.
        """
        if self._vec is not None:
            return self._vec.transition_density()
        if self.cycles_simulated == 0:
            return np.zeros(self.circuit.num_nets, dtype=np.float64)
        counts = np.asarray(self._transition_counts, dtype=np.float64)
        return counts / float(self.cycles_simulated)
