"""Gate delay models for the event-driven (general-delay) simulator.

The paper's flow measures power with a "general-delay" circuit simulator so
that glitch power is captured.  The delay model maps each compiled gate to a
propagation delay in arbitrary time units; only the *relative* delays matter
for transition counting, since every cycle is simulated until the network
settles.

The built-in models register themselves with the delay-model registry
(:func:`repro.api.registry.register_delay_model`), so
:class:`~repro.core.config.EstimationConfig` and serialized
:class:`~repro.api.jobs.JobSpec`s can select them by string key
(``delay_model="fanout"`` and so on); :func:`make_delay_model` resolves a key
to a model instance.  Third-party models registered under new names become
selectable the same way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from math import gcd
from typing import Sequence

from repro.api.registry import get_delay_model, register_delay_model
from repro.netlist.cell_library import GateType
from repro.simulation.compiled import CompiledCircuit, CompiledGate


def quantize_delays(
    delays: Sequence[float], max_denominator: int = 4096
) -> tuple[list[int], float]:
    """Map float gate delays onto integer ticks of a common time quantum.

    Returns ``(ticks, tick_seconds)`` with ``ticks[i] * tick_seconds ==
    delays[i]`` (up to the rational approximation bounded by
    *max_denominator*).  Both event-driven backends schedule on this shared
    integer time base: summing float delays along reconvergent paths would
    make "same instant" depend on rounding, and the scalar and vectorized
    engines must group simultaneous events identically to count the same
    glitches.
    """
    if any(delay < 0 for delay in delays):
        raise ValueError("gate delays must be non-negative")
    fractions = [Fraction(float(delay)).limit_denominator(max_denominator) for delay in delays]
    denominator = 1
    for fraction in fractions:
        denominator = denominator * fraction.denominator // gcd(
            denominator, fraction.denominator
        )
        if denominator > max_denominator:
            break
    if denominator > max_denominator:
        # The joint LCM of many coprime denominators can explode past what
        # int64 tick arithmetic tolerates (arbitrary measured delays).  Fall
        # back to one shared denominator: every delay rounds to the nearest
        # tick, equal delays still get equal ticks, and both backends keep
        # grouping simultaneous events identically.
        denominator = max_denominator
        ticks = [round(float(delay) * denominator) for delay in delays]
    else:
        ticks = [int(fraction * denominator) for fraction in fractions]
    return ticks, 1.0 / denominator


class DelayModel(ABC):
    """Maps a gate (in the context of its circuit) to a propagation delay."""

    @abstractmethod
    def gate_delay(self, circuit: CompiledCircuit, gate: CompiledGate) -> float:
        """Return the propagation delay of *gate* in time units (must be >= 0)."""

    def delays(self, circuit: CompiledCircuit) -> list[float]:
        """Pre-compute the delay of every gate of *circuit* (indexed like ``circuit.gates``)."""
        return [self.gate_delay(circuit, gate) for gate in circuit.gates]


def make_delay_model(name: str, **params) -> DelayModel:
    """Instantiate the delay model registered under *name* (e.g. ``"fanout"``)."""
    return get_delay_model(name)(**params)


@register_delay_model("zero", aliases=("zero-delay",))
class ZeroDelay(DelayModel):
    """All gates switch instantaneously — no glitches are produced."""

    def gate_delay(self, circuit: CompiledCircuit, gate: CompiledGate) -> float:
        return 0.0


@register_delay_model("unit")
class UnitDelay(DelayModel):
    """Every gate has the same delay (default 1.0 time unit)."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def gate_delay(self, circuit: CompiledCircuit, gate: CompiledGate) -> float:
        return self.delay


@register_delay_model("fanout")
class FanoutDelay(DelayModel):
    """Delay grows with the fanout of the gate's output net.

    ``delay = intrinsic + load_factor * fanout`` — a coarse stand-in for a
    loaded-cell timing model; it produces realistic arrival-time skew and
    therefore realistic glitching on reconvergent paths.
    """

    def __init__(self, intrinsic: float = 1.0, load_factor: float = 0.25):
        if intrinsic < 0 or load_factor < 0:
            raise ValueError("delay parameters must be non-negative")
        self.intrinsic = intrinsic
        self.load_factor = load_factor

    def gate_delay(self, circuit: CompiledCircuit, gate: CompiledGate) -> float:
        fanout = circuit.fanout_counts[gate.output]
        return self.intrinsic + self.load_factor * fanout


@register_delay_model("type-table")
class TypeTableDelay(DelayModel):
    """Per-gate-type delay table (e.g. inverters faster than XOR cells)."""

    DEFAULT_TABLE: dict[GateType, float] = {
        GateType.NOT: 0.6,
        GateType.BUFF: 0.6,
        GateType.NAND: 1.0,
        GateType.NOR: 1.1,
        GateType.AND: 1.3,
        GateType.OR: 1.4,
        GateType.XOR: 1.8,
        GateType.XNOR: 1.8,
        GateType.CONST0: 0.0,
        GateType.CONST1: 0.0,
    }

    def __init__(self, table: dict[GateType, float] | None = None, fanin_factor: float = 0.1):
        self.table = dict(self.DEFAULT_TABLE)
        if table:
            self.table.update(table)
        if any(delay < 0 for delay in self.table.values()):
            raise ValueError("delays must be non-negative")
        if fanin_factor < 0:
            raise ValueError("fanin_factor must be non-negative")
        self.fanin_factor = fanin_factor

    def gate_delay(self, circuit: CompiledCircuit, gate: CompiledGate) -> float:
        base = self.table.get(gate.gate_type, 1.0)
        return base + self.fanin_factor * max(0, len(gate.inputs) - 2)
