"""Power-measurement engines, dispatched through the simulator registry.

The samplers (:class:`~repro.core.sampler.PowerSampler`,
:class:`~repro.core.batch_sampler.BatchPowerSampler`) always own a cheap
zero-delay *state engine* that advances the chain ensemble through the
independence interval.  What varies between power engines is how the sampled
cycle itself is measured; that choice is a string key
(``EstimationConfig(power_simulator=...)``) resolved through
:data:`~repro.api.registry.SIMULATOR_REGISTRY`, so new measurement engines
plug in by registration instead of new ``if``/``elif`` arms in every sampler.

Factory contract (what :func:`~repro.api.registry.register_simulator`
documents)::

    factory(program, width=1, node_capacitance=None,
            delay_model=None, backend="auto") -> engine

The returned engine exposes:

* ``measure_lanes(state_engine, pattern) -> np.ndarray`` — advance the state
  engine through one clock cycle driven by *pattern* and return the
  per-lane switched capacitance, shape ``(width,)``;
* ``measure_total(state_engine, pattern) -> float`` — same cycle, lane-summed
  (cheaper when per-chain resolution is not needed);
* ``measure_lanes_with_control(state_engine, pattern) -> (np.ndarray,
  np.ndarray)`` *(optional)* — same cycle measured by **both** this engine
  and the cheap zero-delay state engine on identical lanes; the second array
  is the zero-delay switched capacitance, used as the control variable by
  :class:`repro.variance.control_variate.ControlVariateEstimator`;
* ``engine`` — the underlying simulator object, or ``None`` when measurement
  happens on the state engine itself.

Both built-ins keep the exact cycle semantics the samplers used to inline:
the zero-delay engine measures the functional transitions of the state
engine's own sweep; the event-driven engine re-simulates the sampled cycle
with general delays (glitches included) from the state engine's settled
network, then advances the state engine identically so both agree on the
next present state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.registry import register_simulator
from repro.simulation.delay_models import DelayModel, make_delay_model
from repro.simulation.event_driven import EventDrivenSimulator

__all__ = [
    "CompiledEventDrivenPowerEngine",
    "CompiledZeroDelayPowerEngine",
    "EventDrivenPowerEngine",
    "ZeroDelayPowerEngine",
]


@register_simulator("zero-delay")
class ZeroDelayPowerEngine:
    """Functional-transition measurement on the state engine's own sweep."""

    #: No engine of its own — the state engine is the measurement engine.
    engine = None

    #: Simulator classes may pin the *state engine's* backend: the samplers
    #: honour this when the configured backend is "auto" (an explicit user
    #: choice always wins).  ``None`` keeps the width-based auto pick.
    state_backend = None

    def __init__(
        self,
        program,
        width: int = 1,
        node_capacitance: Sequence[float] | np.ndarray | None = None,
        delay_model: DelayModel | str | None = None,
        backend: str = "auto",
    ):
        from repro.circuits.program import CircuitProgram

        self.program = CircuitProgram.of(program)

    def measure_lanes(self, state_engine, pattern) -> np.ndarray:
        return state_engine.step_and_measure_lanes(pattern)

    def measure_total(self, state_engine, pattern) -> float:
        return state_engine.step_and_measure(pattern)

    def measure_lanes_with_control(self, state_engine, pattern) -> tuple[np.ndarray, np.ndarray]:
        # The zero-delay measurement *is* the control here: the pair is
        # degenerate (identical arrays), which the control-variate estimator
        # rejects up front — kept for interface completeness.
        switched = state_engine.step_and_measure_lanes(pattern)
        return switched, switched


@register_simulator("event-driven")
class EventDrivenPowerEngine:
    """General-delay re-simulation of the sampled cycle (glitches included)."""

    state_backend = None

    def __init__(
        self,
        program,
        width: int = 1,
        node_capacitance: Sequence[float] | np.ndarray | None = None,
        delay_model: DelayModel | str | None = None,
        backend: str = "auto",
    ):
        from repro.circuits.program import CircuitProgram

        self.program = CircuitProgram.of(program)
        if delay_model is None:
            delay_model = "fanout"
        if isinstance(delay_model, str):
            delay_model = make_delay_model(delay_model)
        self.engine = EventDrivenSimulator(
            self.program,
            delay_model=delay_model,
            node_capacitance=node_capacitance,
            width=width,
            backend=backend,
        )

    def _settled_state(self, state_engine):
        """The state engine's settled network, in the cheapest shared form."""
        if self.engine.backend != "scalar":
            words = state_engine.words_view()
            if words is not None:
                return words
        return state_engine.values

    def measure_lanes(self, state_engine, pattern) -> np.ndarray:
        # Re-simulate the same cycle with general delays for every chain:
        # load the settled zero-delay network, run the event-driven cycle
        # (counts glitches per lane), and advance the cheap state engine
        # identically so both engines agree on the next present state.
        self.engine.load_settled_state(self._settled_state(state_engine))
        switched = self.engine.cycle_lanes(pattern)
        state_engine.step(pattern)
        return switched

    def measure_total(self, state_engine, pattern) -> float:
        self.engine.load_settled_state(self._settled_state(state_engine))
        switched = self.engine.cycle(pattern)
        state_engine.step(pattern)
        return switched

    def measure_lanes_with_control(self, state_engine, pattern) -> tuple[np.ndarray, np.ndarray]:
        # Same cycle, both engines, identical lanes: the event-driven
        # measurement (glitches included) and the zero-delay functional
        # transitions.  Advancing the state engine with step_and_measure_lanes
        # keeps the state trajectory identical to measure_lanes — only the
        # extra per-lane readout differs.
        self.engine.load_settled_state(self._settled_state(state_engine))
        switched = self.engine.cycle_lanes(pattern)
        control = state_engine.step_and_measure_lanes(pattern)
        return switched, control


@register_simulator("compiled", aliases=("zero-delay-compiled",))
class CompiledZeroDelayPowerEngine(ZeroDelayPowerEngine):
    """Zero-delay measurement on the per-program codegen sweep.

    Identical measurement semantics (and bit-identical samples) to
    ``"zero-delay"`` — the only difference is that the samplers build the
    shared state engine with ``backend="compiled"``, so every sweep runs the
    straight-line C generated for this circuit
    (:mod:`repro.simulation.codegen`) instead of the interpreted tables.
    Environments without a C compiler (or with ``REPRO_NATIVE=0``) degrade
    to the ordinary numpy sweep transparently.
    """

    state_backend = "compiled"


@register_simulator("event-driven-compiled")
class CompiledEventDrivenPowerEngine(EventDrivenPowerEngine):
    """Event-driven measurement with codegen frontier evaluation.

    Same glitch-aware cycle re-simulation as ``"event-driven"``, but both
    the shared zero-delay state engine and the event-driven measurement
    engine ask for the per-program codegen kernel, with the same transparent
    fallback chain as the zero-delay variant.
    """

    state_backend = "compiled"

    def __init__(
        self,
        program,
        width: int = 1,
        node_capacitance: Sequence[float] | np.ndarray | None = None,
        delay_model: DelayModel | str | None = None,
        backend: str = "auto",
    ):
        # "auto"/"numpy" would resolve to the plain numpy engine; this
        # simulator exists to pin the codegen path.  An explicit "scalar"
        # (width-1 state restore paths) is preserved.
        if backend in ("auto", "numpy"):
            backend = "compiled"
        super().__init__(
            program,
            width=width,
            node_capacitance=node_capacitance,
            delay_model=delay_model,
            backend=backend,
        )
