"""Optional compiled gate-sweep kernel for the vectorized simulator.

The word-sliced engine in :mod:`repro.simulation.vectorized` evaluates the
gate list with grouped numpy bitwise operations.  That is portable, but on
deep circuits the per-level ufunc dispatch overhead still dominates at small
word counts.  This module removes that last layer of interpreter overhead by
compiling a tiny C sweep kernel at runtime (one ``gcc -O2 -shared`` call on
first use) and driving it through :mod:`ctypes` over the *same* uint64 word
tables the numpy path uses.

The kernel is strictly optional:

* if no C compiler is available, compilation fails, or the environment
  variable ``REPRO_NATIVE=0`` is set, :func:`load_kernel` returns ``None``
  and the engine silently falls back to the grouped-numpy sweep;
* the compiled shared object lives in a temporary directory that is removed
  immediately after loading (the mapping stays valid on POSIX), so no build
  artefacts are left behind.

Both sweeps are exercised against each other in the test suite.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

_KERNEL_SOURCE = r"""
#include <stdint.h>

/* One zero-delay combinational sweep over lane-packed uint64 words.
 *
 * values : (num_rows, num_words) row-major matrix of lane words; row ids in
 *          the gate tables index into it.
 * ops    : per-gate opcode, low 2 bits select the reduction
 *          (0 = AND, 1 = OR, 2 = XOR) and bit 2 requests output inversion.
 * in_ptr : CSR-style fan-in offsets into in_rows, length num_gates + 1.
 * mask   : per-word lane mask applied after inversion so unused lanes of the
 *          last word stay zero.
 */
void zd_sweep(uint64_t *values, int64_t num_words, int64_t num_gates,
              const uint8_t *ops, const int64_t *out_rows,
              const int64_t *in_ptr, const int64_t *in_rows,
              const uint64_t *mask)
{
    for (int64_t g = 0; g < num_gates; g++) {
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *out = values + out_rows[g] * num_words;
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t w = 0; w < num_words; w++)
            out[w] = first[w];
        for (int64_t k = lo + 1; k < hi; k++) {
            const uint64_t *src = values + in_rows[k] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t w = 0; w < num_words; w++) out[w] &= src[w];
                break;
            case 1:
                for (int64_t w = 0; w < num_words; w++) out[w] |= src[w];
                break;
            default:
                for (int64_t w = 0; w < num_words; w++) out[w] ^= src[w];
                break;
            }
        }
        if (op & 4)
            for (int64_t w = 0; w < num_words; w++)
                out[w] = ~out[w] & mask[w];
    }
}

/* Re-evaluate an arbitrary gate subset (the active frontier of the
 * event-driven engine) without touching the net rows.
 *
 * gate_ids : indices (into the per-gate tables) of the gates to evaluate.
 * out      : (num_active, num_words) buffer receiving each gate's computed
 *            output words, in gate_ids order.  The caller decides what to do
 *            with them (apply immediately for zero-delay gates, schedule on
 *            the time wheel otherwise), so values stays read-only here.
 */
void ed_eval(const uint64_t *values, int64_t num_words,
             const int64_t *gate_ids, int64_t num_active,
             const uint8_t *ops, const int64_t *in_ptr, const int64_t *in_rows,
             const uint64_t *mask, uint64_t *out)
{
    for (int64_t i = 0; i < num_active; i++) {
        const int64_t g = gate_ids[i];
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *dst = out + i * num_words;
        if (lo == hi) { /* constant cell: never scheduled, but stay safe */
            for (int64_t w = 0; w < num_words; w++) dst[w] = 0;
            continue;
        }
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t w = 0; w < num_words; w++)
            dst[w] = first[w];
        for (int64_t k = lo + 1; k < hi; k++) {
            const uint64_t *src = values + in_rows[k] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t w = 0; w < num_words; w++) dst[w] &= src[w];
                break;
            case 1:
                for (int64_t w = 0; w < num_words; w++) dst[w] |= src[w];
                break;
            default:
                for (int64_t w = 0; w < num_words; w++) dst[w] ^= src[w];
                break;
            }
        }
        if (op & 4)
            for (int64_t w = 0; w < num_words; w++)
                dst[w] = ~dst[w] & mask[w];
    }
}

/* ed_eval restricted to a subset of value-word columns (wavefront
 * compaction): cols lists the still-active word indices; out is
 * (num_active, num_cols) and holds each gate's output for those words only.
 */
void ed_eval_cols(const uint64_t *values, int64_t num_words,
                  const int64_t *gate_ids, int64_t num_active,
                  const uint8_t *ops, const int64_t *in_ptr, const int64_t *in_rows,
                  const uint64_t *mask, const int64_t *cols, int64_t num_cols,
                  uint64_t *out)
{
    for (int64_t i = 0; i < num_active; i++) {
        const int64_t g = gate_ids[i];
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *dst = out + i * num_cols;
        if (lo == hi) {
            for (int64_t k = 0; k < num_cols; k++) dst[k] = 0;
            continue;
        }
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t k = 0; k < num_cols; k++)
            dst[k] = first[cols[k]];
        for (int64_t j = lo + 1; j < hi; j++) {
            const uint64_t *src = values + in_rows[j] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t k = 0; k < num_cols; k++) dst[k] &= src[cols[k]];
                break;
            case 1:
                for (int64_t k = 0; k < num_cols; k++) dst[k] |= src[cols[k]];
                break;
            default:
                for (int64_t k = 0; k < num_cols; k++) dst[k] ^= src[cols[k]];
                break;
            }
        }
        if (op & 4)
            for (int64_t k = 0; k < num_cols; k++)
                dst[k] = ~dst[k] & mask[cols[k]];
    }
}
"""

#: Opcodes understood by the kernel (and mirrored by the numpy sweep).
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_INVERT = 4

_kernel: ctypes.CDLL | None = None
_kernel_failed = False


def native_enabled() -> bool:
    """True unless the user disabled the compiled kernel via ``REPRO_NATIVE=0``."""
    return os.environ.get("REPRO_NATIVE", "1") not in ("", "0", "false", "no")


def _compile_kernel() -> ctypes.CDLL | None:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    workdir = tempfile.mkdtemp(prefix="repro-zd-kernel-")
    try:
        source_path = os.path.join(workdir, "zd_kernel.c")
        library_path = os.path.join(workdir, "zd_kernel.so")
        with open(source_path, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        result = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", library_path, source_path],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return None
        library = ctypes.CDLL(library_path)
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    uint64_p = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
    uint8_p = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
    int64_p = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    library.zd_sweep.restype = None
    library.zd_sweep.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        ctypes.c_int64,  # num_gates
        uint8_p,  # ops
        int64_p,  # out_rows
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
    ]
    library.ed_eval.restype = None
    library.ed_eval.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint8_p,  # ops
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
        uint64_p,  # out
    ]
    library.ed_eval_cols.restype = None
    library.ed_eval_cols.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint8_p,  # ops
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
        int64_p,  # cols
        ctypes.c_int64,  # num_cols
        uint64_p,  # out
    ]
    return library


_SWEEP_PROTOTYPE = ctypes.CFUNCTYPE(
    None,
    ctypes.c_void_p,  # values
    ctypes.c_int64,  # num_words
    ctypes.c_int64,  # num_gates
    ctypes.c_void_p,  # ops
    ctypes.c_void_p,  # out_rows
    ctypes.c_void_p,  # in_ptr
    ctypes.c_void_p,  # in_rows
    ctypes.c_void_p,  # lane mask
)


def bind_sweep(kernel, flat, num_words, num_gates, ops, out_rows, in_ptr, in_rows, mask):
    """Bind ``zd_sweep`` to fixed, preallocated buffers and return a 0-arg call.

    The caller guarantees that every array outlives the returned closure and
    is never reallocated; binding the raw data pointers once keeps the
    per-sweep ctypes marshalling cost off the hot path.
    """
    sweep = _SWEEP_PROTOTYPE(("zd_sweep", kernel))
    arguments = (
        flat.ctypes.data,
        num_words,
        num_gates,
        ops.ctypes.data,
        out_rows.ctypes.data,
        in_ptr.ctypes.data,
        in_rows.ctypes.data,
        mask.ctypes.data,
    )

    def call() -> None:
        sweep(*arguments)

    return call


def load_kernel() -> ctypes.CDLL | None:
    """Return the compiled sweep kernel, or ``None`` when unavailable."""
    global _kernel, _kernel_failed
    if not native_enabled():
        return None
    if _kernel is None and not _kernel_failed:
        _kernel = _compile_kernel()
        _kernel_failed = _kernel is None
    return _kernel


def native_kernel_available() -> bool:
    """True when the compiled sweep kernel can be (or has been) loaded."""
    return load_kernel() is not None
