"""Optional compiled gate-sweep kernel for the vectorized simulator.

The word-sliced engine in :mod:`repro.simulation.vectorized` evaluates the
gate list with grouped numpy bitwise operations.  That is portable, but on
deep circuits the per-level ufunc dispatch overhead still dominates at small
word counts.  This module removes that last layer of interpreter overhead by
compiling a tiny C sweep kernel at runtime (one ``gcc -O2 -shared`` call on
first use) and driving it through :mod:`ctypes` over the *same* uint64 word
tables the numpy path uses.

The kernel is strictly optional:

* if no C compiler is available, compilation fails, or the environment
  variable ``REPRO_NATIVE=0`` is set, :func:`load_kernel` returns ``None``
  and the engine silently falls back to the grouped-numpy sweep;
* with ``REPRO_PROGRAM_CACHE`` set, the compiled shared object is memoized
  on disk next to the pickled program cache (source-hash-versioned file
  name, atomic rename), so fresh processes — spawn-mode shard workers,
  ``repro batch`` subprocesses — dlopen the cached object instead of paying
  a compiler invocation each; corrupt or stale objects are silently
  recompiled.  Without a cache directory the object lives in a temporary
  directory that is removed immediately after loading (the mapping stays
  valid on POSIX), so no build artefacts are left behind.

:func:`compile_and_load` is the shared compile-or-reuse machinery; the
per-circuit code generator (:mod:`repro.simulation.codegen`) drives the same
path with its generated translation units.  This module reads the cache
directory straight from the environment instead of importing
:mod:`repro.circuits.program` (which imports the opcodes below — the import
must stay one-directional).

Both sweeps are exercised against each other in the test suite.
"""

from __future__ import annotations

import ctypes
import glob
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

_KERNEL_SOURCE = r"""
#include <stdint.h>

/* One zero-delay combinational sweep over lane-packed uint64 words.
 *
 * values : (num_rows, num_words) row-major matrix of lane words; row ids in
 *          the gate tables index into it.
 * ops    : per-gate opcode, low 2 bits select the reduction
 *          (0 = AND, 1 = OR, 2 = XOR) and bit 2 requests output inversion.
 * in_ptr : CSR-style fan-in offsets into in_rows, length num_gates + 1.
 * mask   : per-word lane mask applied after inversion so unused lanes of the
 *          last word stay zero.
 */
void zd_sweep(uint64_t *values, int64_t num_words, int64_t num_gates,
              const uint8_t *ops, const int64_t *out_rows,
              const int64_t *in_ptr, const int64_t *in_rows,
              const uint64_t *mask)
{
    for (int64_t g = 0; g < num_gates; g++) {
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *out = values + out_rows[g] * num_words;
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t w = 0; w < num_words; w++)
            out[w] = first[w];
        for (int64_t k = lo + 1; k < hi; k++) {
            const uint64_t *src = values + in_rows[k] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t w = 0; w < num_words; w++) out[w] &= src[w];
                break;
            case 1:
                for (int64_t w = 0; w < num_words; w++) out[w] |= src[w];
                break;
            default:
                for (int64_t w = 0; w < num_words; w++) out[w] ^= src[w];
                break;
            }
        }
        if (op & 4)
            for (int64_t w = 0; w < num_words; w++)
                out[w] = ~out[w] & mask[w];
    }
}

/* Re-evaluate an arbitrary gate subset (the active frontier of the
 * event-driven engine) without touching the net rows.
 *
 * gate_ids : indices (into the per-gate tables) of the gates to evaluate.
 * out      : (num_active, num_words) buffer receiving each gate's computed
 *            output words, in gate_ids order.  The caller decides what to do
 *            with them (apply immediately for zero-delay gates, schedule on
 *            the time wheel otherwise), so values stays read-only here.
 */
void ed_eval(const uint64_t *values, int64_t num_words,
             const int64_t *gate_ids, int64_t num_active,
             const uint8_t *ops, const int64_t *in_ptr, const int64_t *in_rows,
             const uint64_t *mask, uint64_t *out)
{
    for (int64_t i = 0; i < num_active; i++) {
        const int64_t g = gate_ids[i];
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *dst = out + i * num_words;
        if (lo == hi) { /* constant cell: never scheduled, but stay safe */
            for (int64_t w = 0; w < num_words; w++) dst[w] = 0;
            continue;
        }
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t w = 0; w < num_words; w++)
            dst[w] = first[w];
        for (int64_t k = lo + 1; k < hi; k++) {
            const uint64_t *src = values + in_rows[k] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t w = 0; w < num_words; w++) dst[w] &= src[w];
                break;
            case 1:
                for (int64_t w = 0; w < num_words; w++) dst[w] |= src[w];
                break;
            default:
                for (int64_t w = 0; w < num_words; w++) dst[w] ^= src[w];
                break;
            }
        }
        if (op & 4)
            for (int64_t w = 0; w < num_words; w++)
                dst[w] = ~dst[w] & mask[w];
    }
}

/* ed_eval restricted to a subset of value-word columns (wavefront
 * compaction): cols lists the still-active word indices; out is
 * (num_active, num_cols) and holds each gate's output for those words only.
 */
void ed_eval_cols(const uint64_t *values, int64_t num_words,
                  const int64_t *gate_ids, int64_t num_active,
                  const uint8_t *ops, const int64_t *in_ptr, const int64_t *in_rows,
                  const uint64_t *mask, const int64_t *cols, int64_t num_cols,
                  uint64_t *out)
{
    for (int64_t i = 0; i < num_active; i++) {
        const int64_t g = gate_ids[i];
        const uint8_t op = ops[g];
        const int64_t lo = in_ptr[g];
        const int64_t hi = in_ptr[g + 1];
        uint64_t *dst = out + i * num_cols;
        if (lo == hi) {
            for (int64_t k = 0; k < num_cols; k++) dst[k] = 0;
            continue;
        }
        const uint64_t *first = values + in_rows[lo] * num_words;
        for (int64_t k = 0; k < num_cols; k++)
            dst[k] = first[cols[k]];
        for (int64_t j = lo + 1; j < hi; j++) {
            const uint64_t *src = values + in_rows[j] * num_words;
            switch (op & 3) {
            case 0:
                for (int64_t k = 0; k < num_cols; k++) dst[k] &= src[cols[k]];
                break;
            case 1:
                for (int64_t k = 0; k < num_cols; k++) dst[k] |= src[cols[k]];
                break;
            default:
                for (int64_t k = 0; k < num_cols; k++) dst[k] ^= src[cols[k]];
                break;
            }
        }
        if (op & 4)
            for (int64_t k = 0; k < num_cols; k++)
                dst[k] = ~dst[k] & mask[cols[k]];
    }
}
"""

#: Opcodes understood by the kernel (and mirrored by the numpy sweep).
OP_AND = 0
OP_OR = 1
OP_XOR = 2
OP_INVERT = 4

#: Bumped whenever the on-disk shared-object naming/ABI conventions change;
#: cached objects with an older version in their file name are never loaded.
KERNEL_CACHE_VERSION = 1

_kernel: ctypes.CDLL | None = None
_kernel_failed = False
_compiler_invocations = 0


def native_enabled() -> bool:
    """True unless the user disabled the compiled kernel via ``REPRO_NATIVE=0``."""
    return os.environ.get("REPRO_NATIVE", "1") not in ("", "0", "false", "no")


def find_compiler() -> str | None:
    """Path of the first available C compiler (``cc``/``gcc``/``clang``), or ``None``."""
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


def compiler_invocations() -> int:
    """Number of C-compiler subprocesses this process has launched.

    The codegen benchmark asserts on this: a warm-cache run must build every
    engine it needs with **zero** compiler invocations (in-process memo plus
    on-disk shared objects cover them all).
    """
    return _compiler_invocations


def source_digest(source: str) -> str:
    """Stable short hash of a C translation unit (versions the cached object)."""
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def _kernel_cache_dir() -> str | None:
    """The shared-object cache directory, from ``REPRO_PROGRAM_CACHE``.

    Same directory as the pickled program cache (see
    :func:`repro.circuits.program.program_cache_dir` — duplicated here
    because the import must stay one-directional).
    """
    value = os.environ.get("REPRO_PROGRAM_CACHE", "").strip()
    return value or None


def _invoke_compiler(source: str, library_path: str, optimize: str = "-O2") -> bool:
    """Compile *source* into *library_path*; False on any failure."""
    global _compiler_invocations
    compiler = find_compiler()
    if compiler is None:
        return False
    workdir = tempfile.mkdtemp(prefix="repro-kernel-")
    try:
        source_path = os.path.join(workdir, "kernel.c")
        with open(source_path, "w") as handle:
            handle.write(source)
        _compiler_invocations += 1
        result = subprocess.run(
            [compiler, optimize, "-shared", "-fPIC", "-o", library_path, source_path],
            capture_output=True,
            timeout=300,
        )
        return result.returncode == 0
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _load_library(path: str) -> ctypes.CDLL | None:
    try:
        return ctypes.CDLL(path)
    except OSError:
        return None


def compile_and_load(source: str, tag: str, optimize: str = "-O2") -> ctypes.CDLL | None:
    """Compile *source* (or reuse its disk-cached object) and ``dlopen`` it.

    With ``REPRO_PROGRAM_CACHE`` set, the object is cached as
    ``{tag}.k{KERNEL_CACHE_VERSION}.{source_digest}.so`` — the digest in the
    file name makes stale objects (older source) simply miss, and a corrupt
    cached file is unlinked and recompiled.  Writes go through a unique
    temporary name in the same directory plus ``os.replace``, so concurrent
    processes never observe a half-written object.  Without a cache
    directory the object is built in a temporary directory that is removed
    right after loading.  Returns ``None`` when no compiler is available
    (and no cached object exists) or compilation fails.
    """
    directory = _kernel_cache_dir()
    if directory is None:
        return _compile_in_tempdir(source, optimize)
    digest = source_digest(source)
    path = os.path.join(directory, f"{tag}.k{KERNEL_CACHE_VERSION}.{digest}.so")
    if os.path.exists(path):
        library = _load_library(path)
        if library is not None:
            return library
        try:
            os.unlink(path)  # corrupt (e.g. truncated by a crash): recompile
        except OSError:
            pass
    temp = f"{path}.tmp{os.getpid()}"
    try:
        os.makedirs(directory, exist_ok=True)
        if not _invoke_compiler(source, temp, optimize):
            return _cleanup_temp(temp)
        os.replace(temp, path)
    except OSError:
        return _cleanup_temp(temp)
    for stale in glob.glob(os.path.join(directory, f"{tag}.k*.so")):
        if stale != path:
            try:
                os.unlink(stale)
            except OSError:
                pass
    return _load_library(path)


def _cleanup_temp(temp: str) -> None:
    try:
        os.unlink(temp)
    except OSError:
        pass
    return None


def _compile_in_tempdir(source: str, optimize: str = "-O2") -> ctypes.CDLL | None:
    workdir = tempfile.mkdtemp(prefix="repro-kernel-")
    try:
        library_path = os.path.join(workdir, "kernel.so")
        if not _invoke_compiler(source, library_path, optimize):
            return None
        return _load_library(library_path)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _compile_kernel() -> ctypes.CDLL | None:
    library = compile_and_load(_KERNEL_SOURCE, "generic")
    if library is None:
        return None

    uint64_p = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
    uint8_p = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
    int64_p = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
    library.zd_sweep.restype = None
    library.zd_sweep.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        ctypes.c_int64,  # num_gates
        uint8_p,  # ops
        int64_p,  # out_rows
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
    ]
    library.ed_eval.restype = None
    library.ed_eval.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint8_p,  # ops
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
        uint64_p,  # out
    ]
    library.ed_eval_cols.restype = None
    library.ed_eval_cols.argtypes = [
        uint64_p,  # values
        ctypes.c_int64,  # num_words
        int64_p,  # gate_ids
        ctypes.c_int64,  # num_active
        uint8_p,  # ops
        int64_p,  # in_ptr
        int64_p,  # in_rows
        uint64_p,  # lane mask
        int64_p,  # cols
        ctypes.c_int64,  # num_cols
        uint64_p,  # out
    ]
    return library


_SWEEP_PROTOTYPE = ctypes.CFUNCTYPE(
    None,
    ctypes.c_void_p,  # values
    ctypes.c_int64,  # num_words
    ctypes.c_int64,  # num_gates
    ctypes.c_void_p,  # ops
    ctypes.c_void_p,  # out_rows
    ctypes.c_void_p,  # in_ptr
    ctypes.c_void_p,  # in_rows
    ctypes.c_void_p,  # lane mask
)


def bind_sweep(kernel, flat, num_words, num_gates, ops, out_rows, in_ptr, in_rows, mask):
    """Bind ``zd_sweep`` to fixed, preallocated buffers and return a 0-arg call.

    The caller guarantees that every array outlives the returned closure and
    is never reallocated; binding the raw data pointers once keeps the
    per-sweep ctypes marshalling cost off the hot path.
    """
    sweep = _SWEEP_PROTOTYPE(("zd_sweep", kernel))
    arguments = (
        flat.ctypes.data,
        num_words,
        num_gates,
        ops.ctypes.data,
        out_rows.ctypes.data,
        in_ptr.ctypes.data,
        in_rows.ctypes.data,
        mask.ctypes.data,
    )

    def call() -> None:
        sweep(*arguments)

    return call


def load_kernel() -> ctypes.CDLL | None:
    """Return the compiled sweep kernel, or ``None`` when unavailable."""
    global _kernel, _kernel_failed
    if not native_enabled():
        return None
    if _kernel is None and not _kernel_failed:
        _kernel = _compile_kernel()
        _kernel_failed = _kernel is None
    return _kernel


def clear_kernel_memo() -> None:
    """Forget the loaded generic kernel so the next load retries (testing support)."""
    global _kernel, _kernel_failed
    _kernel = None
    _kernel_failed = False


def native_kernel_available() -> bool:
    """True when the compiled sweep kernel can be (or has been) loaded."""
    return load_kernel() is not None
