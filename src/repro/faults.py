"""Deterministic fault injection for the sharded sampling worker pool.

The supervision layer in :mod:`repro.core.sharded_sampler` promises that a
worker may die, hang, slow down or corrupt its reply stream at *any* point
without changing a single merged sample.  Proving that needs a way to make
workers fail on purpose, at exactly reproducible points — this module is that
harness.

A :class:`FaultSchedule` maps ``(shard_index, incarnation)`` to a
:class:`FaultPlan`, a sequence of :class:`FaultAction` entries.  Each action
names a *kind* (``kill``, ``hang``, ``slow``, ``garble``, or — aimed at the
TCP transport — ``drop-connection``, ``partition``, ``slow-link``,
``truncated-frame``), an *injection
point* relative to one handled command (``recv`` — after the command is
received but before it runs; ``handle`` — after it ran but before the reply
is sent; ``reply`` — after the reply went out), and the zero-based *command
index* at which it fires.  Because every parent→worker message (including
pattern feeds) counts as one command, a seeded schedule pins the fault to an
exact position in the deterministic command stream — re-running the same
seed reproduces the same failure in the same place.

Schedules address worker *incarnations*: when the supervisor respawns a
killed worker, the replacement looks up its own plan under an incremented
incarnation number, so storms (kill the respawn too) are expressible while
finite schedules always terminate.

Activation is either explicit — pass ``fault_schedule=...`` to
:class:`~repro.core.sharded_sampler.ShardedPowerSampler`, or wrap code in
:func:`inject` — or ambient through the ``REPRO_FAULTS`` environment
variable (a JSON document produced by :meth:`FaultSchedule.to_json`), which
reaches pools built deep inside the service without threading a parameter
through every layer.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "KILLED_EXIT_CODE",
    "NETWORK_FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultSchedule",
    "FaultInjector",
    "InjectedNetworkFault",
    "SimulatedWorkerDeath",
    "active_schedule",
    "inject",
    "schedule_from_env",
]

#: Injection points relative to one handled worker command.
INJECTION_POINTS = ("recv", "handle", "reply")

#: Network failure modes, meaningful on the TCP shard transport
#: (``mode="socket"``).  On the process/serial transports each degrades to
#: its closest process-level analogue (see ``_NETWORK_EQUIVALENT``), so one
#: schedule exercises every transport.
NETWORK_FAULT_KINDS = ("drop-connection", "partition", "slow-link", "truncated-frame")

#: Supported failure modes.
FAULT_KINDS = ("kill", "hang", "slow", "garble") + NETWORK_FAULT_KINDS

#: What a network fault means to a transport without a network: an abrupt
#: connection loss is a death, a partition is an open-ended stall, a slow
#: link is a slow worker.
_NETWORK_EQUIVALENT = {
    "drop-connection": "kill",
    "truncated-frame": "kill",
    "partition": "hang",
    "slow-link": "slow",
}

#: Exit code of a worker process killed by an injected ``kill`` action, so
#: tests (and :class:`ShardWorkerError` messages) can tell injected deaths
#: from organic crashes.
KILLED_EXIT_CODE = 87

#: How long an injected ``hang`` sleeps when no duration is given — far past
#: any reasonable ``worker_hang_timeout``, so the supervisor must intervene.
_DEFAULT_HANG_SECONDS = 3600.0

#: Default stall of a ``slow`` action: long enough to be observable, short
#: enough that an un-supervised test does not crawl.
_DEFAULT_SLOW_SECONDS = 0.05


class SimulatedWorkerDeath(RuntimeError):
    """Raised by the in-process (serial) transport to simulate a worker death.

    The serial shard pool has no process to kill, so ``kill`` and ``hang``
    actions surface as this exception instead — the supervisor treats it
    exactly like a broken pipe and replays the shard.
    """

    def __init__(self, reason: str):
        super().__init__(f"injected worker fault: {reason}")
        self.reason = reason


class InjectedNetworkFault(RuntimeError):
    """Raised by a socket-mode :class:`FaultInjector` when a network action fires.

    The transport layer (the worker session loop in
    :mod:`repro.core.transport`) catches it and performs the wire-level
    effect — dropping the connection, blackholing the link for ``seconds``,
    delaying every subsequent reply, or emitting a truncated frame — since
    only the transport owns the socket.
    """

    def __init__(self, kind: str, seconds: float = 0.0):
        super().__init__(f"injected network fault: {kind}")
        self.kind = kind
        self.seconds = seconds


@dataclass(frozen=True)
class FaultAction:
    """One injected failure: *kind* at *point* of command number *command*.

    ``seconds`` parameterises ``hang`` and ``slow`` (0.0 means the kind's
    default duration); it is ignored by ``kill`` and ``garble``.  ``garble``
    replaces the reply wire message, so it is only meaningful at the
    ``reply`` point.
    """

    kind: str
    point: str = "handle"
    command: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.point not in INJECTION_POINTS:
            raise ValueError(f"point must be one of {INJECTION_POINTS}, got {self.point!r}")
        if self.kind == "garble" and self.point != "reply":
            raise ValueError("garble actions replace the reply; use point='reply'")
        if self.command < 0:
            raise ValueError("command index must be non-negative")
        if self.seconds < 0.0:
            raise ValueError("seconds must be non-negative")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "point": self.point,
            "command": self.command,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class FaultPlan:
    """The ordered fault actions of one worker incarnation."""

    actions: tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    def at(self, command: int, point: str) -> FaultAction | None:
        """First action scheduled for (*command*, *point*), or ``None``."""
        for action in self.actions:
            if action.command == command and action.point == point:
                return action
        return None

    def to_dict(self) -> dict:
        return {"actions": [action.to_dict() for action in self.actions]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(tuple(FaultAction(**action) for action in data.get("actions", ())))


@dataclass(frozen=True)
class FaultSchedule:
    """Fault plans keyed by ``(shard_index, incarnation)``.

    Incarnation 0 is the worker spawned at pool construction; each
    supervisor respawn increments it.  Shards or incarnations without an
    entry run fault-free, so every finite schedule eventually lets the run
    complete — the property the chaos suite's bit-identical gate relies on.
    """

    plans: dict[tuple[int, int], FaultPlan] = field(default_factory=dict)

    def plan_for(self, shard_index: int, incarnation: int) -> FaultPlan | None:
        return self.plans.get((shard_index, incarnation))

    @property
    def total_actions(self) -> int:
        """Number of scheduled actions across all plans (for reporting)."""
        return sum(len(plan.actions) for plan in self.plans.values())

    @classmethod
    def single(
        cls,
        shard_index: int,
        kind: str,
        *,
        point: str = "handle",
        command: int = 0,
        seconds: float = 0.0,
        incarnation: int = 0,
    ) -> "FaultSchedule":
        """Schedule exactly one action on one worker incarnation."""
        action = FaultAction(kind=kind, point=point, command=command, seconds=seconds)
        return cls({(shard_index, incarnation): FaultPlan((action,))})

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_workers: int,
        *,
        kills: int = 2,
        window: tuple[int, int] = (2, 40),
        kinds: tuple[str, ...] = ("kill",),
        points: tuple[str, ...] = INJECTION_POINTS,
        storm: int = 0,
    ) -> "FaultSchedule":
        """Draw a reproducible random schedule of *kills* faults.

        Faults land on random shards at random command indices inside
        *window* (which spans warmup, advance, sampling and checkpoint
        traffic for typical test configs).  ``storm`` additionally kills the
        first *storm* respawn incarnations of the first faulted shard at the
        same point, exercising repeated recovery of one seat.  ``garble`` is
        forced to the ``reply`` point automatically.
        """
        rng = np.random.default_rng(seed)
        plans: dict[tuple[int, int], list[FaultAction]] = {}
        first_shard: int | None = None
        for _ in range(kills):
            shard = int(rng.integers(0, num_workers))
            kind = kinds[int(rng.integers(0, len(kinds)))]
            point = "reply" if kind == "garble" else points[int(rng.integers(0, len(points)))]
            command = int(rng.integers(window[0], window[1]))
            plans.setdefault((shard, 0), []).append(
                FaultAction(kind=kind, point=point, command=command)
            )
            if first_shard is None:
                first_shard = shard
        if storm and first_shard is not None:
            for incarnation in range(1, storm + 1):
                command = int(rng.integers(window[0], window[1]))
                plans.setdefault((first_shard, incarnation), []).append(
                    FaultAction(kind="kill", point="recv", command=command)
                )
        return cls({key: FaultPlan(tuple(actions)) for key, actions in plans.items()})

    def to_json(self) -> str:
        """Serialize for the ``REPRO_FAULTS`` environment variable."""
        entries = [
            {"shard": shard, "incarnation": incarnation, **plan.to_dict()}
            for (shard, incarnation), plan in sorted(self.plans.items())
        ]
        return json.dumps({"plans": entries})

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        data = json.loads(text)
        plans = {}
        for entry in data.get("plans", ()):
            key = (int(entry["shard"]), int(entry.get("incarnation", 0)))
            plans[key] = FaultPlan.from_dict(entry)
        return cls(plans)


# ------------------------------------------------------------------ activation
_ACTIVE_SCHEDULE: FaultSchedule | None = None


def schedule_from_env(environ=os.environ) -> FaultSchedule | None:
    """Parse ``REPRO_FAULTS`` (JSON from :meth:`FaultSchedule.to_json`).

    A malformed value is reported as a named-field ``ValueError`` (matching
    the service validator's ``invalid '<field>': ...`` style) instead of a
    raw decode error escaping from deep inside pool construction.
    """
    text = environ.get("REPRO_FAULTS")
    if not text:
        return None
    try:
        return FaultSchedule.from_json(text)
    except (AttributeError, json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        raise ValueError(
            f"invalid 'REPRO_FAULTS': not a fault schedule "
            f"(expected FaultSchedule.to_json output): {error}"
        ) from error


def active_schedule() -> FaultSchedule | None:
    """The ambient schedule: :func:`inject` context first, then the env var."""
    if _ACTIVE_SCHEDULE is not None:
        return _ACTIVE_SCHEDULE
    return schedule_from_env()


@contextlib.contextmanager
def inject(schedule: FaultSchedule):
    """Make *schedule* ambient for shard pools built inside the block."""
    global _ACTIVE_SCHEDULE
    previous = _ACTIVE_SCHEDULE
    _ACTIVE_SCHEDULE = schedule
    try:
        yield schedule
    finally:
        _ACTIVE_SCHEDULE = previous


# -------------------------------------------------------------------- injector
class FaultInjector:
    """Fires one incarnation's :class:`FaultPlan` inside a shard transport.

    ``mode="process"`` runs inside a real worker process: ``kill`` exits the
    process with :data:`KILLED_EXIT_CODE`, ``hang``/``slow`` sleep.
    ``mode="local"`` runs inside the parent (serial pool): ``kill`` and
    ``hang`` raise :class:`SimulatedWorkerDeath` instead (a local transport
    cannot block the parent), ``slow`` sleeps briefly.  ``mode="socket"``
    runs inside a remote TCP worker: ``kill`` exits the process (the remote
    analogue of a host loss), ``hang``/``slow`` sleep, and the network kinds
    (:data:`NETWORK_FAULT_KINDS`) raise :class:`InjectedNetworkFault` for
    the transport layer to act on.  On the non-socket transports the network
    kinds degrade to their process-level analogues
    (``drop-connection``/``truncated-frame`` → ``kill``, ``partition`` →
    ``hang``, ``slow-link`` → ``slow``), so one schedule drives every
    transport.  Each action fires at most once.
    """

    def __init__(self, plan: FaultPlan | None, mode: str = "process"):
        if mode not in ("process", "local", "socket"):
            raise ValueError(f"mode must be 'process', 'local' or 'socket', got {mode!r}")
        self._plan = plan
        self._mode = mode
        self._command = 0
        self._fired: set[int] = set()

    def begin(self) -> int:
        """Start handling the next command; returns its index."""
        index = self._command
        self._command += 1
        return index

    def _take(self, command: int, point: str, garble: bool) -> FaultAction | None:
        if self._plan is None:
            return None
        for action in self._plan.actions:
            if action.command != command or action.point != point:
                continue
            if (action.kind == "garble") != garble or id(action) in self._fired:
                continue
            self._fired.add(id(action))
            return action
        return None

    def trip(self, command: int, point: str) -> None:
        """Fire a scheduled fault at (*command*, *point*), if any is due."""
        action = self._take(command, point, garble=False)
        if action is None:
            return
        kind = action.kind
        if kind in NETWORK_FAULT_KINDS:
            if self._mode == "socket":
                raise InjectedNetworkFault(kind, action.seconds)
            kind = _NETWORK_EQUIVALENT[kind]
        if kind == "kill":
            if self._mode in ("process", "socket"):
                os._exit(KILLED_EXIT_CODE)
            raise SimulatedWorkerDeath("killed")
        if kind == "hang":
            if self._mode in ("process", "socket"):
                time.sleep(action.seconds or _DEFAULT_HANG_SECONDS)
                return
            raise SimulatedWorkerDeath("hung")
        # slow: stall but eventually answer — the supervisor must NOT recover.
        time.sleep(action.seconds or _DEFAULT_SLOW_SECONDS)

    def garbled(self, command: int) -> bool:
        """True when this command's reply should be replaced with garbage."""
        return self._take(command, "reply", garble=True) is not None
