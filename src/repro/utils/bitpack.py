"""Lane/word packing shared by the vectorized simulator and the stimuli.

Simulation lanes are packed 64 per ``uint64`` word: lane *k* lives in bit
``k % 64`` of word ``k // 64`` (little-endian across words, matching the
lane-packed Python-integer encoding of the big-int simulator backend).
Keeping every conversion in one module guarantees the encodings cannot
drift apart between producers (stimuli) and consumers (simulator backends).
"""

from __future__ import annotations

import numpy as np

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_per_width(width: int) -> int:
    """Number of uint64 words needed to hold *width* lanes."""
    return (width + 63) // 64


def lane_mask_words(width: int) -> np.ndarray:
    """Per-word mask with exactly the low *width* lanes set."""
    num_words = words_per_width(width)
    mask = np.full(num_words, _ALL_ONES, dtype=np.uint64)
    tail = width % 64
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_int_to_words(value: int, num_words: int) -> np.ndarray:
    """Expand a lane-packed Python integer into little-endian uint64 words."""
    raw = value.to_bytes(num_words * 8, "little")
    return np.frombuffer(raw, dtype="<u8").astype(np.uint64, copy=False)


def unpack_words_to_int(words: np.ndarray) -> int:
    """Inverse of :func:`pack_int_to_words`."""
    return int.from_bytes(words.astype("<u8", copy=False).tobytes(), "little")


def words_to_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`bits_to_words`: expand a trailing word axis to lanes.

    ``words`` has shape ``(..., num_words)``; the result has shape
    ``(..., width)`` with lane *k* taken from bit ``k % 64`` of word
    ``k // 64``.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    raw = words.view(np.uint8).reshape(words.shape[:-1] + (words.shape[-1] * 8,))
    return np.unpackbits(raw, axis=-1, bitorder="little")[..., :width]


def bits_to_words(bits: np.ndarray, num_words: int) -> np.ndarray:
    """Pack a trailing lane axis of 0/1 values into uint64 words.

    ``bits`` has shape ``(..., width)``; the result has shape
    ``(..., num_words)`` with lane *k* in bit ``k % 64`` of word ``k // 64``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = num_words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    return packed.view("<u8").astype(np.uint64, copy=False)
