"""Deterministic random-number handling.

Every stochastic component in the library (input-pattern generators, the DIPE
estimator, the synthetic circuit generators) accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``.  Centralising the
coercion here keeps experiment scripts reproducible: the same seed always
yields the same circuit, the same stimulus and therefore the same estimate.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted where a source of randomness is required.
RandomSource = Union[None, int, np.random.Generator]


def spawn_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *source*.

    Parameters
    ----------
    source:
        ``None`` for a non-deterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator which is returned as-is
        (so that callers can thread a single stream through sub-components).
    """
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        f"random source must be None, an int seed or a numpy Generator, got {type(source)!r}"
    )


def child_seeds(source: RandomSource, count: int) -> list[int]:
    """Derive *count* independent integer child seeds from *source*.

    The integer form of :func:`child_rngs`: seeding ``default_rng`` with
    entry *i* reproduces child generator *i* exactly.  Serializable job specs
    (:class:`repro.api.JobSpec`) carry these integers instead of generator
    objects.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = spawn_rng(source)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)]


def child_rngs(source: RandomSource, count: int) -> list[np.random.Generator]:
    """Split *source* into *count* statistically independent child generators.

    Used by repeated-run experiments (Table 2) so that each run has its own
    stream while the whole experiment remains reproducible from one seed.
    """
    return [np.random.default_rng(seed) for seed in child_seeds(source, count)]
