"""Shared utilities: deterministic RNG handling and plain-text table rendering."""

from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.tables import TextTable, format_table

__all__ = ["RandomSource", "spawn_rng", "TextTable", "format_table"]
