"""Shared utilities: deterministic RNG handling and plain-text table rendering.

:mod:`repro.utils.rng` centralises seed normalisation so every entry point
(estimators, stimulus generators, job specs) derives reproducible child
streams the same way; :mod:`repro.utils.tables` renders the aligned text
tables used by the CLI and the experiment reports.
"""

from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.tables import TextTable, format_table

__all__ = ["RandomSource", "spawn_rng", "TextTable", "format_table"]
