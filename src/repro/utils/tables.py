"""Plain-text table rendering for experiment reports.

The experiment harnesses (Table 1, Table 2, Figure 3) print their results in
the same row/column layout the paper uses.  This module provides a small
formatter so those reports stay readable both on a terminal and inside
``EXPERIMENTS.md`` code blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class TextTable:
    """A simple column-aligned text table.

    Parameters
    ----------
    headers:
        Column titles.
    precision:
        Number of decimal places used for float cells.
    """

    headers: Sequence[str]
    precision: int = 3
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; floats are formatted with the table precision."""
        row = [_cell(v, self.precision) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(f"row has {len(row)} cells but table has {len(self.headers)} columns")
        self.rows.append(row)

    def render(self) -> str:
        """Return the table as an aligned multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(
    headers: Sequence[str], rows: Iterable[Iterable[object]], precision: int = 3
) -> str:
    """One-shot helper: build and render a :class:`TextTable`."""
    table = TextTable(headers=headers, precision=precision)
    for row in rows:
        table.add_row(row)
    return table.render()
