"""Benchmark and example circuits.

Three sources of circuits are provided:

* :mod:`repro.circuits.library` — small canonical sequential circuits
  (the real ISCAS89 ``s27``, counters, shift registers, LFSRs) used by the
  unit tests, the FSM ground-truth comparisons and the examples.
* :mod:`repro.circuits.generators` — a deterministic synthetic sequential
  circuit generator used to build circuits of arbitrary size.
* :mod:`repro.circuits.iscas89` — the registry of ISCAS89-**like** analogues
  of the 24 benchmark circuits in the paper's Tables 1 and 2.  The original
  netlists are not redistributable inside this repository, so each name maps
  to a synthetic circuit with the same primary-input, primary-output,
  flip-flop and gate counts, generated deterministically from the circuit
  name (see DESIGN.md, "Substitutions").

:mod:`repro.circuits.program` holds the unified lowering shared by every
simulation engine: :class:`~repro.circuits.program.CircuitProgram`, the
content-hash-keyed, memoized (and optionally disk-cached) table set built
once per circuit.
"""

from repro.circuits.generators import SyntheticCircuitSpec, generate_sequential_circuit
from repro.circuits.iscas89 import (
    CIRCUIT_SPECS,
    TABLE_CIRCUIT_NAMES,
    build_circuit,
    circuit_summary,
    list_circuits,
)
from repro.circuits.library import (
    binary_counter,
    johnson_counter,
    lfsr,
    parity_tracker,
    s27,
    shift_register,
    toggle_cell,
)
from repro.circuits.program import CircuitProgram, program_cache_dir

__all__ = [
    "CircuitProgram",
    "program_cache_dir",
    "s27",
    "binary_counter",
    "johnson_counter",
    "shift_register",
    "lfsr",
    "toggle_cell",
    "parity_tracker",
    "SyntheticCircuitSpec",
    "generate_sequential_circuit",
    "CIRCUIT_SPECS",
    "TABLE_CIRCUIT_NAMES",
    "build_circuit",
    "list_circuits",
    "circuit_summary",
]
