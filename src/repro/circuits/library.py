"""Small canonical sequential circuits.

These circuits are small enough for exhaustive FSM analysis
(:mod:`repro.fsm`), which makes them the ground truth used throughout the
test suite: the statistical estimators must converge to their exact average
power.  ``s27`` is the real (public) ISCAS89 netlist and doubles as the
golden test case for the ``.bench`` parser.
"""

from __future__ import annotations

from repro.netlist.bench import parse_bench
from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist

#: The ISCAS89 s27 benchmark netlist (4 inputs, 1 output, 3 flip-flops, 10 gates).
S27_BENCH = """
# s27 -- ISCAS89 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27() -> Netlist:
    """Return the ISCAS89 ``s27`` benchmark circuit."""
    return parse_bench(S27_BENCH, name="s27")


def toggle_cell() -> Netlist:
    """A single T flip-flop: the state toggles whenever the enable input is 1.

    The smallest possible sequential circuit with feedback; its 2-state FSM
    and exact power are trivial to compute by hand, which makes it the
    sharpest unit-test target.
    """
    netlist = Netlist(name="toggle_cell")
    netlist.add_input("EN")
    netlist.add_output("Q")
    netlist.add_latch("Q", "D")
    netlist.add_gate("D", GateType.XOR, ["EN", "Q"])
    return netlist


def binary_counter(bits: int = 4, with_enable: bool = True) -> Netlist:
    """A *bits*-wide synchronous binary up-counter.

    When ``with_enable`` the counter advances only on cycles where the
    ``EN`` input is 1, so the state chain depends on the primary input — the
    situation the paper's sequential-circuit analysis targets.
    """
    if bits < 1:
        raise ValueError("bits must be at least 1")
    netlist = Netlist(name=f"counter{bits}")
    if with_enable:
        netlist.add_input("EN")
        carry = "EN"
    else:
        netlist.add_input("TIE1_IN")
        carry = None  # a constant-1 carry is synthesised below

    for bit in range(bits):
        netlist.add_output(f"Q{bit}")
        netlist.add_latch(f"Q{bit}", f"D{bit}")

    if not with_enable:
        # Free-running counter: the carry into bit 0 is constant 1, modelled
        # as OR of an input with its complement to stay within the gate set.
        netlist.add_gate("NOT_TIE", GateType.NOT, ["TIE1_IN"])
        netlist.add_gate("CARRY_IN", GateType.OR, ["TIE1_IN", "NOT_TIE"])
        carry = "CARRY_IN"

    for bit in range(bits):
        netlist.add_gate(f"D{bit}", GateType.XOR, [f"Q{bit}", carry])
        if bit < bits - 1:
            next_carry = f"C{bit}"
            netlist.add_gate(next_carry, GateType.AND, [f"Q{bit}", carry])
            carry = next_carry
    return netlist


def shift_register(length: int = 4) -> Netlist:
    """A serial-in shift register of the given *length* (plus a parity output)."""
    if length < 1:
        raise ValueError("length must be at least 1")
    netlist = Netlist(name=f"shift{length}")
    netlist.add_input("SI")
    netlist.add_output("SO")
    netlist.add_output("PARITY")
    previous = "SI"
    for stage in range(length):
        q_name = f"Q{stage}"
        netlist.add_latch(q_name, previous if stage == 0 else f"B{stage}")
        if stage > 0:
            netlist.add_gate(f"B{stage}", GateType.BUFF, [previous])
        previous = q_name
    netlist.add_gate("SO", GateType.BUFF, [previous])
    parity_terms = [f"Q{stage}" for stage in range(length)]
    if len(parity_terms) == 1:
        netlist.add_gate("PARITY", GateType.BUFF, parity_terms)
    else:
        netlist.add_gate("PARITY", GateType.XOR, parity_terms)
    return netlist


def lfsr(bits: int = 5, taps: tuple[int, ...] | None = None) -> Netlist:
    """A Fibonacci linear-feedback shift register XOR-ed with a scrambling input.

    The external input keeps the chain aperiodic and input-dependent (a pure
    autonomous LFSR would cycle deterministically, which makes for a poor
    statistical test case).  Default taps give a maximal-length polynomial
    for 5 bits; other widths fall back to a two-tap feedback.
    """
    if bits < 2:
        raise ValueError("bits must be at least 2")
    if taps is None:
        taps = (bits - 1, bits - 3) if bits >= 4 else (bits - 1, 0)
    for tap in taps:
        if not 0 <= tap < bits:
            raise ValueError(f"tap {tap} outside register width {bits}")
    netlist = Netlist(name=f"lfsr{bits}")
    netlist.add_input("SCRAMBLE")
    netlist.add_output(f"Q{bits - 1}")
    for bit in range(bits):
        netlist.add_latch(f"Q{bit}", f"D{bit}")
    feedback_terms = [f"Q{tap}" for tap in taps] + ["SCRAMBLE"]
    netlist.add_gate("FEEDBACK", GateType.XOR, feedback_terms)
    netlist.add_gate("D0", GateType.BUFF, ["FEEDBACK"])
    for bit in range(1, bits):
        netlist.add_gate(f"D{bit}", GateType.BUFF, [f"Q{bit - 1}"])
    return netlist


def johnson_counter(bits: int = 4) -> Netlist:
    """A Johnson (twisted-ring) counter with a hold input.

    When ``HOLD`` is 1 the counter keeps its state; otherwise it rotates with
    the inverted last bit fed back to the front.
    """
    if bits < 2:
        raise ValueError("bits must be at least 2")
    netlist = Netlist(name=f"johnson{bits}")
    netlist.add_input("HOLD")
    netlist.add_output(f"Q{bits - 1}")
    for bit in range(bits):
        netlist.add_latch(f"Q{bit}", f"D{bit}")
    netlist.add_gate("NLAST", GateType.NOT, [f"Q{bits - 1}"])
    netlist.add_gate("NHOLD", GateType.NOT, ["HOLD"])
    # D0 = HOLD ? Q0 : ~Q[last]
    netlist.add_gate("HOLD_Q0", GateType.AND, ["HOLD", "Q0"])
    netlist.add_gate("ADV_Q0", GateType.AND, ["NHOLD", "NLAST"])
    netlist.add_gate("D0", GateType.OR, ["HOLD_Q0", "ADV_Q0"])
    for bit in range(1, bits):
        netlist.add_gate(f"HOLD_Q{bit}", GateType.AND, ["HOLD", f"Q{bit}"])
        netlist.add_gate(f"ADV_Q{bit}", GateType.AND, ["NHOLD", f"Q{bit - 1}"])
        netlist.add_gate(f"D{bit}", GateType.OR, [f"HOLD_Q{bit}", f"ADV_Q{bit}"])
    return netlist


def parity_tracker(num_inputs: int = 3) -> Netlist:
    """A one-latch FSM that accumulates the parity of its inputs over time.

    Every cycle the state is XOR-ed with the parity of the current input
    vector.  Its power sequence has long-range dependence on the input
    history, making it a useful stress case for the runs test.
    """
    if num_inputs < 1:
        raise ValueError("num_inputs must be at least 1")
    netlist = Netlist(name=f"parity{num_inputs}")
    for index in range(num_inputs):
        netlist.add_input(f"I{index}")
    netlist.add_output("STATE")
    netlist.add_latch("STATE", "NEXT")
    terms = [f"I{index}" for index in range(num_inputs)]
    if len(terms) == 1:
        netlist.add_gate("INPAR", GateType.BUFF, terms)
    else:
        netlist.add_gate("INPAR", GateType.XOR, terms)
    netlist.add_gate("NEXT", GateType.XOR, ["INPAR", "STATE"])
    return netlist
