"""Unified circuit lowering: one cached :class:`CircuitProgram` per netlist.

Simulation touches every gate on every clock cycle, so each engine needs the
same family of dense tables over the compiled circuit — level-grouped
operation tables, padded fan-in gather matrices, fan-out CSR adjacency,
quantized delay schedules, capacitance vectors.  Before this module existed,
every engine rebuilt those tables privately at construction time, which
duplicated the lowering code and paid the compile cost once per simulator
instance — once per *worker* in the sharded sampling pool and once per *job*
in the batch runner.

:class:`CircuitProgram` is the single, canonical lowering:

* **Width-independent.**  Everything here depends only on the circuit
  structure, never on the lane count, so one program serves a width-1 state
  engine and a width-4096 Monte Carlo ensemble alike.  The only
  width-dependent artefacts (flat gather/scatter index vectors) are derived
  from the program's row tables by the engines with one vectorized
  multiply-add.
* **Content-addressed.**  :func:`circuit_content_key` hashes the full
  structural identity (net names, gates, latches, port lists), so two loads
  of the same netlist — in the same process or on different machines — map
  to the same program.
* **Cached at two levels.**  An in-process memo keyed by content hash (also
  attached to the :class:`~repro.simulation.compiled.CompiledCircuit`
  instance itself, so repeated engine construction is a dictionary lookup),
  plus an optional on-disk pickle cache in the directory named by the
  ``REPRO_PROGRAM_CACHE`` environment variable.  Sharded workers receive the
  parent's prebuilt program through the process boundary and batch-runner
  workers cache-hit on disk, so neither recompiles per shard or per job.
* **Derived schedules memoized.**  Per-delay-model quantized tick schedules
  (:meth:`CircuitProgram.delay_schedule`) and per-capacitance-model node
  vectors (:meth:`CircuitProgram.capacitances`) are computed once per program
  and shared by every engine built on it.

Optional structural optimization passes (dead-net sweep, fanout-free
buffer/inverter collapse) live behind :meth:`CircuitProgram.optimize`.  They
are **off by default** — they preserve the primary-output and latch behaviour
bit for bit (pinned by property tests) but change the net set, so switched-
capacitance totals are no longer comparable with the unoptimized circuit.

The disk cache stores pickled programs.  It is a private, local cache (a
work directory or a CI cache volume), not an interchange format: do not
point ``REPRO_PROGRAM_CACHE`` at untrusted data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist
from repro.simulation._native import OP_AND, OP_INVERT, OP_OR, OP_XOR
from repro.simulation.compiled import CompiledCircuit
from repro.simulation.delay_models import DelayModel, quantize_delays

__all__ = [
    "CircuitProgram",
    "DelaySchedule",
    "GateGroupPlan",
    "PROGRAM_CACHE_ENV",
    "circuit_content_key",
    "clear_program_memo",
    "compile_count",
    "program_cache_dir",
]

#: Environment variable naming the on-disk program cache directory.  Unset
#: (the default) disables the disk cache; the in-process memo always runs.
PROGRAM_CACHE_ENV = "REPRO_PROGRAM_CACHE"

#: Bumped whenever the lowered table layout changes; stale cache files from
#: older layouts are ignored rather than mis-read.
_FORMAT_VERSION = 1

#: Reduction kind per gate type: (opcode, output inverted).  This is *the*
#: opcode mapping — both vectorized engines and the native kernels consume
#: tables built from it.
GATE_OPS: dict[GateType, tuple[int, bool]] = {
    GateType.AND: (OP_AND, False),
    GateType.NAND: (OP_AND, True),
    GateType.OR: (OP_OR, False),
    GateType.NOR: (OP_OR, True),
    GateType.XOR: (OP_XOR, False),
    GateType.XNOR: (OP_XOR, True),
    GateType.BUFF: (OP_AND, False),
    GateType.NOT: (OP_AND, True),
}

_CONST_TYPES = (GateType.CONST0, GateType.CONST1)
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

_MEMO: dict[str, "CircuitProgram"] = {}
_MEMO_LOCK = threading.Lock()
_COMPILE_COUNT = 0

#: Attribute under which a compiled circuit remembers its program, so the
#: common path (many engines over one circuit object) is one getattr.
_CIRCUIT_ATTR = "_repro_program"


def compile_count() -> int:
    """Number of full lowerings performed by this process (cache misses).

    The startup benchmark asserts on this: building a sharded pool or a batch
    of engines over one circuit must raise it by exactly one.
    """
    return _COMPILE_COUNT


def clear_program_memo() -> None:
    """Drop the in-process program memo (testing/benchmark support).

    Programs already attached to live circuit objects stay attached; the
    on-disk cache is untouched.
    """
    with _MEMO_LOCK:
        _MEMO.clear()


def program_cache_dir() -> Path | None:
    """The on-disk cache directory (from ``REPRO_PROGRAM_CACHE``), or ``None``."""
    value = os.environ.get(PROGRAM_CACHE_ENV, "").strip()
    return Path(value) if value else None


def circuit_content_key(circuit: CompiledCircuit) -> str:
    """Stable content hash of a compiled circuit's full structural identity.

    Covers everything the lowered tables and name-based lookups depend on:
    net names (and therefore dense ids), port lists, latches with init
    values, and the topologically ordered gate list.  Equal circuits hash
    equal across processes and machines; the hash never involves Python's
    randomized ``hash()``.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-program/v{_FORMAT_VERSION}\n".encode())
    digest.update(f"name={circuit.name}\n".encode())
    digest.update(("nets=" + "\x1f".join(circuit.net_names) + "\n").encode())
    for label, ids in (
        ("pi", circuit.primary_inputs),
        ("po", circuit.primary_outputs),
        ("lq", circuit.latch_q),
        ("ld", circuit.latch_d),
        ("li", circuit.latch_init),
    ):
        digest.update(f"{label}={','.join(map(str, ids))}\n".encode())
    for gate in circuit.gates:
        digest.update(
            f"g={gate.gate_type.value}:{gate.output}:{','.join(map(str, gate.inputs))}\n".encode()
        )
    return digest.hexdigest()[:24]


@dataclass(eq=False)
class GateGroupPlan:
    """One (level, opcode) group of the zero-delay grouped-ufunc sweep.

    ``rows`` is the ``(gates, arity)`` fan-in row matrix, padded with the
    program's virtual all-ones/all-zeros rows to the group's widest arity;
    ``outs`` the output rows; ``out_invert`` a ``(gates, 1)`` uint64 XOR mask
    (``None`` when no member inverts).  Width-dependent gather/scatter index
    vectors are derived from these by the engine.
    """

    opcode: int
    rows: np.ndarray
    outs: np.ndarray
    out_invert: np.ndarray | None


@dataclass(eq=False)
class DelaySchedule:
    """A delay model quantized onto the shared integer tick base.

    ``ticks[i] * tick == delays[i]`` for every gate *i* (up to the rational
    approximation of :func:`~repro.simulation.delay_models.quantize_delays`);
    ``any_zero_ticks`` reports whether any non-constant gate switches within
    its instant, which selects the event engines' cascade strategy.
    """

    delays: tuple[float, ...]
    ticks: np.ndarray
    tick: float
    any_zero_ticks: bool


class CircuitProgram:
    """The canonical, width-independent lowering of one compiled circuit.

    Build through :meth:`CircuitProgram.of` (memoized + disk-cached), not the
    constructor.  All tables are read-only shared state: engines must never
    mutate them.

    Attributes
    ----------
    circuit:
        The compiled circuit this program lowers.
    key:
        Content hash (:func:`circuit_content_key`) — the cache key.
    row_one / row_zero:
        Ids of the two virtual padding rows engines append behind the real
        nets (all-ones for AND-group padding, all-zeros for OR/XOR).
    gate_level:
        int64 logic level per gate (1-based; inputs/latches are level 0).
    levels_all:
        Non-constant gate ids grouped by level, ascending — the full-sweep
        schedule.
    gate_op / gate_invert / gate_out:
        Per-gate opcode (uint8), output-invert mask (uint64) and output row
        (intp); constants carry opcode 0.
    non_const:
        Boolean mask of non-constant gates.
    const_rows:
        ``(output_row, is_one)`` per constant gate.
    padded_rows / max_arity:
        ``(num_gates, max_arity)`` fan-in row matrix padded per gate with the
        opcode's neutral virtual row.
    in_ptr / in_rows:
        CSR fan-in over *all* gates (constants empty) — the event kernels'
        table.
    sweep_ops / sweep_out_rows / sweep_in_ptr / sweep_in_rows:
        CSR fan-in over non-constant gates only, opcodes carrying the invert
        flag — the zero-delay native kernel's table.
    fanout_ptr / fanout_idx:
        CSR of gate ids reading each net.
    level_groups:
        :class:`GateGroupPlan` list for the grouped-numpy zero-delay sweep.
    """

    def __init__(self, circuit: CompiledCircuit, key: str | None = None):
        self.circuit = circuit
        self.key = key if key is not None else circuit_content_key(circuit)
        self._delay_schedules: dict = {}
        self._capacitances: dict = {}
        self._lower()

    # ------------------------------------------------------------------ build
    @classmethod
    def of(cls, source: "CircuitProgram | CompiledCircuit") -> "CircuitProgram":
        """Return the program of *source*, building it at most once.

        Accepts a program (returned as-is) or a compiled circuit.  Resolution
        order: the circuit's attached program, the in-process memo, the
        on-disk cache, and only then a fresh lowering (which is then stored
        at every level).
        """
        if isinstance(source, CircuitProgram):
            return source
        if not isinstance(source, CompiledCircuit):
            raise TypeError(
                f"expected a CompiledCircuit or CircuitProgram, got {type(source).__name__}"
            )
        program = source.__dict__.get(_CIRCUIT_ATTR)
        if program is not None:
            return program
        key = circuit_content_key(source)
        with _MEMO_LOCK:
            program = _MEMO.get(key)
        if program is None:
            program = cls._load_from_disk(key)
        if program is None:
            program = cls(source, key=key)
            program._store_to_disk()
        with _MEMO_LOCK:
            program = _MEMO.setdefault(key, program)
        source.__dict__[_CIRCUIT_ATTR] = program
        return program

    @classmethod
    def from_netlist(cls, netlist: Netlist, validate: bool = True) -> "CircuitProgram":
        """Compile *netlist* and return its (cached) program."""
        return cls.of(CompiledCircuit.from_netlist(netlist, validate=validate))

    def _lower(self) -> None:
        """Build every width-independent table (the one true lowering)."""
        global _COMPILE_COUNT
        _COMPILE_COUNT += 1
        circuit = self.circuit
        gates = circuit.gates
        num_gates = len(gates)
        num_nets = circuit.num_nets
        self.row_one = num_nets
        self.row_zero = num_nets + 1

        # Logic level per gate: 1 + deepest fan-in level (nets default 0).
        net_level = [0] * num_nets
        gate_levels = []
        for gate in gates:
            level = max((net_level[src] for src in gate.inputs), default=0) + 1
            net_level[gate.output] = level
            gate_levels.append(level)
        self.gate_level = np.asarray(gate_levels, dtype=np.int64)

        self.gate_op = np.zeros(num_gates, dtype=np.uint8)
        self.gate_invert = np.zeros(num_gates, dtype=np.uint64)
        self.gate_out = np.zeros(num_gates, dtype=np.intp)
        self.non_const = np.ones(num_gates, dtype=bool)
        self.const_rows: list[tuple[int, bool]] = []

        real_arities = [len(g.inputs) for g in gates if g.gate_type not in _CONST_TYPES]
        self.max_arity = max(real_arities, default=1)
        padded_rows = np.full((num_gates, self.max_arity), self.row_zero, dtype=np.intp)

        in_ptr = np.zeros(num_gates + 1, dtype=np.int64)
        in_rows: list[int] = []
        levels_non_const: dict[int, list[int]] = {}
        buckets: dict[tuple[int, int], list[tuple[int, bool]]] = {}
        for index, gate in enumerate(gates):
            self.gate_out[index] = gate.output
            if gate.gate_type in _CONST_TYPES:
                self.non_const[index] = False
                self.const_rows.append((gate.output, gate.gate_type is GateType.CONST1))
                in_ptr[index + 1] = len(in_rows)
                continue
            opcode, inverted = GATE_OPS[gate.gate_type]
            self.gate_op[index] = opcode
            if inverted:
                self.gate_invert[index] = _ALL_ONES
            pad_row = self.row_one if opcode == OP_AND else self.row_zero
            padded_rows[index, :] = pad_row
            padded_rows[index, : len(gate.inputs)] = gate.inputs
            in_rows.extend(gate.inputs)
            in_ptr[index + 1] = len(in_rows)
            levels_non_const.setdefault(gate_levels[index], []).append(index)
            buckets.setdefault((gate_levels[index], opcode), []).append((index, inverted))

        self.padded_rows = padded_rows
        self.in_ptr = in_ptr
        self.in_rows = np.asarray(in_rows, dtype=np.int64)
        self.levels_all = [
            np.asarray(levels_non_const[level], dtype=np.int64)
            for level in sorted(levels_non_const)
        ]

        # Grouped-sweep plan: one (level, opcode) unit per gather/reduce/
        # scatter pass, members in gate order, padded to the group's arity.
        groups: list[GateGroupPlan] = []
        for (_, opcode), members in sorted(buckets.items()):
            arity = max(len(gates[index].inputs) for index, _ in members)
            pad_row = self.row_one if opcode == OP_AND else self.row_zero
            rows = np.full((len(members), arity), pad_row, dtype=np.intp)
            outs = np.empty(len(members), dtype=np.intp)
            out_invert = np.zeros((len(members), 1), dtype=np.uint64)
            any_invert = False
            for position, (index, inverted) in enumerate(members):
                gate = gates[index]
                rows[position, : len(gate.inputs)] = gate.inputs
                outs[position] = gate.output
                if inverted:
                    out_invert[position, 0] = _ALL_ONES
                    any_invert = True
            groups.append(
                GateGroupPlan(
                    opcode=opcode,
                    rows=rows,
                    outs=outs,
                    out_invert=out_invert if any_invert else None,
                )
            )
        self.level_groups = groups

        # Flat gate list for the native zero-delay sweep (non-const only,
        # invert folded into the opcode byte).
        sweep_gates = [gate for gate in gates if gate.gate_type not in _CONST_TYPES]
        self.sweep_ops = np.empty(len(sweep_gates), dtype=np.uint8)
        self.sweep_out_rows = np.empty(len(sweep_gates), dtype=np.int64)
        sweep_in_ptr = np.zeros(len(sweep_gates) + 1, dtype=np.int64)
        sweep_in_rows: list[int] = []
        for index, gate in enumerate(sweep_gates):
            opcode, inverted = GATE_OPS[gate.gate_type]
            self.sweep_ops[index] = opcode | (OP_INVERT if inverted else 0)
            self.sweep_out_rows[index] = gate.output
            sweep_in_rows.extend(gate.inputs)
            sweep_in_ptr[index + 1] = len(sweep_in_rows)
        self.sweep_in_ptr = sweep_in_ptr
        self.sweep_in_rows = np.asarray(sweep_in_rows, dtype=np.int64)
        self.num_sweep_gates = len(sweep_gates)

        # Fan-out CSR: gate ids reading each net.
        fanout = circuit.fanout_gates
        fanout_ptr = np.zeros(num_nets + 1, dtype=np.int64)
        fanout_idx: list[int] = []
        for net, gate_ids in enumerate(fanout):
            fanout_idx.extend(gate_ids)
            fanout_ptr[net + 1] = len(fanout_idx)
        self.fanout_ptr = fanout_ptr
        self.fanout_idx = np.asarray(fanout_idx, dtype=np.int64)

    # ------------------------------------------------------------ disk cache
    @classmethod
    def _cache_path(cls, key: str) -> Path | None:
        directory = program_cache_dir()
        if directory is None:
            return None
        return directory / f"{key}.v{_FORMAT_VERSION}.program"

    @classmethod
    def _load_from_disk(cls, key: str) -> "CircuitProgram | None":
        path = cls._cache_path(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as stream:
                program = pickle.load(stream)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return None
        if not isinstance(program, CircuitProgram) or program.key != key:
            return None
        return program

    def _store_to_disk(self) -> None:
        path = self._cache_path(self.key)
        if path is None:
            return
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(temp, "wb") as stream:
                pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp, path)
        except Exception:  # noqa: BLE001 — the disk cache is best-effort only;
            # e.g. a memoized custom model holding an unpicklable member must
            # not break in-process use, which never needs picklability.
            try:
                temp.unlink(missing_ok=True)
            except OSError:
                pass

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # The circuit's backref (when present) would drag a second program
        # copy through the pickle; the unpickled program re-attaches itself.
        circuit_state = dict(state["circuit"].__dict__)
        circuit_state.pop(_CIRCUIT_ATTR, None)
        clone = CompiledCircuit.__new__(CompiledCircuit)
        clone.__dict__.update(circuit_state)
        state["circuit"] = clone
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.circuit.__dict__[_CIRCUIT_ATTR] = self

    # --------------------------------------------------------- derived plans
    def delay_schedule(self, delay_model: "DelayModel | str") -> DelaySchedule:
        """Quantized integer-tick schedule of *delay_model*, memoized.

        Accepts a :class:`~repro.simulation.delay_models.DelayModel` instance
        or a registry name (``"fanout"``, ``"unit"``, ...).  Instances are
        memoized by their computed delay vector, names additionally by name,
        so repeated engine construction shares one quantization.
        """
        if isinstance(delay_model, str):
            name_key = ("name", delay_model.strip().lower())
            schedule = self._delay_schedules.get(name_key)
            if schedule is None:
                from repro.simulation.delay_models import make_delay_model

                schedule = self.delay_schedule(make_delay_model(delay_model))
                self._delay_schedules[name_key] = schedule
            return schedule
        delays = tuple(float(delay) for delay in delay_model.delays(self.circuit))
        key = ("delays", delays)
        schedule = self._delay_schedules.get(key)
        if schedule is None:
            tick_list, tick = quantize_delays(list(delays))
            ticks = np.asarray(tick_list, dtype=np.int64)
            any_zero = bool((ticks[self.non_const] == 0).any()) if ticks.size else False
            schedule = DelaySchedule(delays=delays, ticks=ticks, tick=tick, any_zero_ticks=any_zero)
            self._delay_schedules[key] = schedule
            # Quantization is the expensive derived plan (one rational
            # approximation per gate); refresh the disk entry so cache hits
            # in other processes deserialize it instead of recomputing.
            self._store_to_disk()
        return schedule

    def capacitances(self, capacitance_model) -> np.ndarray:
        """Per-net capacitance vector of *capacitance_model*, memoized.

        Returns one shared float64 array per (program, model) pair — callers
        must treat it as read-only.
        """
        values = self._capacitances.get(capacitance_model)
        if values is None:
            values = np.asarray(capacitance_model.node_capacitances(self.circuit), dtype=np.float64)
            values.setflags(write=False)
            self._capacitances[capacitance_model] = values
            self._store_to_disk()
        return values

    # ----------------------------------------------------------- optimization
    def optimize(
        self, *, dead_net_sweep: bool = True, collapse_buffers: bool = True
    ) -> "CircuitProgram":
        """Return a program for a structurally optimized copy of the circuit.

        Two passes, both preserving primary-output and latch behaviour bit
        for bit (pinned by property tests):

        * **buffer/inverter collapse** — BUFF gates forward their input net
          to their sinks; NOT gates reading a fanout-free NOT collapse the
          pair to the original signal.  Gates whose output is a primary
          output keep driving it.
        * **dead-net sweep** — gates whose output reaches no primary output
          and no latch data pin (transitively) are removed.

        The optimized circuit has fewer nets, so per-net quantities
        (capacitance totals, transition densities) are not comparable with
        the original — which is why these passes are opt-in and never applied
        implicitly.  The original program is untouched.
        """
        netlist = _circuit_to_netlist(self.circuit)
        if collapse_buffers:
            netlist = _collapse_buffers(netlist)
        if dead_net_sweep:
            netlist = _sweep_dead_nets(netlist)
        return CircuitProgram.of(CompiledCircuit.from_netlist(netlist))

    # ------------------------------------------------------------------ query
    def gates_per_level(self) -> list[int]:
        """Number of non-constant gates at each logic level, ascending."""
        return [int(level_gates.size) for level_gates in self.levels_all]

    def stats(self) -> dict:
        """Summary statistics of the lowering (the ``repro compile`` payload)."""
        circuit = self.circuit
        return {
            "circuit": circuit.name,
            "key": self.key,
            "nets": circuit.num_nets,
            "gates": circuit.num_gates,
            "latches": circuit.num_latches,
            "inputs": circuit.num_inputs,
            "outputs": len(circuit.primary_outputs),
            "const_gates": len(self.const_rows),
            "levels": len(self.levels_all),
            "gates_per_level": self.gates_per_level(),
            "max_arity": int(self.max_arity),
            "fanin_entries": int(self.in_rows.size),
            "fanout_entries": int(self.fanout_idx.size),
            "sweep_groups": len(self.level_groups),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitProgram({self.circuit.name!r}, key={self.key!r}, "
            f"gates={self.circuit.num_gates}, levels={len(self.levels_all)})"
        )


# ------------------------------------------------------- optimization passes
def _circuit_to_netlist(circuit: CompiledCircuit) -> Netlist:
    """Rebuild the structural netlist of a compiled circuit (names preserved)."""
    names = circuit.net_names
    netlist = Netlist(name=circuit.name)
    for pi in circuit.primary_inputs:
        netlist.add_input(names[pi])
    for po in circuit.primary_outputs:
        netlist.add_output(names[po])
    for gate in circuit.gates:
        netlist.add_gate(names[gate.output], gate.gate_type, [names[src] for src in gate.inputs])
    for q_id, d_id, init in zip(circuit.latch_q, circuit.latch_d, circuit.latch_init):
        netlist.add_latch(names[q_id], names[d_id], init)
    return netlist


def _sink_counts(netlist: Netlist) -> dict[str, int]:
    counts: dict[str, int] = {}
    for gate in netlist.gates:
        for src in gate.inputs:
            counts[src] = counts.get(src, 0) + 1
    for latch in netlist.latches:
        counts[latch.data] = counts.get(latch.data, 0) + 1
    for po in netlist.primary_outputs:
        counts[po] = counts.get(po, 0) + 1
    return counts


def _collapse_buffers(netlist: Netlist) -> Netlist:
    """Collapse BUFF gates and fanout-free NOT-NOT pairs onto their sources."""
    po_set = set(netlist.primary_outputs)
    drivers = {gate.output: gate for gate in netlist.gates}
    sinks = _sink_counts(netlist)

    alias: dict[str, str] = {}
    for gate in netlist.gates:
        if gate.gate_type is GateType.BUFF and gate.output not in po_set:
            alias[gate.output] = gate.inputs[0]
    for gate in netlist.gates:
        if gate.gate_type is not GateType.NOT or gate.output in po_set:
            continue
        inner = drivers.get(gate.inputs[0])
        if (
            inner is not None
            and inner.gate_type is GateType.NOT
            and inner.output not in po_set
            and sinks.get(inner.output, 0) == 1
        ):
            alias[gate.output] = inner.inputs[0]

    if not alias:
        return netlist

    def resolve(name: str) -> str:
        seen = set()
        while name in alias and name not in seen:
            seen.add(name)
            name = alias[name]
        return name

    rewritten = Netlist(name=netlist.name)
    for pi in netlist.primary_inputs:
        rewritten.add_input(pi)
    for po in netlist.primary_outputs:
        rewritten.add_output(po)
    for gate in netlist.gates:
        if gate.output in alias:
            continue
        rewritten.add_gate(gate.output, gate.gate_type, [resolve(src) for src in gate.inputs])
    for latch in netlist.latches:
        rewritten.add_latch(latch.output, resolve(latch.data), latch.init_value)
    return rewritten


def _sweep_dead_nets(netlist: Netlist) -> Netlist:
    """Drop gates whose output reaches no primary output or latch data pin."""
    drivers = {gate.output: gate for gate in netlist.gates}
    live: set[str] = set()
    frontier: list[str] = list(netlist.primary_outputs)
    frontier.extend(latch.data for latch in netlist.latches)
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        gate = drivers.get(name)
        if gate is not None:
            frontier.extend(gate.inputs)

    swept = Netlist(name=netlist.name)
    for pi in netlist.primary_inputs:
        swept.add_input(pi)
    for po in netlist.primary_outputs:
        swept.add_output(po)
    for gate in netlist.gates:
        if gate.output in live:
            swept.add_gate(gate.output, gate.gate_type, gate.inputs)
    for latch in netlist.latches:
        swept.add_latch(latch.output, latch.data, latch.init_value)
    return swept


def as_compiled_circuit(source) -> CompiledCircuit:
    """Normalise a circuit-like argument to a :class:`CompiledCircuit`.

    Estimator entry points accept a structural :class:`Netlist`, a
    :class:`CompiledCircuit` or a prebuilt :class:`CircuitProgram`; this is
    the one shared coercion.
    """
    if isinstance(source, CircuitProgram):
        return source.circuit
    if isinstance(source, Netlist):
        return CompiledCircuit.from_netlist(source)
    if isinstance(source, CompiledCircuit):
        return source
    raise TypeError(
        f"expected a Netlist, CompiledCircuit or CircuitProgram, got {type(source).__name__}"
    )


def node_capacitance_array(
    program: CircuitProgram, node_capacitance: Sequence[float] | np.ndarray | None
) -> np.ndarray:
    """Normalise an engine's ``node_capacitance`` argument to a float64 vector.

    ``None`` means unit weights (toggle counting).  Length mismatches raise
    the same ``ValueError`` every engine used to raise privately.
    """
    num_nets = program.circuit.num_nets
    if node_capacitance is None:
        return np.ones(num_nets, dtype=np.float64)
    if len(node_capacitance) != num_nets:
        raise ValueError(
            "node_capacitance must have one entry per net "
            f"({num_nets}), got {len(node_capacitance)}"
        )
    return np.asarray(node_capacitance, dtype=np.float64)
