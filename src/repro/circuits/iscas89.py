"""Registry of ISCAS89-like benchmark analogues.

The paper's experiments (Tables 1 and 2, Figure 3) run on 24 ISCAS89
sequential benchmarks.  The original netlists are not redistributable inside
this repository, so each benchmark name maps to a **synthetic analogue**: a
circuit produced by :mod:`repro.circuits.generators` with the same
primary-input, primary-output, flip-flop and (approximate) gate counts,
generated deterministically from the benchmark name.  The statistical
phenomena the paper studies — temporally correlated per-cycle power, fast
phi-mixing, accuracy of the interval-selected estimator — depend on the
circuit being a live gate-level FSM of comparable size, not on the exact
ISCAS89 logic functions, so the analogues reproduce the *shape* of the
paper's results (see DESIGN.md, "Substitutions").

Users with access to the real ISCAS89 ``.bench`` files can load them with
:func:`repro.netlist.parse_bench_file` and run the identical experiment
harnesses on them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.circuits.generators import (
    SyntheticCircuitSpec,
    generate_sequential_circuit,
    seed_from_name,
)
from repro.circuits.library import s27
from repro.netlist.netlist import Netlist
from repro.simulation.compiled import CompiledCircuit

#: Published size of every benchmark used in the paper's tables:
#: (primary inputs, primary outputs, flip-flops, gates).
CIRCUIT_SPECS: dict[str, tuple[int, int, int, int]] = {
    "s27": (4, 1, 3, 10),
    "s208": (10, 1, 8, 96),
    "s298": (3, 6, 14, 119),
    "s344": (9, 11, 15, 160),
    "s349": (9, 11, 15, 161),
    "s382": (3, 6, 21, 158),
    "s386": (7, 7, 6, 159),
    "s400": (3, 6, 21, 162),
    "s420": (18, 1, 16, 196),
    "s444": (3, 6, 21, 181),
    "s510": (19, 7, 6, 211),
    "s526": (3, 6, 21, 193),
    "s641": (35, 24, 19, 379),
    "s713": (35, 23, 19, 393),
    "s820": (18, 19, 5, 289),
    "s832": (18, 19, 5, 287),
    "s838": (34, 1, 32, 390),
    "s1196": (14, 14, 18, 529),
    "s1238": (14, 14, 18, 508),
    "s1423": (17, 5, 74, 657),
    "s1488": (8, 19, 6, 653),
    "s1494": (8, 19, 6, 647),
    "s5378": (35, 49, 179, 2779),
    "s9234": (36, 39, 211, 5597),
    "s15850": (77, 150, 534, 9772),
}

#: The 24 circuits appearing in Tables 1 and 2 of the paper, in table order.
TABLE_CIRCUIT_NAMES: tuple[str, ...] = (
    "s208",
    "s298",
    "s344",
    "s349",
    "s382",
    "s386",
    "s400",
    "s420",
    "s444",
    "s510",
    "s526",
    "s641",
    "s713",
    "s820",
    "s832",
    "s838",
    "s1196",
    "s1238",
    "s1423",
    "s1488",
    "s1494",
    "s5378",
    "s9234",
    "s15850",
)

#: Circuits small enough for the quick default experiment configurations.
SMALL_CIRCUIT_NAMES: tuple[str, ...] = tuple(
    name for name in TABLE_CIRCUIT_NAMES if CIRCUIT_SPECS[name][3] <= 700
)


def list_circuits() -> list[str]:
    """Return every registered benchmark name (including ``s27``)."""
    return sorted(CIRCUIT_SPECS, key=lambda name: (len(name), name))


def build_netlist(name: str) -> Netlist:
    """Build the netlist for benchmark *name*.

    ``s27`` is the real ISCAS89 netlist; every other name is a synthetic
    analogue generated deterministically from the name, so repeated calls —
    and different machines — always obtain the identical circuit.
    """
    if name not in CIRCUIT_SPECS:
        raise KeyError(f"unknown benchmark {name!r}; available: {', '.join(list_circuits())}")
    if name == "s27":
        return s27()
    num_inputs, num_outputs, num_latches, num_gates = CIRCUIT_SPECS[name]
    spec = SyntheticCircuitSpec(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_latches=num_latches,
        num_gates=num_gates,
    )
    return generate_sequential_circuit(spec, seed=seed_from_name(name))


@lru_cache(maxsize=None)
def build_circuit(name: str) -> CompiledCircuit:
    """Build and compile benchmark *name* (cached — circuits are immutable)."""
    return CompiledCircuit.from_netlist(build_netlist(name))


def circuit_summary(name: str) -> dict[str, int]:
    """Return the size summary of benchmark *name* as a dictionary."""
    circuit = build_circuit(name)
    return {
        "inputs": circuit.num_inputs,
        "outputs": len(circuit.primary_outputs),
        "latches": circuit.num_latches,
        "gates": circuit.num_gates,
        "nets": circuit.num_nets,
    }
