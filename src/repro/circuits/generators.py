"""Deterministic synthetic sequential-circuit generator.

The ISCAS89 netlists evaluated in the paper cannot be redistributed inside
this repository, so the benchmark registry (:mod:`repro.circuits.iscas89`)
builds *analogues*: synthetic circuits with the same primary-input,
primary-output, flip-flop and gate counts, generated deterministically from
the circuit name.  The generator is also exposed directly so users can
produce circuits of arbitrary size for their own experiments.

Construction rules (all driven by a seeded RNG, hence fully reproducible):

* gate fan-ins are drawn from the existing signal pool (primary inputs,
  flip-flop outputs and previously created gate outputs), with a bias toward
  recently created gates so realistic logic depth develops;
* gate types are drawn from a weighted mix that includes XOR/XNOR cells,
  which keeps internal signal probabilities away from 0/1 and prevents the
  state from getting stuck — the circuits must behave like "live" FSMs for
  the power process to be interesting;
* every flip-flop's next-state function is an XOR of a random internal gate
  with either a primary input or another state bit, guaranteeing that the
  state both feeds back on itself and responds to the inputs (the two
  ingredients of the temporal correlation the paper studies);
* primary outputs prefer so-far-unused gate outputs, minimising dangling
  logic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.cell_library import GateType
from repro.netlist.netlist import Netlist
from repro.utils.rng import RandomSource, spawn_rng

#: Gate-type mix used for the random internal logic.
_GATE_TYPE_WEIGHTS: list[tuple[GateType, float]] = [
    (GateType.NAND, 0.24),
    (GateType.NOR, 0.14),
    (GateType.AND, 0.10),
    (GateType.OR, 0.10),
    (GateType.XOR, 0.16),
    (GateType.XNOR, 0.06),
    (GateType.NOT, 0.14),
    (GateType.BUFF, 0.06),
]

#: Fan-in distribution for multi-input gate types.
_FANIN_CHOICES = (2, 2, 2, 3, 3, 4)


@dataclass(frozen=True)
class SyntheticCircuitSpec:
    """Target shape of a synthetic sequential circuit.

    ``num_gates`` counts combinational gates only (flip-flops are extra), to
    match how the ISCAS89 circuit sizes are usually quoted.
    """

    name: str
    num_inputs: int
    num_outputs: int
    num_latches: int
    num_gates: int

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("a synthetic circuit needs at least one primary input")
        if self.num_outputs < 1:
            raise ValueError("a synthetic circuit needs at least one primary output")
        if self.num_latches < 0:
            raise ValueError("num_latches must be non-negative")
        minimum_gates = 2 * self.num_latches + self.num_outputs + 1
        if self.num_gates < minimum_gates:
            raise ValueError(
                f"num_gates must be at least {minimum_gates} to accommodate the "
                "next-state logic of every latch and the output buffers"
            )


def _weighted_gate_type(rng: np.random.Generator) -> GateType:
    weights = np.array([weight for _, weight in _GATE_TYPE_WEIGHTS])
    index = rng.choice(len(_GATE_TYPE_WEIGHTS), p=weights / weights.sum())
    return _GATE_TYPE_WEIGHTS[index][0]


def _pick_fanin(
    rng: np.random.Generator, pool: list[str], count: int, recency_bias: float
) -> list[str]:
    """Pick *count* distinct signals from *pool*, biased toward the newest entries."""
    count = min(count, len(pool))
    positions = np.arange(len(pool), dtype=float)
    weights = 1.0 + recency_bias * positions
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=count, replace=False, p=weights)
    return [pool[int(index)] for index in chosen]


def generate_sequential_circuit(
    spec: SyntheticCircuitSpec,
    seed: RandomSource = None,
    recency_bias: float = 0.15,
) -> Netlist:
    """Generate a random sequential circuit matching *spec*.

    The result is structurally valid by construction: the combinational block
    is a DAG (gates only read already-created signals), every latch data pin
    is driven, and every declared primary output has a driver.
    """
    rng = spawn_rng(seed)
    netlist = Netlist(name=spec.name)

    input_names = [f"PI{i}" for i in range(spec.num_inputs)]
    for name in input_names:
        netlist.add_input(name)

    state_names = [f"FF{i}" for i in range(spec.num_latches)]
    for name in state_names:
        netlist.add_latch(name, f"NS_{name}")

    # Signals available as gate fan-in, oldest first.
    pool: list[str] = list(input_names) + list(state_names)

    # Reserve two gates per latch for the next-state logic and one output
    # buffer per primary output; the rest of the gate budget is random logic.
    random_gate_budget = spec.num_gates - 2 * spec.num_latches - spec.num_outputs
    internal_outputs: list[str] = []
    for index in range(random_gate_budget):
        gate_type = _weighted_gate_type(rng)
        if gate_type in (GateType.NOT, GateType.BUFF):
            fanin_count = 1
        else:
            fanin_count = int(rng.choice(_FANIN_CHOICES))
        inputs = _pick_fanin(rng, pool, fanin_count, recency_bias)
        output = f"N{index}"
        netlist.add_gate(output, gate_type, inputs)
        pool.append(output)
        internal_outputs.append(output)

    # Next-state logic: NS_FFi = XOR(mixer_i, anchor_i) where the mixer is a
    # random internal gate output (or input when no internal logic exists)
    # and the anchor alternates between a primary input and a state bit.
    remaining_gates = 2 * spec.num_latches
    for index, state_name in enumerate(state_names):
        if internal_outputs:
            mixer = internal_outputs[int(rng.integers(0, len(internal_outputs)))]
        else:
            mixer = input_names[int(rng.integers(0, len(input_names)))]
        if index % 2 == 0 or spec.num_latches == 1:
            anchor = input_names[int(rng.integers(0, len(input_names)))]
        else:
            anchor = state_names[int(rng.integers(0, len(state_names)))]
        helper = f"NSAUX_{state_name}"
        helper_type = GateType.NAND if index % 3 else GateType.NOR
        helper_inputs = _pick_fanin(rng, pool, 2, recency_bias)
        netlist.add_gate(helper, helper_type, helper_inputs)
        pool.append(helper)
        remaining_gates -= 1

        netlist.add_gate(f"NS_{state_name}", GateType.XOR, [mixer, anchor, helper][:3])
        pool.append(f"NS_{state_name}")
        remaining_gates -= 1

    # Primary outputs: prefer gate outputs that nothing reads yet.
    fanout = netlist.fanout_map()
    unused = [name for name in internal_outputs if not fanout.get(name)]
    rng.shuffle(unused)
    for index in range(spec.num_outputs):
        po_name = f"PO{index}"
        netlist.add_output(po_name)
        if unused:
            source = unused.pop()
        elif internal_outputs:
            source = internal_outputs[int(rng.integers(0, len(internal_outputs)))]
        else:
            source = pool[int(rng.integers(0, len(pool)))]
        netlist.add_gate(po_name, GateType.BUFF, [source])

    return netlist


def seed_from_name(name: str, salt: int = 0x5E0) -> int:
    """Derive a stable integer seed from a circuit name.

    Python's built-in ``hash`` is randomised per process, so a simple
    deterministic polynomial hash is used instead.
    """
    value = salt
    for character in name:
        value = (value * 131 + ord(character)) % (2**31 - 1)
    return value
